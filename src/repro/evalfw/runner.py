"""Experiment runner: models x workloads x tasks.

``ExperimentRunner`` caches workloads and task datasets, runs every model
over every instance through the real prompt/response/extraction path,
and exposes the evaluated grids the paper's tables are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.evalfw.metrics import (
    BinaryMetrics,
    LocationMetrics,
    WeightedMetrics,
    binary_metrics,
    location_metrics,
    weighted_metrics,
)
from repro.llm.profiles import MODEL_PROFILES, ModelProfile
from repro.llm.simulated import SimulatedLLM
from repro.prompts.templates import PromptTemplate
from repro.tasks.base import ModelAnswer, TaskDataset
from repro.tasks.registry import TASK_WORKLOADS, ask, build_dataset
from repro.workloads import load_workload
from repro.workloads.base import Workload


@dataclass
class CellResult:
    """One (model, task, workload) evaluation cell."""

    model: str
    task: str
    workload: str
    dataset: TaskDataset
    answers: list[ModelAnswer]

    @property
    def binary(self) -> BinaryMetrics:
        truths = [bool(i.label) for i in self.dataset.instances]
        predictions = [a.predicted for a in self.answers]
        return binary_metrics(truths, predictions)

    @property
    def typed(self) -> WeightedMetrics:
        truths = [i.label_type for i in self.dataset.instances]
        predictions = [a.predicted_type for a in self.answers]
        return weighted_metrics(truths, predictions)

    @property
    def location(self) -> LocationMetrics:
        truths = [i.position for i in self.dataset.instances]
        predictions = [a.predicted_position for a in self.answers]
        return location_metrics(truths, predictions)


class ExperimentRunner:
    """Caches workloads/datasets and evaluates models over them."""

    def __init__(
        self,
        seed: int = 0,
        models: tuple[ModelProfile, ...] = MODEL_PROFILES,
        max_instances: Optional[int] = None,
    ) -> None:
        self.seed = seed
        self.models = models
        self.max_instances = max_instances
        self._workloads: dict[str, Workload] = {}
        self._datasets: dict[tuple[str, str], TaskDataset] = {}
        self._clients = {profile.name: SimulatedLLM(profile) for profile in models}

    # -- caching ---------------------------------------------------------------

    def workload(self, name: str) -> Workload:
        if name not in self._workloads:
            self._workloads[name] = load_workload(name, self.seed)
        return self._workloads[name]

    def dataset(self, task: str, workload_name: str) -> TaskDataset:
        key = (task, workload_name)
        if key not in self._datasets:
            self._datasets[key] = build_dataset(
                task,
                self.workload(workload_name),
                seed=self.seed,
                max_instances=self.max_instances,
            )
        return self._datasets[key]

    def client(self, model_name: str) -> SimulatedLLM:
        return self._clients[model_name]

    # -- evaluation --------------------------------------------------------------

    def run_cell(
        self,
        model_name: str,
        task: str,
        workload_name: str,
        prompt: Optional[PromptTemplate] = None,
    ) -> CellResult:
        """Evaluate one model on one (task, workload) dataset."""
        dataset = self.dataset(task, workload_name)
        client = self.client(model_name)
        answers = [
            ask(task, client, instance, prompt) for instance in dataset.instances
        ]
        return CellResult(
            model=model_name,
            task=task,
            workload=workload_name,
            dataset=dataset,
            answers=answers,
        )

    def run_task(
        self, task: str, workloads: Optional[tuple[str, ...]] = None
    ) -> dict[tuple[str, str], CellResult]:
        """Evaluate all models on all of a task's workloads."""
        names = workloads or TASK_WORKLOADS[task]
        grid: dict[tuple[str, str], CellResult] = {}
        for profile in self.models:
            for workload_name in names:
                grid[(profile.name, workload_name)] = self.run_cell(
                    profile.name, task, workload_name
                )
        return grid


def metrics_table(
    grid: dict[tuple[str, str], CellResult],
    kind: str = "binary",
) -> list[dict[str, object]]:
    """Flatten a grid into printable rows (model x workload metrics).

    ``kind`` selects ``binary`` (P/R/F1), ``typed`` (weighted P/R/F1) or
    ``location`` (MAE / hit rate).
    """
    rows: list[dict[str, object]] = []
    by_model: dict[str, dict[str, CellResult]] = {}
    for (model, workload), cell in grid.items():
        by_model.setdefault(model, {})[workload] = cell
    for profile in MODEL_PROFILES:
        if profile.name not in by_model:
            continue
        row: dict[str, object] = {"Model": profile.display_name}
        for workload, cell in by_model[profile.name].items():
            if kind == "binary":
                metrics = cell.binary
                row[f"{workload}.Prec"] = metrics.precision
                row[f"{workload}.Rec"] = metrics.recall
                row[f"{workload}.F1"] = metrics.f1
            elif kind == "typed":
                metrics = cell.typed
                row[f"{workload}.Prec"] = metrics.precision
                row[f"{workload}.Rec"] = metrics.recall
                row[f"{workload}.F1"] = metrics.f1
            elif kind == "location":
                metrics = cell.location
                row[f"{workload}.MAE"] = metrics.mae
                row[f"{workload}.HR"] = metrics.hit_rate
            else:
                raise ValueError(f"unknown metrics kind {kind!r}")
        rows.append(row)
    return rows
