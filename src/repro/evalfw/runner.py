"""Experiment runner: models x workloads x tasks.

``ExperimentRunner`` is the façade every artifact goes through.  It
delegates dataset construction, sharded (optionally multi-process)
evaluation and result caching to :class:`repro.engine.ExperimentEngine`,
runs every model over every instance through the real
prompt/response/extraction path, and exposes the evaluated grids the
paper's tables are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.engine.core import EngineConfig, ExperimentEngine
from repro.llm.backends import DEFAULT_MAX_CONCURRENCY, BackendSpec, SIMULATED_SPEC
from repro.evalfw.metrics import (
    BinaryMetrics,
    LocationMetrics,
    WeightedMetrics,
    binary_metrics,
    location_metrics,
    weighted_metrics,
)
from repro.llm.profiles import MODEL_PROFILES, ModelProfile
from repro.llm.simulated import SimulatedLLM
from repro.prompts.templates import PromptTemplate
from repro.tasks.base import ModelAnswer, TaskDataset
from repro.workloads.base import Workload


@dataclass
class CellResult:
    """One (model, task, workload) evaluation cell."""

    model: str
    task: str
    workload: str
    dataset: TaskDataset
    answers: list[ModelAnswer]

    @property
    def binary(self) -> BinaryMetrics:
        truths = [bool(i.label) for i in self.dataset.instances]
        predictions = [a.predicted for a in self.answers]
        return binary_metrics(truths, predictions)

    @property
    def typed(self) -> WeightedMetrics:
        truths = [i.label_type for i in self.dataset.instances]
        predictions = [a.predicted_type for a in self.answers]
        return weighted_metrics(truths, predictions)

    @property
    def location(self) -> LocationMetrics:
        truths = [i.position for i in self.dataset.instances]
        predictions = [a.predicted_position for a in self.answers]
        return location_metrics(truths, predictions)


class ExperimentRunner:
    """Evaluates models over cached workloads/datasets via the engine.

    ``workers=1`` (the default) evaluates in-process; ``workers>1`` fans
    instance shards across a process pool with byte-identical results.
    Passing ``cache_dir`` persists evaluated cells on disk so repeated
    runs with unchanged inputs skip recomputation entirely.
    """

    def __init__(
        self,
        seed: int = 0,
        models: tuple[ModelProfile, ...] = MODEL_PROFILES,
        max_instances: Optional[int] = None,
        workers: int = 1,
        shard_size: Optional[int] = None,
        cache_dir: Optional[Path] = None,
        backend: BackendSpec = SIMULATED_SPEC,
        max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
        rps: Optional[float] = None,
        chunk_size: Optional[int] = None,
        on_cell_error: str = "fail",
        request_timeout: Optional[float] = None,
        cell_deadline: Optional[float] = None,
        breaker_threshold: Optional[int] = None,
    ) -> None:
        config = EngineConfig(
            seed=seed,
            workers=workers,
            cache_dir=cache_dir,
            max_instances=max_instances,
            chunk_size=chunk_size,
            backend=backend,
            max_concurrency=max_concurrency,
            rps=rps,
            on_cell_error=on_cell_error,
            request_timeout=request_timeout,
            cell_deadline=cell_deadline,
            breaker_threshold=breaker_threshold,
            **({"shard_size": shard_size} if shard_size is not None else {}),
        )
        self.engine = ExperimentEngine(config, models=models)

    # The engine's config is the single source of truth; these mirrors
    # exist only for callers that knew the pre-engine runner attributes.
    @property
    def seed(self) -> int:
        return self.engine.config.seed

    @property
    def models(self) -> tuple[ModelProfile, ...]:
        return self.engine.models

    @property
    def max_instances(self) -> Optional[int]:
        return self.engine.config.max_instances

    # -- caching ---------------------------------------------------------------

    def workload(self, name: str) -> Workload:
        return self.engine.workload(name)

    def dataset(self, task: str, workload_name: str) -> TaskDataset:
        return self.engine.dataset(task, workload_name)

    def client(self, model_name: str) -> SimulatedLLM:
        return self.engine.client(model_name)

    def close(self) -> None:
        """Release the engine's worker pool, if one was started."""
        self.engine.close()

    # -- evaluation --------------------------------------------------------------

    def run_cell(
        self,
        model_name: str,
        task: str,
        workload_name: str,
        prompt: Optional[PromptTemplate] = None,
    ) -> CellResult:
        """Evaluate one model on one (task, workload) dataset."""
        return self.engine.run_cell(model_name, task, workload_name, prompt)

    def run_task(
        self, task: str, workloads: Optional[tuple[str, ...]] = None
    ) -> dict[tuple[str, str], CellResult]:
        """Evaluate all models on all of a task's workloads."""
        return self.engine.run_task(task, workloads)

    # -- reporting ---------------------------------------------------------------

    def run_record(
        self,
        artifacts: tuple[str, ...] = (),
        artifact_seconds: Optional[dict[str, float]] = None,
        total_seconds: float = 0.0,
        notes: str = "",
    ):
        """Snapshot everything this runner has evaluated as a RunRecord.

        The record captures the engine configuration, one metrics entry
        per distinct (model, task, workload) cell served so far, and the
        cache hit/miss statistics; persist it with
        :class:`repro.reporting.RunRecordStore` and render it with
        ``repro report``.  (Imported lazily: reporting sits downstream
        of the evaluation framework.)
        """
        from repro.reporting.run_record import record_from_engine

        return record_from_engine(
            self.engine,
            artifacts=artifacts,
            artifact_seconds=artifact_seconds,
            total_seconds=total_seconds,
            notes=notes,
        )


def metrics_table(
    grid: dict[tuple[str, str], CellResult],
    kind: str = "binary",
) -> list[dict[str, object]]:
    """Flatten a grid into printable rows (model x workload metrics).

    ``kind`` selects ``binary`` (P/R/F1), ``typed`` (weighted P/R/F1) or
    ``location`` (MAE / hit rate).
    """
    rows: list[dict[str, object]] = []
    by_model: dict[str, dict[str, CellResult]] = {}
    for (model, workload), cell in grid.items():
        by_model.setdefault(model, {})[workload] = cell
    for profile in MODEL_PROFILES:
        if profile.name not in by_model:
            continue
        row: dict[str, object] = {"Model": profile.display_name}
        for workload, cell in by_model[profile.name].items():
            if kind == "binary":
                metrics = cell.binary
                row[f"{workload}.Prec"] = metrics.precision
                row[f"{workload}.Rec"] = metrics.recall
                row[f"{workload}.F1"] = metrics.f1
            elif kind == "typed":
                metrics = cell.typed
                row[f"{workload}.Prec"] = metrics.precision
                row[f"{workload}.Rec"] = metrics.recall
                row[f"{workload}.F1"] = metrics.f1
            elif kind == "location":
                metrics = cell.location
                row[f"{workload}.MAE"] = metrics.mae
                row[f"{workload}.HR"] = metrics.hit_rate
            else:
                raise ValueError(f"unknown metrics kind {kind!r}")
        rows.append(row)
    return rows
