"""Evaluation framework: metrics, confusion analysis, runner, reports."""

from repro.evalfw.confusion import (
    FN,
    FP,
    OUTCOMES,
    TN,
    TP,
    group_by_outcome,
    outcome,
    outcome_of,
)
from repro.evalfw.failure_analysis import (
    OutcomeStats,
    PropertyBreakdown,
    TypeFailureProfile,
    property_breakdown,
    type_failure_profile,
)
from repro.evalfw.metrics import (
    BinaryMetrics,
    LocationMetrics,
    WeightedMetrics,
    binary_metrics,
    location_metrics,
    mean,
    median,
    weighted_metrics,
)
from repro.evalfw.report import (
    render_breakdown,
    render_histogram,
    render_matrix,
    render_table,
)
from repro.evalfw.runner import CellResult, ExperimentRunner, metrics_table

__all__ = [
    "binary_metrics",
    "weighted_metrics",
    "location_metrics",
    "BinaryMetrics",
    "WeightedMetrics",
    "LocationMetrics",
    "mean",
    "median",
    "outcome",
    "outcome_of",
    "group_by_outcome",
    "OUTCOMES",
    "TP",
    "TN",
    "FP",
    "FN",
    "property_breakdown",
    "type_failure_profile",
    "PropertyBreakdown",
    "OutcomeStats",
    "TypeFailureProfile",
    "ExperimentRunner",
    "CellResult",
    "metrics_table",
    "render_table",
    "render_histogram",
    "render_matrix",
    "render_breakdown",
]
