"""Incremental cell-metric accumulation for the streaming engine.

A streamed cell never holds its dataset or answer list in memory; each
chunk flows through a :class:`CellAccumulator`, which keeps only the
integer counts the metric constructors need — binary confusion counts,
``(label_type, predicted_type)`` pair counts, location running totals,
and the explanation-overlap running sum.  Finalising produces a
:class:`StreamedCellResult` exposing the same ``binary`` / ``typed`` /
``location`` properties as :class:`repro.evalfw.runner.CellResult`, so
``metrics_table`` and the reporting layer consume either interchangeably.

Exactness: every float operation happens in the shared
``*_from_counts`` constructors (:mod:`repro.evalfw.metrics`), which the
materialised path delegates through as well; the only streamed-side
float state is the explanation-overlap running sum, accumulated in
instance order — and ``a += x`` per element is exactly the left-to-right
``sum()`` the materialised path computes.  Streamed and materialised
metrics are therefore byte-identical, not merely close.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.evalfw.metrics import (
    BinaryMetrics,
    LocationMetrics,
    WeightedMetrics,
    binary_metrics_from_counts,
    classify_binary,
    location_metrics_from_counts,
    weighted_metrics_from_counts,
)
from repro.tasks.base import ModelAnswer, TaskInstance


@dataclass
class CellAccumulator:
    """Folds (instance, answer) chunks into constant-size metric state."""

    model: str
    task: str
    workload: str

    instances: int = 0
    chunks: int = 0

    # binary --------------------------------------------------------------
    confusion: Counter = field(default_factory=Counter)
    has_labels: bool = False

    # typed ---------------------------------------------------------------
    pair_counts: Counter = field(default_factory=Counter)

    # location ------------------------------------------------------------
    loc_pairs: int = 0
    loc_truth_sum: int = 0
    loc_abs_error_sum: int = 0
    loc_hits: int = 0
    loc_misses: int = 0

    # explanation ---------------------------------------------------------
    has_gold: bool = False
    overlap_sum: float = 0.0
    flawed: int = 0

    def add_chunk(
        self,
        instances: Sequence[TaskInstance],
        answers: Sequence[ModelAnswer],
    ) -> None:
        """Fold one aligned chunk into the running state."""
        from repro.tasks.explanation import explanation_overlap_f1

        if len(instances) != len(answers):
            raise ValueError(
                f"chunk misaligned: {len(instances)} instances "
                f"but {len(answers)} answers"
            )
        self.chunks += 1
        for instance, answer in zip(instances, answers):
            self.instances += 1
            self.confusion[
                classify_binary(bool(instance.label), answer.predicted)
            ] += 1
            if instance.label is not None:
                self.has_labels = True
            if instance.label_type is not None:
                self.pair_counts[(instance.label_type, answer.predicted_type)] += 1
            if instance.position is not None:
                self.loc_pairs += 1
                self.loc_truth_sum += instance.position
                if answer.predicted_position is None:
                    self.loc_misses += 1
                else:
                    self.loc_abs_error_sum += abs(
                        answer.predicted_position - instance.position
                    )
                    if answer.predicted_position == instance.position:
                        self.loc_hits += 1
            if instance.gold_text:
                self.has_gold = True
            self.overlap_sum += explanation_overlap_f1(
                instance.gold_text, answer.explanation
            )
            if answer.flaws:
                self.flawed += 1

    def result(self, chunk_size: Optional[int] = None) -> "StreamedCellResult":
        """Finalise into a CellResult-compatible streamed result."""
        return StreamedCellResult(
            model=self.model,
            task=self.task,
            workload=self.workload,
            instance_count=self.instances,
            chunk_count=self.chunks,
            chunk_size=chunk_size,
            _acc=self,
        )


@dataclass
class StreamedCellResult:
    """One streamed (model, task, workload) cell: metrics without data.

    Quacks like :class:`repro.evalfw.runner.CellResult` for every
    metrics consumer (``binary`` / ``typed`` / ``location``); carries
    counts instead of the dataset and answers, so a million-instance
    cell costs the same memory as a ten-instance one.
    """

    model: str
    task: str
    workload: str
    instance_count: int
    chunk_count: int
    chunk_size: Optional[int]
    _acc: CellAccumulator

    @property
    def binary(self) -> BinaryMetrics:
        c = self._acc.confusion
        return binary_metrics_from_counts(
            tp=c["tp"], tn=c["tn"], fp=c["fp"], fn=c["fn"]
        )

    @property
    def typed(self) -> WeightedMetrics:
        return weighted_metrics_from_counts(self._acc.pair_counts)

    @property
    def location(self) -> LocationMetrics:
        return location_metrics_from_counts(
            n_pairs=self._acc.loc_pairs,
            truth_sum=self._acc.loc_truth_sum,
            abs_error_sum=self._acc.loc_abs_error_sum,
            hits=self._acc.loc_hits,
            misses=self._acc.loc_misses,
        )

    # -- gates and extras for the reporting layer -------------------------

    @property
    def has_labels(self) -> bool:
        return self._acc.has_labels

    def types_present(self) -> list[str]:
        return sorted({truth for truth, _ in self._acc.pair_counts})

    @property
    def has_positions(self) -> bool:
        return self._acc.loc_pairs > 0

    @property
    def has_gold(self) -> bool:
        return self._acc.has_gold

    @property
    def explanation_overlap_f1(self) -> float:
        if not self.instance_count:
            return 0.0
        return self._acc.overlap_sum / self.instance_count

    @property
    def flawed_rate(self) -> float:
        if not self.instance_count:
            return 0.0
        return self._acc.flawed / self.instance_count


def result_instance_count(result) -> int:
    """Instance count of a materialised OR streamed cell result."""
    if isinstance(result, StreamedCellResult):
        return result.instance_count
    return len(result.dataset.instances)
