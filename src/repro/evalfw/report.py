"""ASCII rendering of tables, histograms and matrices.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers format them for terminals and text logs.
"""

from __future__ import annotations

from typing import Sequence

from repro.workloads.statistics import CorrelationMatrix, Histogram


def render_table(rows: Sequence[dict[str, object]], title: str = "") -> str:
    """Render dict-rows as an aligned ASCII table.

    Headers are the union of the keys of *all* rows (first-seen order),
    so a column that only appears in a later row is still rendered —
    earlier rows show it blank.
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    headers: list[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    table: list[list[str]] = [headers]
    for row in rows:
        table.append([_fmt(row.get(header, "")) for header in headers])
    widths = [
        max(len(line[col]) for line in table) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(table[0], widths)))
    lines.append(separator)
    for line in table[1:]:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(line, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_histogram(hist: Histogram, title: str = "", width: int = 40) -> str:
    """Render a histogram as labeled ASCII bars."""
    lines = [title or hist.property_name]
    peak = max(hist.counts) if hist.counts else 1
    label_width = max((len(label) for label in hist.labels), default=4)
    for label, count in zip(hist.labels, hist.counts):
        bar = "#" * max(1 if count else 0, round(count / max(peak, 1) * width))
        lines.append(f"  {label.rjust(label_width)} | {str(count).rjust(4)} {bar}")
    return "\n".join(lines)


def render_matrix(matrix: CorrelationMatrix, title: str = "") -> str:
    """Render a correlation matrix with short property headers."""
    short = [name.replace("_count", "").replace("_level", "") for name in matrix.properties]
    width = max(len(name) for name in short) + 1
    lines = []
    if title:
        lines.append(title)
    lines.append(" " * width + " ".join(name.rjust(6) for name in short))
    for name, row in zip(short, matrix.values):
        cells = " ".join(f"{value:6.2f}" for value in row)
        lines.append(f"{name.rjust(width)}{cells}")
    return "\n".join(lines)


def render_breakdown(breakdown, title: str = "") -> str:
    """Render a property-vs-outcome breakdown (Figure 6/8/10-12 style)."""
    lines = [title or breakdown.property_name]
    lines.append("  cell |    n |    avg | median")
    lines.append("  -----+------+--------+-------")
    for cell_name in ("TP", "TN", "FP", "FN"):
        stats = breakdown.cells[cell_name]
        lines.append(
            f"  {cell_name.rjust(4)} | {str(stats.count).rjust(4)} | "
            f"{stats.average:6.2f} | {stats.median:6.2f}"
        )
    return "\n".join(lines)
