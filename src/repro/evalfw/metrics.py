"""Evaluation metrics.

Binary precision/recall/F1 (Tables 3, 4, 6, 7), class-weighted
precision/recall/F1 for the multi-class ``*_type`` tasks (weights
proportional to class support, matching the paper's "weighted accuracy"),
and MAE / hit rate for miss_token_loc (Table 5).

Unextractable predictions (None) count as wrong — the automated half of
the paper's post-processing pipeline; there is no manual rescue pass here.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence


@dataclass(frozen=True)
class BinaryMetrics:
    """Precision / recall / F1 plus the confusion counts behind them."""

    precision: float
    recall: float
    f1: float
    tp: int
    tn: int
    fp: int
    fn: int

    @property
    def accuracy(self) -> float:
        total = self.tp + self.tn + self.fp + self.fn
        return (self.tp + self.tn) / total if total else 0.0


def binary_metrics_from_counts(tp: int, tn: int, fp: int, fn: int) -> BinaryMetrics:
    """Binary metrics from confusion counts.

    The streaming engine accumulates counts chunk by chunk and finalises
    through this function; :func:`binary_metrics` delegates here, so the
    two paths share every float operation and agree exactly.
    """
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return BinaryMetrics(
        precision=round(precision, 4),
        recall=round(recall, 4),
        f1=round(f1, 4),
        tp=tp,
        tn=tn,
        fp=fp,
        fn=fn,
    )


def classify_binary(truth: bool, prediction: Optional[bool]) -> str:
    """One instance's confusion-cell name (``tp``/``tn``/``fp``/``fn``).

    None predictions count as incorrect (the automated post-processing
    rule): an unextractable answer is treated as the opposite of truth.
    """
    effective = prediction if prediction is not None else (not truth)
    if truth:
        return "tp" if effective else "fn"
    return "fp" if effective else "tn"


def binary_metrics(
    truths: Sequence[bool], predictions: Sequence[Optional[bool]]
) -> BinaryMetrics:
    """Compute binary metrics; None predictions are counted as incorrect."""
    if len(truths) != len(predictions):
        raise ValueError("truths and predictions must have equal length")
    counts = {"tp": 0, "tn": 0, "fp": 0, "fn": 0}
    for truth, prediction in zip(truths, predictions):
        counts[classify_binary(truth, prediction)] += 1
    return binary_metrics_from_counts(**counts)


@dataclass(frozen=True)
class WeightedMetrics:
    """Support-weighted multi-class precision / recall / F1."""

    precision: float
    recall: float
    f1: float
    per_class: dict[str, BinaryMetrics]
    support: dict[str, int]


def weighted_metrics_from_counts(
    pair_counts: Counter[tuple[str, Optional[str]]]
) -> WeightedMetrics:
    """Weighted metrics from ``(truth, prediction)`` pair counts.

    ``pair_counts`` covers labeled pairs only (truth is never None).  The
    streaming engine accumulates one Counter per cell; the materialised
    :func:`weighted_metrics` delegates here so both paths share every
    float operation (per-class iteration in sorted order, identical
    weighted accumulation) and agree exactly.
    """
    support: Counter[str] = Counter()
    for (truth, _), count in pair_counts.items():
        support[truth] += count
    per_class: dict[str, BinaryMetrics] = {}
    total = sum(support.values())
    avg_precision = avg_recall = avg_f1 = 0.0
    for cls, count in sorted(support.items()):
        tp = tn = fp = fn = 0
        for (truth, prediction), pairs in pair_counts.items():
            if truth == cls:
                if prediction == cls:
                    tp += pairs
                else:
                    fn += pairs
            elif prediction == cls:
                fp += pairs
            else:
                tn += pairs
        metrics = binary_metrics_from_counts(tp=tp, tn=tn, fp=fp, fn=fn)
        per_class[cls] = metrics
        weight = count / total
        avg_precision += weight * metrics.precision
        avg_recall += weight * metrics.recall
        avg_f1 += weight * metrics.f1
    return WeightedMetrics(
        precision=round(avg_precision, 4),
        recall=round(avg_recall, 4),
        f1=round(avg_f1, 4),
        per_class=per_class,
        support=dict(support),
    )


def weighted_metrics(
    truths: Sequence[Optional[str]], predictions: Sequence[Optional[str]]
) -> WeightedMetrics:
    """One-vs-rest metrics per class, averaged with support weights.

    Classes are taken from the ground-truth labels; None truths are
    skipped (they carry no class).  A None prediction simply matches no
    class.
    """
    if len(truths) != len(predictions):
        raise ValueError("truths and predictions must have equal length")
    pair_counts: Counter[tuple[str, Optional[str]]] = Counter(
        (truth, prediction)
        for truth, prediction in zip(truths, predictions)
        if truth is not None
    )
    return weighted_metrics_from_counts(pair_counts)


@dataclass(frozen=True)
class LocationMetrics:
    """MAE and hit rate for position prediction (Table 5)."""

    mae: float
    hit_rate: float
    evaluated: int


def location_metrics(
    truths: Sequence[Optional[int]], predictions: Sequence[Optional[int]]
) -> LocationMetrics:
    """MAE over extracted positions; misses count a default penalty.

    Pairs whose ground truth is None (intact queries) are skipped.  A
    missing prediction counts as a miss with an error equal to the mean
    true position (roughly "pointed nowhere").
    """
    if len(truths) != len(predictions):
        raise ValueError("truths and predictions must have equal length")
    n_pairs = truth_sum = abs_error_sum = hits = misses = 0
    for truth, prediction in zip(truths, predictions):
        if truth is None:
            continue
        n_pairs += 1
        truth_sum += truth
        if prediction is None:
            misses += 1
            continue
        abs_error_sum += abs(prediction - truth)
        if prediction == truth:
            hits += 1
    return location_metrics_from_counts(
        n_pairs=n_pairs,
        truth_sum=truth_sum,
        abs_error_sum=abs_error_sum,
        hits=hits,
        misses=misses,
    )


def location_metrics_from_counts(
    *, n_pairs: int, truth_sum: int, abs_error_sum: int, hits: int, misses: int
) -> LocationMetrics:
    """Location metrics from integer running totals.

    ``misses`` (None predictions) each contribute the mean true position
    as their error; because the raw totals are integers the float math
    here is order-free, so streamed chunk accumulation and the
    materialised path agree exactly.
    """
    if not n_pairs:
        return LocationMetrics(mae=0.0, hit_rate=0.0, evaluated=0)
    mean_truth = truth_sum / n_pairs
    mae = (abs_error_sum + misses * mean_truth) / n_pairs
    return LocationMetrics(
        mae=round(mae, 2),
        hit_rate=round(hits / n_pairs, 4),
        evaluated=n_pairs,
    )


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for empty input; any iterable accepted)."""
    materialised = list(values)
    return sum(materialised) / len(materialised) if materialised else 0.0


def median(values: Iterable[float]) -> float:
    """Median (0.0 for empty input; any iterable accepted)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2
