"""Evaluation metrics.

Binary precision/recall/F1 (Tables 3, 4, 6, 7), class-weighted
precision/recall/F1 for the multi-class ``*_type`` tasks (weights
proportional to class support, matching the paper's "weighted accuracy"),
and MAE / hit rate for miss_token_loc (Table 5).

Unextractable predictions (None) count as wrong — the automated half of
the paper's post-processing pipeline; there is no manual rescue pass here.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence


@dataclass(frozen=True)
class BinaryMetrics:
    """Precision / recall / F1 plus the confusion counts behind them."""

    precision: float
    recall: float
    f1: float
    tp: int
    tn: int
    fp: int
    fn: int

    @property
    def accuracy(self) -> float:
        total = self.tp + self.tn + self.fp + self.fn
        return (self.tp + self.tn) / total if total else 0.0


def binary_metrics(
    truths: Sequence[bool], predictions: Sequence[Optional[bool]]
) -> BinaryMetrics:
    """Compute binary metrics; None predictions are counted as incorrect."""
    if len(truths) != len(predictions):
        raise ValueError("truths and predictions must have equal length")
    tp = tn = fp = fn = 0
    for truth, prediction in zip(truths, predictions):
        effective = prediction if prediction is not None else (not truth)
        if truth and effective:
            tp += 1
        elif truth and not effective:
            fn += 1
        elif not truth and effective:
            fp += 1
        else:
            tn += 1
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return BinaryMetrics(
        precision=round(precision, 4),
        recall=round(recall, 4),
        f1=round(f1, 4),
        tp=tp,
        tn=tn,
        fp=fp,
        fn=fn,
    )


@dataclass(frozen=True)
class WeightedMetrics:
    """Support-weighted multi-class precision / recall / F1."""

    precision: float
    recall: float
    f1: float
    per_class: dict[str, BinaryMetrics]
    support: dict[str, int]


def weighted_metrics(
    truths: Sequence[Optional[str]], predictions: Sequence[Optional[str]]
) -> WeightedMetrics:
    """One-vs-rest metrics per class, averaged with support weights.

    Classes are taken from the ground-truth labels; None truths are
    skipped (they carry no class).  A None prediction simply matches no
    class.
    """
    if len(truths) != len(predictions):
        raise ValueError("truths and predictions must have equal length")
    labeled = [
        (truth, prediction)
        for truth, prediction in zip(truths, predictions)
        if truth is not None
    ]
    support = Counter(truth for truth, _ in labeled)
    per_class: dict[str, BinaryMetrics] = {}
    total = sum(support.values())
    avg_precision = avg_recall = avg_f1 = 0.0
    for cls, count in sorted(support.items()):
        cls_truths = [truth == cls for truth, _ in labeled]
        cls_predictions = [prediction == cls for _, prediction in labeled]
        metrics = binary_metrics(cls_truths, cls_predictions)
        per_class[cls] = metrics
        weight = count / total
        avg_precision += weight * metrics.precision
        avg_recall += weight * metrics.recall
        avg_f1 += weight * metrics.f1
    return WeightedMetrics(
        precision=round(avg_precision, 4),
        recall=round(avg_recall, 4),
        f1=round(avg_f1, 4),
        per_class=per_class,
        support=dict(support),
    )


@dataclass(frozen=True)
class LocationMetrics:
    """MAE and hit rate for position prediction (Table 5)."""

    mae: float
    hit_rate: float
    evaluated: int


def location_metrics(
    truths: Sequence[Optional[int]], predictions: Sequence[Optional[int]]
) -> LocationMetrics:
    """MAE over extracted positions; misses count a default penalty.

    Pairs whose ground truth is None (intact queries) are skipped.  A
    missing prediction counts as a miss with an error equal to the mean
    true position (roughly "pointed nowhere").
    """
    if len(truths) != len(predictions):
        raise ValueError("truths and predictions must have equal length")
    pairs = [
        (truth, prediction)
        for truth, prediction in zip(truths, predictions)
        if truth is not None
    ]
    if not pairs:
        return LocationMetrics(mae=0.0, hit_rate=0.0, evaluated=0)
    mean_truth = sum(truth for truth, _ in pairs) / len(pairs)
    errors = []
    hits = 0
    for truth, prediction in pairs:
        if prediction is None:
            errors.append(mean_truth)
            continue
        errors.append(abs(prediction - truth))
        if prediction == truth:
            hits += 1
    return LocationMetrics(
        mae=round(sum(errors) / len(errors), 2),
        hit_rate=round(hits / len(pairs), 4),
        evaluated=len(pairs),
    )


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for empty input; any iterable accepted)."""
    materialised = list(values)
    return sum(materialised) / len(materialised) if materialised else 0.0


def median(values: Iterable[float]) -> float:
    """Median (0.0 for empty input; any iterable accepted)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2
