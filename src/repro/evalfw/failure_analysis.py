"""Failure analysis: property-vs-outcome breakdowns and FN composition.

Reproduces the analytical figures of section 4:

* Figures 6, 8, 10, 11, 12 — for a syntactic property, the average /
  median / count per confusion cell (:func:`property_breakdown`);
* Figures 7, 9 — the share of false negatives contributed by each error
  or token type (:func:`fn_composition`), plus the per-type miss rate.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.evalfw.confusion import FN, OUTCOMES, group_by_outcome
from repro.evalfw.metrics import mean, median
from repro.tasks.base import ModelAnswer, TaskInstance


@dataclass
class OutcomeStats:
    """Distribution of one property within one confusion cell."""

    outcome: str
    count: int
    average: float
    median: float
    values: list[float] = field(default_factory=list)


@dataclass
class PropertyBreakdown:
    """Figure 6/8/10-12 payload: per-cell stats of one property."""

    property_name: str
    cells: dict[str, OutcomeStats]

    def cell(self, name: str) -> OutcomeStats:
        return self.cells[name]

    def positives_trend(self) -> float:
        """FN average minus TP average (positive => misses skew complex)."""
        return self.cells[FN].average - self.cells["TP"].average


def property_breakdown(
    instances: list[TaskInstance],
    answers: list[ModelAnswer],
    property_name: str,
) -> PropertyBreakdown:
    """Per-outcome stats of a syntactic property."""
    groups = group_by_outcome(instances, answers)
    cells = {}
    for cell_name in OUTCOMES:
        values = [
            float(instance.props.value(property_name))
            for instance in groups[cell_name]
        ]
        cells[cell_name] = OutcomeStats(
            outcome=cell_name,
            count=len(values),
            average=round(mean(values), 2),
            median=round(median(values), 2),
            values=values,
        )
    return PropertyBreakdown(property_name=property_name, cells=cells)


@dataclass
class TypeFailureProfile:
    """Figure 7/9 payload for one model on one workload."""

    fn_share: dict[str, float]  # share of all FNs carried by each type
    miss_rate: dict[str, float]  # FN_type / positives_type
    fn_total: int


def type_failure_profile(
    instances: list[TaskInstance],
    answers: list[ModelAnswer],
    all_types: tuple[str, ...],
) -> TypeFailureProfile:
    """How false negatives distribute over ground-truth types."""
    groups = group_by_outcome(instances, answers)
    fn_types = Counter(
        instance.label_type
        for instance in groups[FN]
        if instance.label_type is not None
    )
    positives = Counter(
        instance.label_type
        for instance in instances
        if instance.is_positive and instance.label_type is not None
    )
    fn_total = sum(fn_types.values())
    fn_share = {
        t: round(fn_types.get(t, 0) / fn_total, 4) if fn_total else 0.0
        for t in all_types
    }
    miss_rate = {
        t: round(fn_types.get(t, 0) / positives[t], 4) if positives.get(t) else 0.0
        for t in all_types
    }
    return TypeFailureProfile(
        fn_share=fn_share, miss_rate=miss_rate, fn_total=fn_total
    )
