"""Confusion outcomes: classify each (instance, answer) as TP/TN/FP/FN."""

from __future__ import annotations

from typing import Optional

from repro.tasks.base import ModelAnswer, TaskInstance

TP = "TP"
TN = "TN"
FP = "FP"
FN = "FN"

OUTCOMES: tuple[str, ...] = (TP, TN, FP, FN)


def outcome(truth: bool, prediction: Optional[bool]) -> str:
    """The confusion cell for one example (None prediction = wrong)."""
    effective = prediction if prediction is not None else (not truth)
    if truth:
        return TP if effective else FN
    return FP if effective else TN


def outcome_of(instance: TaskInstance, answer: ModelAnswer) -> str:
    return outcome(bool(instance.label), answer.predicted)


def group_by_outcome(
    instances: list[TaskInstance], answers: list[ModelAnswer]
) -> dict[str, list[TaskInstance]]:
    """Partition instances into the four confusion cells."""
    if len(instances) != len(answers):
        raise ValueError("instances and answers must align")
    groups: dict[str, list[TaskInstance]] = {cell: [] for cell in OUTCOMES}
    for instance, answer in zip(instances, answers):
        groups[outcome_of(instance, answer)].append(instance)
    return groups
