"""Reporting layer: run records and multi-format report bundles.

Sits downstream of the engine: every grid evaluation can be persisted
as a :class:`RunRecord` (config fingerprint + per-cell metrics + timing
+ cache statistics) under ``results/runs/``, and any stored record can
be rendered — with zero model calls on a warm cache — into a report
bundle of paper-style Markdown tables, a self-contained HTML dashboard
and machine-readable JSON, or compared against another run to flag
metric regressions.

Entry points: ``repro report``, ``repro runs list|show`` (see
:mod:`repro.cli`), or programmatically:

* :func:`record_from_engine` / :class:`RunRecordStore` — persist runs;
* :func:`write_report_bundle` — Markdown + HTML + JSON bundle;
* :func:`compare_runs` — align two runs, flag regressions.
"""

from repro.reporting.bundle import (
    ReportBundle,
    report_json_payload,
    write_report_bundle,
)
from repro.reporting.compare import (
    DEFAULT_THRESHOLD,
    MetricDelta,
    RunComparison,
    compare_runs,
    render_comparison,
)
from repro.reporting.complexity import (
    property_rows,
    render_complexity_section,
    stratum_rows,
)
from repro.reporting.rewrite import family_rows, render_rewrite_section
from repro.reporting.html import write_html_dashboard
from repro.reporting.markdown import render_markdown_report
from repro.reporting.paper_refs import (
    PAPER_TABLE_LABELS,
    paper_binary,
    paper_f1_delta,
    paper_location,
    paper_typed,
)
from repro.reporting.run_record import (
    DEFAULT_RUNS_DIR,
    LOWER_IS_BETTER,
    RECORD_VERSION,
    CellRecord,
    RunRecord,
    RunRecordStore,
    cell_record_from_result,
    new_run_id,
    record_from_engine,
)

__all__ = [
    "DEFAULT_RUNS_DIR",
    "DEFAULT_THRESHOLD",
    "LOWER_IS_BETTER",
    "PAPER_TABLE_LABELS",
    "RECORD_VERSION",
    "CellRecord",
    "MetricDelta",
    "ReportBundle",
    "RunComparison",
    "RunRecord",
    "RunRecordStore",
    "cell_record_from_result",
    "compare_runs",
    "new_run_id",
    "paper_binary",
    "paper_f1_delta",
    "paper_location",
    "paper_typed",
    "property_rows",
    "record_from_engine",
    "family_rows",
    "render_comparison",
    "render_complexity_section",
    "render_markdown_report",
    "render_rewrite_section",
    "stratum_rows",
    "report_json_payload",
    "write_html_dashboard",
    "write_report_bundle",
]
