"""Per-transform-family accuracy breakdowns for rewrite grids.

Rewrite-task instances carry their chain provenance in ``label_type``:
positives hold the "+"-joined catalog families of the applied chain,
negatives the counter-transform type.  That makes family accuracy a
pure function of an evaluated grid — one row per catalog family
(counting every positive whose chain touches the family), plus a
negatives row so lopsided verdicts are visible — rendered into the
report bundle whenever the run touched a ``synthetic:rewrite``
workload, exactly like the complexity section for synthetic strata.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.reporting.complexity import (
    _cells_by_model,
    _markdown_table,
    _model_accuracy_row,
)
from repro.tasks.base import REWRITE_TASKS, TaskInstance
from repro.workloads.synthetic import is_rewrite_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.evalfw.runner import CellResult
    from repro.reporting.html import GridMap


def instance_families(instance: TaskInstance) -> tuple[str, ...]:
    """The catalog families behind one rewrite instance.

    ``rewrite_equivalence`` positives carry the chain in ``label_type``
    (negatives carry the counter-transform type, so they report as no
    family); ``rewrite_speedup`` instances — all of which are built from
    equivalent chains — carry it as a ``families=`` token in ``detail``
    regardless of the speedup label.
    """
    if instance.label_type:
        if not instance.is_positive:
            return ()
        return tuple(instance.label_type.split("+"))
    for token in (instance.detail or "").split():
        if token.startswith("families="):
            return tuple(token[len("families=") :].split("+"))
    return ()


def family_rows(
    grid: dict[tuple[str, str], "CellResult"], workload: str
) -> list[dict[str, object]]:
    """Per-family accuracy rows (family x models) for one cell group.

    Families come back in first-seen dataset order; the final
    ``(negatives)`` row covers the counter-transform pairs, so a model
    that answers "equivalent" to everything scores visibly low there.
    """
    cells = _cells_by_model(grid, workload)
    if not cells:
        return []
    families: list[str] = []
    for instance in cells[0][1].dataset.instances:
        for family in instance_families(instance):
            if family not in families:
                families.append(family)
    rows: list[dict[str, object]] = []
    for family in families:
        row = _model_accuracy_row(
            {"family": family},
            cells,
            lambda i, f=family: f in instance_families(i),
        )
        if row is not None:
            rows.append(row)
    negatives = _model_accuracy_row(
        {"family": "(negatives)"},
        cells,
        lambda i: not i.is_positive,
    )
    if negatives is not None:
        rows.append(negatives)
    return rows


def rewrite_workloads(grids: "GridMap") -> list[str]:
    """Distinct rewrite workload names present in the grids, ordered."""
    seen: list[str] = []
    for grid in grids.values():
        for _, workload in grid:
            if is_rewrite_workload(workload) and workload not in seen:
                seen.append(workload)
    return seen


def render_rewrite_section(grids: "GridMap") -> list[str]:
    """The per-family accuracy Markdown section for a report bundle.

    Empty when no rewrite-task grid touches a rewrite workload, so every
    other bundle stays byte-identical with or without this renderer.
    """
    workloads = rewrite_workloads(grids)
    if not workloads:
        return []
    lines: list[str] = ["## Accuracy by rewrite family", ""]
    for workload in workloads:
        for task, grid in grids.items():
            if task not in REWRITE_TASKS:
                continue
            per_family = family_rows(grid, workload)
            if not per_family:
                continue
            lines.append(f"### `{task}` on `{workload}` — per family")
            lines.append("")
            lines += _markdown_table(per_family)
            lines.append("")
    return lines if len(lines) > 2 else []
