"""Shared metric formatting for the Markdown and HTML renderers.

Both renderers print the same ``P/R/F1`` triples from a cell's flat
metric map and the same published reference triples; keeping the
formatting here guarantees the two report formats can never diverge.
"""

from __future__ import annotations

from typing import Optional

from repro.reporting.run_record import CellRecord


def format_metric_triple(cell: Optional[CellRecord], prefix: str) -> str:
    """``0.95/0.93/0.94`` from ``<prefix>.{precision,recall,f1}``, or ``-``."""
    if cell is None:
        return "-"
    try:
        return (
            f"{cell.metrics[f'{prefix}.precision']:.2f}/"
            f"{cell.metrics[f'{prefix}.recall']:.2f}/"
            f"{cell.metrics[f'{prefix}.f1']:.2f}"
        )
    except KeyError:
        return "-"


def format_ref_triple(values: Optional[tuple[float, ...]]) -> str:
    """A published reference tuple as ``a/b/c``, or ``-`` when absent."""
    return "/".join(f"{v:.2f}" for v in values) if values else "-"


def run_metadata_rows(record) -> list[tuple[str, str]]:
    """The (label, value) run-metadata rows both report headers print."""
    max_instances = (
        record.max_instances if record.max_instances is not None else "unbounded"
    )
    rows = [
        ("created", record.created_at),
        ("seed", str(record.seed)),
        ("workers", str(record.workers)),
        ("max_instances", str(max_instances)),
        ("source fingerprint", record.source_fingerprint[:12] or "unknown"),
        ("cache dir", record.cache_dir or "(disabled)"),
        (
            "cells",
            f"{len(record.cells)} ({record.cached_cells} cached, "
            f"{record.computed_cells} computed)",
        ),
        ("wall time", f"{record.total_seconds:.2f}s"),
    ]
    if record.on_cell_error != "fail" or record.failures:
        rows.append(
            (
                "cell-error policy",
                f"{record.on_cell_error} ({len(record.failures)} cell(s) absorbed)",
            )
        )
    return rows


def format_location_pair(cell: Optional[CellRecord]) -> str:
    """``MAE/hit-rate`` from a cell's location metrics, or ``-``."""
    if cell is None or "location.mae" not in cell.metrics:
        return "-"
    return (
        f"{cell.metrics['location.mae']:.2f}/"
        f"{cell.metrics['location.hit_rate']:.2f}"
    )
