"""Cross-run comparison: align two RunRecords and flag regressions.

``compare_runs(before, after)`` matches cells by (model, task, workload)
and metrics by name, producing one :class:`MetricDelta` per shared
metric.  A delta is a **regression** when the metric moved against its
polarity (lower F1, higher MAE — see
:data:`repro.reporting.run_record.LOWER_IS_BETTER`) by more than the
threshold.  This is what ``repro report --compare RUN_A RUN_B`` prints,
and what CI-style gates can assert on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reporting.run_record import LOWER_IS_BETTER, RunRecord

#: Smallest absolute move that counts as a change at all.
DEFAULT_THRESHOLD = 0.005


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between two runs of the same cell."""

    model: str
    model_display: str
    task: str
    workload: str
    metric: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def improved_direction(self) -> float:
        """Positive when the move is an improvement, negative when worse."""
        return -self.delta if self.metric in LOWER_IS_BETTER else self.delta

    def describe(self) -> str:
        return (
            f"{self.model_display} {self.task}/{self.workload} {self.metric}: "
            f"{self.before:.4f} -> {self.after:.4f} ({self.delta:+.4f})"
        )


@dataclass(frozen=True)
class RunComparison:
    """All aligned deltas between two runs, regressions singled out."""

    run_before: str
    run_after: str
    threshold: float
    deltas: tuple[MetricDelta, ...]
    #: Cells present in exactly one run (keys: (model, task, workload)).
    only_before: tuple[tuple[str, str, str], ...]
    only_after: tuple[tuple[str, str, str], ...]

    @property
    def regressions(self) -> tuple[MetricDelta, ...]:
        return tuple(
            d for d in self.deltas if d.improved_direction < -self.threshold
        )

    @property
    def improvements(self) -> tuple[MetricDelta, ...]:
        return tuple(
            d for d in self.deltas if d.improved_direction > self.threshold
        )

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)


def compare_runs(
    before: RunRecord, after: RunRecord, threshold: float = DEFAULT_THRESHOLD
) -> RunComparison:
    """Align two records cell-by-cell and metric-by-metric."""
    before_cells = {cell.key: cell for cell in before.cells}
    after_cells = {cell.key: cell for cell in after.cells}
    deltas: list[MetricDelta] = []
    for key in sorted(before_cells.keys() & after_cells.keys()):
        cell_before, cell_after = before_cells[key], after_cells[key]
        for metric in sorted(
            cell_before.metrics.keys() & cell_after.metrics.keys()
        ):
            deltas.append(
                MetricDelta(
                    model=cell_after.model,
                    model_display=cell_after.model_display,
                    task=cell_after.task,
                    workload=cell_after.workload,
                    metric=metric,
                    before=cell_before.metrics[metric],
                    after=cell_after.metrics[metric],
                )
            )
    return RunComparison(
        run_before=before.run_id,
        run_after=after.run_id,
        threshold=threshold,
        deltas=tuple(deltas),
        only_before=tuple(sorted(before_cells.keys() - after_cells.keys())),
        only_after=tuple(sorted(after_cells.keys() - before_cells.keys())),
    )


def render_comparison(comparison: RunComparison) -> str:
    """Human-readable comparison summary (Markdown-compatible text)."""
    lines = [
        f"# Run comparison: `{comparison.run_before}` -> `{comparison.run_after}`",
        "",
        f"{len(comparison.deltas)} aligned metrics, threshold "
        f"{comparison.threshold:g}",
        "",
    ]
    if comparison.regressions:
        lines.append(f"## Regressions ({len(comparison.regressions)})")
        lines.append("")
        for delta in comparison.regressions:
            lines.append(f"- REGRESSION {delta.describe()}")
        lines.append("")
    else:
        lines.append("No regressions.")
        lines.append("")
    if comparison.improvements:
        lines.append(f"## Improvements ({len(comparison.improvements)})")
        lines.append("")
        for delta in comparison.improvements:
            lines.append(f"- {delta.describe()}")
        lines.append("")
    if comparison.only_before:
        lines.append(
            "Cells only in the older run: "
            + ", ".join("/".join(key) for key in comparison.only_before)
        )
    if comparison.only_after:
        lines.append(
            "Cells only in the newer run: "
            + ", ".join("/".join(key) for key in comparison.only_after)
        )
    return "\n".join(lines).rstrip() + "\n"
