"""Report bundle assembly: Markdown + HTML + JSON for one run.

``write_report_bundle`` lays one run's full report out on disk:

    <out>/<run_id>/
      report.md        paper-style tables + deltas vs published values
      report.json      the RunRecord plus per-cell paper deltas
      html/index.html  self-contained dashboard (inline CSS, no JS)
      html/task_*.html per-task pages with confusion matrices and
                       failure-taxonomy breakdowns

Everything is derived from the :class:`RunRecord` (and, when supplied,
the evaluated grids) — assembling a bundle never invokes a model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.reporting.complexity import render_complexity_section
from repro.reporting.html import GridMap, write_html_dashboard
from repro.reporting.markdown import render_markdown_report
from repro.reporting.paper_refs import paper_f1_delta
from repro.reporting.rewrite import render_rewrite_section
from repro.reporting.run_record import RunRecord


@dataclass(frozen=True)
class ReportBundle:
    """Paths of one written report bundle."""

    root: Path
    markdown: Path
    json_path: Path
    html_index: Path
    html_pages: tuple[Path, ...]

    def all_paths(self) -> tuple[Path, ...]:
        return (self.markdown, self.json_path, self.html_index, *self.html_pages)


def report_json_payload(record: RunRecord) -> dict:
    """Machine-readable report: the record plus paper F1 deltas."""
    deltas = []
    for cell in record.cells:
        measured = cell.metrics.get("binary.f1")
        if measured is None:
            continue
        delta = paper_f1_delta(cell.task, cell.model_display, cell.workload, measured)
        if delta is None:
            continue
        deltas.append(
            {
                "model": cell.model,
                "task": cell.task,
                "workload": cell.workload,
                "ours_f1": measured,
                "paper_f1": round(measured - delta, 6),
                "delta_f1": round(delta, 6),
            }
        )
    return {"record": record.to_dict(), "paper_deltas": deltas}


def write_report_bundle(
    record: RunRecord,
    out_dir: Path,
    grids: Optional[GridMap] = None,
) -> ReportBundle:
    """Write the Markdown/JSON/HTML bundle under ``out_dir/<run_id>/``."""
    root = Path(out_dir) / record.run_id
    root.mkdir(parents=True, exist_ok=True)

    markdown_path = root / "report.md"
    markdown = render_markdown_report(record)
    if grids:
        # Synthetic-workload grids additionally get the accuracy-vs-
        # complexity stratum tables; empty for paper-only runs.
        complexity = render_complexity_section(grids)
        if complexity:
            markdown = markdown.rstrip() + "\n\n" + "\n".join(complexity).rstrip() + "\n"
        # Rewrite grids additionally get per-family accuracy tables.
        rewrite = render_rewrite_section(grids)
        if rewrite:
            markdown = markdown.rstrip() + "\n\n" + "\n".join(rewrite).rstrip() + "\n"
    markdown_path.write_text(markdown, encoding="utf-8")

    json_path = root / "report.json"
    json_path.write_text(
        json.dumps(report_json_payload(record), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    html_paths = write_html_dashboard(record, root / "html", grids)
    return ReportBundle(
        root=root,
        markdown=markdown_path,
        json_path=json_path,
        html_index=html_paths[0],
        html_pages=tuple(html_paths[1:]),
    )
