"""Accuracy-vs-complexity breakdowns for synthetic workload grids.

The synthetic family generates queries in named complexity strata
(``repro.workloads.synthetic``), and every :class:`TaskInstance` carries
its source query's measured properties — so a grid over a synthetic
workload supports two breakdowns the fixed paper workloads cannot:

* **per-stratum accuracy** — one row per generation stratum (recovered
  from the instance's source query id), one column per model: how does
  accuracy degrade as the generator dials up joins, nesting,
  aggregation, set operators or predicate width?
* **per-property scaling curves** — accuracy bucketed by a measured
  syntactic property (join_count, nestedness, predicate_count,
  word_count), the paper's Figures 6/8/11/12 axis generalised to
  arbitrarily scalable instance counts.

Both are pure functions of evaluated grids; ``repro report`` appends
them to a bundle's ``report.md`` whenever the recorded run touched a
synthetic workload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.tasks.base import TaskInstance
from repro.workloads.synthetic import is_synthetic, stratum_of_query_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.evalfw.runner import CellResult
    from repro.reporting.html import GridMap

#: Properties charted as scaling curves, with their bucket edges.
PROPERTY_BUCKETS: tuple[tuple[str, tuple[int, ...]], ...] = (
    ("join_count", (0, 1, 2, 3)),
    ("nestedness", (0, 1, 2, 3)),
    ("predicate_count", (0, 2, 4, 7)),
    ("word_count", (0, 15, 30, 60)),
)


def _bucket_label(edges: Sequence[int], index: int) -> str:
    low = edges[index]
    if index + 1 < len(edges):
        high = edges[index + 1] - 1
        return str(low) if high == low else f"{low}-{high}"
    return f"{low}+"


def _bucket_index(edges: Sequence[int], value: float) -> int:
    for index in range(len(edges) - 1, -1, -1):
        if value >= edges[index]:
            return index
    return 0


def _accuracy(
    cell: "CellResult", selector: Callable[[TaskInstance], bool]
) -> Optional[tuple[float, int]]:
    """(accuracy, n) over the selected labeled instances, or None."""
    correct = total = 0
    for instance, answer in zip(cell.dataset.instances, cell.answers):
        if instance.label is None or not selector(instance):
            continue
        total += 1
        if answer.predicted is not None and bool(answer.predicted) == bool(
            instance.label
        ):
            correct += 1
    if total == 0:
        return None
    return correct / total, total


def _cells_by_model(
    grid: dict[tuple[str, str], "CellResult"], workload: str
) -> list[tuple[str, "CellResult"]]:
    """(model, cell) pairs for one workload, in grid insertion order."""
    return [
        (model, cell)
        for (model, cell_workload), cell in grid.items()
        if cell_workload == workload
    ]


def stratum_rows(
    grid: dict[tuple[str, str], "CellResult"], workload: str
) -> list[dict[str, object]]:
    """Per-stratum accuracy rows (stratum x models) for one cell group.

    Strata come back in first-seen dataset order, which matches the
    profile's declared sweep order; instances whose source query id does
    not carry a stratum (non-synthetic sources) are ignored.
    """
    cells = _cells_by_model(grid, workload)
    if not cells:
        return []
    strata: list[str] = []
    for instance in cells[0][1].dataset.instances:
        stratum = stratum_of_query_id(instance.source_query_id)
        if stratum is not None and stratum not in strata:
            strata.append(stratum)
    rows: list[dict[str, object]] = []
    for stratum in strata:
        row = _model_accuracy_row(
            {"stratum": stratum},
            cells,
            lambda i, s=stratum: stratum_of_query_id(i.source_query_id) == s,
        )
        if row is not None:
            rows.append(row)
    return rows


def _model_accuracy_row(
    head: dict[str, object],
    cells: list[tuple[str, "CellResult"]],
    selector: Callable[[TaskInstance], bool],
) -> Optional[dict[str, object]]:
    """``head`` + an ``n`` column + one accuracy column per model."""
    measurements = [
        (model, _accuracy(cell, selector)) for model, cell in cells
    ]
    present = [(m, acc) for m, acc in measurements if acc is not None]
    if not present:
        return None
    row = dict(head)
    row["n"] = present[0][1][1]
    for model, (accuracy, _) in present:
        row[model] = round(accuracy, 3)
    return row


def property_rows(
    grid: dict[tuple[str, str], "CellResult"],
    workload: str,
    property_name: str,
    edges: Sequence[int],
) -> list[dict[str, object]]:
    """Accuracy-by-property-bucket rows for one cell group."""
    cells = _cells_by_model(grid, workload)
    rows: list[dict[str, object]] = []
    for index in range(len(edges)):
        row = _model_accuracy_row(
            {property_name: _bucket_label(edges, index)},
            cells,
            lambda i, b=index: _bucket_index(edges, i.props.value(property_name))
            == b,
        )
        if row is not None:
            rows.append(row)
    return rows


def _markdown_table(rows: list[dict[str, object]]) -> list[str]:
    headers: list[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "---|" * len(headers),
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(str(row.get(h, "-")) for h in headers) + " |"
        )
    return lines


def synthetic_workloads(grids: "GridMap") -> list[str]:
    """Distinct synthetic workload names present in the grids, ordered."""
    seen: list[str] = []
    for grid in grids.values():
        for _, workload in grid:
            if is_synthetic(workload) and workload not in seen:
                seen.append(workload)
    return seen


def render_complexity_section(grids: "GridMap") -> list[str]:
    """The accuracy-vs-complexity Markdown section for a report bundle.

    Empty when no grid touches a synthetic workload, so paper-only run
    bundles are byte-identical with or without this renderer.
    """
    workloads = synthetic_workloads(grids)
    if not workloads:
        return []
    lines: list[str] = ["## Accuracy vs complexity (synthetic strata)", ""]
    for workload in workloads:
        for task, grid in grids.items():
            per_stratum = stratum_rows(grid, workload)
            if not per_stratum:
                continue
            lines.append(f"### `{task}` on `{workload}` — per stratum")
            lines.append("")
            lines += _markdown_table(per_stratum)
            lines.append("")
            for property_name, edges in PROPERTY_BUCKETS:
                curve = property_rows(grid, workload, property_name, edges)
                if len(curve) < 2:  # a flat sweep has no curve to show
                    continue
                lines.append(
                    f"#### `{task}` accuracy by `{property_name}`"
                )
                lines.append("")
                lines += _markdown_table(curve)
                lines.append("")
    return lines if len(lines) > 2 else []
