"""Paper reference lookup: which published table covers which cell.

Bridges :mod:`repro.experiments.paper_values` (raw transcriptions of the
paper's tables) and the reporting layer: given a (task, model display
name, workload) cell, return the published metric triple so renderers
can print paper columns and deltas without each knowing the paper's
table numbering.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments import paper_values as paper

#: task -> the paper table its binary metrics come from (for headings).
PAPER_TABLE_LABELS: dict[str, str] = {
    "syntax_error": "Table 3",
    "miss_token": "Table 4 (Table 5 for locations)",
    "performance_pred": "Table 6",
    "query_equiv": "Table 7",
    "query_exp": "Section 4.5",
}

_BINARY: dict[str, dict[tuple[str, str], tuple[float, float, float]]] = {
    "syntax_error": paper.PAPER_TABLE3_BINARY,
    "miss_token": paper.PAPER_TABLE4_BINARY,
    "query_equiv": paper.PAPER_TABLE7_BINARY,
}

_TYPED: dict[str, dict[tuple[str, str], tuple[float, float, float]]] = {
    "syntax_error": paper.PAPER_TABLE3_TYPED,
    "miss_token": paper.PAPER_TABLE4_TYPED,
    "query_equiv": paper.PAPER_TABLE7_TYPED,
}


def paper_binary(
    task: str, model_display: str, workload: str
) -> Optional[tuple[float, float, float]]:
    """Published (precision, recall, F1) for a cell, if the paper has one."""
    if task == "performance_pred" and workload == "sdss":
        return paper.PAPER_TABLE6.get(model_display)
    reference = _BINARY.get(task)
    return reference.get((model_display, workload)) if reference else None


def paper_typed(
    task: str, model_display: str, workload: str
) -> Optional[tuple[float, float, float]]:
    """Published weighted (P, R, F1) for a ``*_type`` sub-task cell."""
    reference = _TYPED.get(task)
    return reference.get((model_display, workload)) if reference else None


def paper_location(
    task: str, model_display: str, workload: str
) -> Optional[tuple[float, float]]:
    """Published (MAE, hit rate) for a location cell (Table 5)."""
    if task != "miss_token":
        return None
    return paper.PAPER_TABLE5_LOCATION.get((model_display, workload))


def paper_f1_delta(
    task: str, model_display: str, workload: str, measured_f1: float
) -> Optional[float]:
    """Measured-minus-paper F1 delta, or None without a reference."""
    reference = paper_binary(task, model_display, workload)
    if reference is None:
        return None
    return measured_f1 - reference[2]
