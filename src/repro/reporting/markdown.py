"""Markdown report renderer: paper-style tables from a RunRecord.

Renders one self-contained Markdown document per run — run metadata,
per-task metric tables in the paper's model x workload layout with the
published values and F1 deltas alongside, and the engine/cache
statistics that show whether the run was served warm.  Pure function of
the record: no engine, no model calls, no filesystem.
"""

from __future__ import annotations

from repro.reporting.formatting import (
    format_location_pair,
    format_metric_triple,
    format_ref_triple,
    run_metadata_rows,
)
from repro.reporting.paper_refs import (
    PAPER_TABLE_LABELS,
    paper_binary,
    paper_location,
    paper_typed,
)
from repro.reporting.run_record import CellRecord, RunRecord


def _by_model(record: RunRecord, task: str) -> dict[str, dict[str, CellRecord]]:
    """``model display -> workload -> cell`` for one task, stable order."""
    grouped: dict[str, dict[str, CellRecord]] = {}
    for cell in record.cells:
        if cell.task == task:
            grouped.setdefault(cell.model_display, {})[cell.workload] = cell
    return grouped


def _binary_table(record: RunRecord, task: str) -> list[str]:
    workloads = record.workloads(task)
    lines = [
        "| Model |"
        + "".join(f" {w} ours P/R/F1 | {w} paper P/R/F1 | {w} ΔF1 |" for w in workloads),
        "|---|" + "---|---|---|" * len(workloads),
    ]
    for display, cells in _by_model(record, task).items():
        parts = [f"| {display} |"]
        for workload in workloads:
            cell = cells.get(workload)
            if cell is None:
                parts.append(" - | - | - |")
                continue
            reference = paper_binary(task, display, workload)
            ours_f1 = cell.metrics.get("binary.f1")
            delta = (
                f"{ours_f1 - reference[2]:+.2f}"
                if reference is not None and ours_f1 is not None
                else "-"
            )
            parts.append(
                f" {format_metric_triple(cell, 'binary')} | "
                f"{format_ref_triple(reference)} | {delta} |"
            )
        lines.append("".join(parts))
    return lines


def _typed_table(record: RunRecord, task: str) -> list[str]:
    workloads = record.workloads(task)
    lines = [
        "| Model |"
        + "".join(f" {w} ours P/R/F1 | {w} paper P/R/F1 |" for w in workloads),
        "|---|" + "---|---|" * len(workloads),
    ]
    for display, cells in _by_model(record, task).items():
        parts = [f"| {display} |"]
        for workload in workloads:
            parts.append(
                f" {format_metric_triple(cells.get(workload), 'typed')} | "
                f"{format_ref_triple(paper_typed(task, display, workload))} |"
            )
        lines.append("".join(parts))
    return lines


def _location_table(record: RunRecord, task: str) -> list[str]:
    workloads = record.workloads(task)
    lines = [
        "| Model |"
        + "".join(f" {w} ours MAE/HR | {w} paper MAE/HR |" for w in workloads),
        "|---|" + "---|---|" * len(workloads),
    ]
    for display, cells in _by_model(record, task).items():
        parts = [f"| {display} |"]
        for workload in workloads:
            reference = paper_location(task, display, workload)
            ref_text = (
                f"{reference[0]:.2f}/{reference[1]:.2f}" if reference else "-"
            )
            parts.append(
                f" {format_location_pair(cells.get(workload))} | {ref_text} |"
            )
        lines.append("".join(parts))
    return lines


def _explanation_table(record: RunRecord, task: str) -> list[str]:
    lines = [
        "| Model | workload | overlap F1 | flawed responses |",
        "|---|---|---|---|",
    ]
    for display, cells in _by_model(record, task).items():
        for workload, cell in cells.items():
            if "explanation.overlap_f1" not in cell.metrics:
                continue
            lines.append(
                f"| {display} | {workload} "
                f"| {cell.metrics['explanation.overlap_f1']:.3f} "
                f"| {100 * cell.metrics['explanation.flawed_rate']:.1f}% |"
            )
    return lines


def _task_has(record: RunRecord, task: str, prefix: str) -> bool:
    return any(
        cell.task == task and any(k.startswith(prefix) for k in cell.metrics)
        for cell in record.cells
    )


def render_markdown_report(record: RunRecord) -> str:
    """The full Markdown report for one run record."""
    lines: list[str] = [
        f"# Run report — `{record.run_id}`",
        "",
        "| | |",
        "|---|---|",
    ]
    for label, value in run_metadata_rows(record):
        lines.append(f"| {label} | {value} |")
    if record.artifacts:
        lines.append(f"| artifacts | {', '.join(record.artifacts)} |")
    if record.notes:
        lines += ["", record.notes]
    lines.append("")

    for task in record.tasks():
        label = PAPER_TABLE_LABELS.get(task, "")
        suffix = f" — paper {label}" if label else ""
        lines.append(f"## Task `{task}`{suffix}")
        lines.append("")
        if _task_has(record, task, "binary."):
            lines += _binary_table(record, task)
            lines.append("")
        if _task_has(record, task, "explanation."):
            lines += _explanation_table(record, task)
            lines.append("")
        if _task_has(record, task, "typed."):
            lines.append(f"### `{task}_type` (weighted)")
            lines.append("")
            lines += _typed_table(record, task)
            lines.append("")
        if _task_has(record, task, "location."):
            lines.append(f"### `{task}_loc` (MAE / hit rate)")
            lines.append("")
            lines += _location_table(record, task)
            lines.append("")

    if record.failures:
        verb = "skipped" if record.on_cell_error == "skip" else "degraded"
        lines.append("## Degraded cells")
        lines.append("")
        lines.append(
            f"{len(record.failures)} cell(s) {verb} under "
            f"`--on-cell-error {record.on_cell_error}` — the tables above "
            "have explicit gaps for these cells; they are **not** zeros."
        )
        lines.append("")
        lines.append("| model | task | workload | error | attempts | message |")
        lines.append("|---|---|---|---|---|---|")
        for failure in record.failures:
            message = failure.message.replace("|", "\\|").replace("\n", " ")
            if len(message) > 120:
                message = message[:117] + "..."
            lines.append(
                f"| {failure.model} | {failure.task} | {failure.workload} "
                f"| `{failure.error_class}` | {failure.attempts} | {message} |"
            )
        lines.append("")

    lines.append("## Engine & cache")
    lines.append("")
    lines.append("| counter | value |")
    lines.append("|---|---|")
    lines.append(f"| cells computed | {record.computed_cells} |")
    lines.append(f"| cells from cache | {record.cached_cells} |")
    for key in sorted(record.cache_stats):
        lines.append(f"| cache {key.replace('_', ' ')} | {record.cache_stats[key]} |")
    lines.append("")

    if record.artifact_seconds:
        lines.append("## Artifact timing")
        lines.append("")
        lines.append("| artifact | seconds |")
        lines.append("|---|---|")
        for artifact, seconds in record.artifact_seconds.items():
            lines.append(f"| {artifact} | {seconds:.2f} |")
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"
