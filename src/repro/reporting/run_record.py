"""Run records: durable, comparable summaries of one grid evaluation.

A :class:`RunRecord` captures everything needed to reason about a run
after the fact without re-evaluating it: the engine configuration
fingerprint (seed, workers, ``max_instances``, source fingerprint), one
:class:`CellRecord` per evaluated (model, task, workload) cell with its
flattened metrics and confusion counts, per-artifact wall-clock timing,
and the engine's cache hit/miss statistics.

Records serialise to plain JSON and live under ``results/runs/`` (one
``<run_id>.json`` each), managed by :class:`RunRecordStore`.  They are
the input to the Markdown/HTML/JSON report bundle
(:mod:`repro.reporting.bundle`) and to cross-run comparison
(:mod:`repro.reporting.compare`).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.lifecycle import CellFailure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.core import ExperimentEngine
    from repro.evalfw.runner import CellResult

#: Bump when the serialised record format changes incompatibly.
RECORD_VERSION = 1

#: Default on-disk home of run records, relative to the working dir.
DEFAULT_RUNS_DIR = Path("results/runs")

#: Metrics where a *lower* value is better (everything else: higher).
LOWER_IS_BETTER: frozenset[str] = frozenset(
    {"location.mae", "explanation.flawed_rate"}
)


@dataclass(frozen=True)
class CellRecord:
    """Metrics snapshot of one evaluated (model, task, workload) cell."""

    model: str
    model_display: str
    task: str
    workload: str
    instances: int
    cached: bool
    seconds: Optional[float]
    #: Flat metric map: ``binary.precision``, ``typed.f1``, ``location.mae`` ...
    metrics: dict[str, float] = field(default_factory=dict)
    #: Binary confusion counts: ``{"tp": .., "tn": .., "fp": .., "fn": ..}``.
    confusion: dict[str, int] = field(default_factory=dict)

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.model, self.task, self.workload)

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CellRecord":
        return cls(
            model=data["model"],
            model_display=data.get("model_display", data["model"]),
            task=data["task"],
            workload=data["workload"],
            instances=int(data["instances"]),
            cached=bool(data["cached"]),
            seconds=data.get("seconds"),
            metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
            confusion={k: int(v) for k, v in data.get("confusion", {}).items()},
        )


def cell_record_from_result(
    result: "CellResult",
    *,
    model_display: str,
    cached: bool,
    seconds: Optional[float],
) -> CellRecord:
    """Flatten one engine :class:`CellResult` into a :class:`CellRecord`.

    Each metric family is gated on the dataset actually defining it:
    ``binary.*`` needs boolean labels, ``typed.*`` type labels,
    ``location.*`` positions, and ``explanation.*`` (overlap F1 and
    flawed-response rate) gold explanation texts — so a record never
    reports a vacuous zero for a metric the task does not define.

    Accepts a materialised :class:`CellResult` or a
    :class:`~repro.evalfw.accumulate.StreamedCellResult`: the streamed
    variant carries the same gates as counts, so the record comes out
    identical without the dataset ever being in memory.
    """
    from repro.evalfw.accumulate import StreamedCellResult

    metrics: dict[str, float] = {}
    confusion: dict[str, int] = {}
    explanation: Optional[tuple[float, float]] = None
    if isinstance(result, StreamedCellResult):
        instances = result.instance_count
        has_labels = result.has_labels
        has_types = bool(result.types_present())
        has_positions = result.has_positions
        if result.has_gold and result.instance_count:
            explanation = (result.explanation_overlap_f1, result.flawed_rate)
    else:
        instances = len(result.dataset.instances)
        has_labels = any(i.label is not None for i in result.dataset.instances)
        has_types = bool(result.dataset.types_present())
        has_positions = any(
            i.position is not None for i in result.dataset.instances
        )
        if any(i.gold_text for i in result.dataset.instances):
            from repro.tasks.explanation import explanation_overlap_f1

            scores = [
                explanation_overlap_f1(instance.gold_text, answer.explanation)
                for instance, answer in zip(
                    result.dataset.instances, result.answers
                )
            ]
            if scores:
                explanation = (
                    sum(scores) / len(scores),
                    sum(1 for answer in result.answers if answer.flaws)
                    / len(result.answers),
                )
    if has_labels:
        binary = result.binary
        metrics["binary.precision"] = binary.precision
        metrics["binary.recall"] = binary.recall
        metrics["binary.f1"] = binary.f1
        metrics["binary.accuracy"] = binary.accuracy
        confusion = {
            "tp": binary.tp,
            "tn": binary.tn,
            "fp": binary.fp,
            "fn": binary.fn,
        }
    if has_types:
        typed = result.typed
        metrics["typed.precision"] = typed.precision
        metrics["typed.recall"] = typed.recall
        metrics["typed.f1"] = typed.f1
    if has_positions:
        location = result.location
        metrics["location.mae"] = location.mae
        metrics["location.hit_rate"] = location.hit_rate
    if explanation is not None:
        metrics["explanation.overlap_f1"] = explanation[0]
        metrics["explanation.flawed_rate"] = explanation[1]
    return CellRecord(
        model=result.model,
        model_display=model_display,
        task=result.task,
        workload=result.workload,
        instances=instances,
        cached=cached,
        seconds=seconds,
        metrics={k: round(v, 6) for k, v in metrics.items()},
        confusion=confusion,
    )


@dataclass(frozen=True)
class RunRecord:
    """One persisted grid evaluation: config, cells, timing, cache stats."""

    run_id: str
    created_at: str  # ISO-8601 UTC
    seed: int
    workers: int
    max_instances: Optional[int]
    source_fingerprint: str
    cache_dir: Optional[str]
    #: Backend provenance: which model backend produced the answers.
    backend: str = "simulated"
    backend_fingerprint: str = ""
    backend_options: dict[str, str] = field(default_factory=dict)
    artifacts: tuple[str, ...] = ()
    artifact_seconds: dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    computed_cells: int = 0
    cached_cells: int = 0
    cache_stats: dict[str, int] = field(default_factory=dict)
    #: Parent-process analysis-memo counters (raw lex/parse runs plus
    #: hit/miss per memo table) — the provenance for how much parse work
    #: the run actually did versus how much the memo layer absorbed.
    #: Worker-process caches are per-process and not aggregated here.
    analysis_cache_stats: dict[str, int] = field(default_factory=dict)
    #: Streaming provenance: the chunk size the run streamed with (None
    #: = materialised data path) and the work-queue counters (chunks,
    #: instances, workers_used, redispatched) when streaming was active.
    chunk_size: Optional[int] = None
    stream_stats: dict[str, int] = field(default_factory=dict)
    #: Rewrite provenance: the transform-catalog fingerprint rewrite
    #: cells were evaluated against ("" when the run had none) — the
    #: same value folded into their cache keys.
    rewrite_catalog: str = ""
    cells: tuple[CellRecord, ...] = ()
    #: Cell-error policy the run executed under, and the structured
    #: failures of cells it absorbed (skip/degrade) — the report layer
    #: renders these as explicit gaps, never silently missing rows.
    on_cell_error: str = "fail"
    failures: tuple[CellFailure, ...] = ()
    notes: str = ""
    #: Submission provenance: ``cli`` for `repro run`, ``service`` for
    #: grids submitted over the evaluation API (`repro serve`) — plus
    #: the submitting client's id, so `runs list`/`runs show` tell one
    #: provenance story across both entry points.
    origin: str = "cli"
    client_id: str = ""

    # -- accessors ---------------------------------------------------------

    def tasks(self) -> list[str]:
        """Distinct evaluated tasks, in first-seen order."""
        seen: list[str] = []
        for cell in self.cells:
            if cell.task not in seen:
                seen.append(cell.task)
        return seen

    def workloads(self, task: str) -> list[str]:
        """Distinct workloads a task was evaluated on, first-seen order."""
        seen: list[str] = []
        for cell in self.cells:
            if cell.task == task and cell.workload not in seen:
                seen.append(cell.workload)
        return seen

    def cell(self, model: str, task: str, workload: str) -> Optional[CellRecord]:
        for candidate in self.cells:
            if candidate.key == (model, task, workload):
                return candidate
        return None

    def with_identity(self, other: "RunRecord") -> "RunRecord":
        """This record's metrics under ``other``'s identity and config.

        Used by ``repro report``: metrics are regenerated through the
        cache (so they always reflect the current code, and the
        ``source_fingerprint`` and cache counters describe *that*
        regeneration pass), while the bundle keeps the original run's
        id, creation time, artifact list, wall-clock timings and engine
        configuration (workers, cache dir).
        """
        return replace(
            self,
            run_id=other.run_id,
            created_at=other.created_at,
            workers=other.workers,
            cache_dir=other.cache_dir,
            backend=other.backend,
            backend_fingerprint=other.backend_fingerprint,
            backend_options=dict(other.backend_options),
            artifacts=other.artifacts,
            artifact_seconds=dict(other.artifact_seconds),
            total_seconds=other.total_seconds,
            chunk_size=other.chunk_size,
            stream_stats=dict(other.stream_stats),
            on_cell_error=other.on_cell_error,
            failures=other.failures,
            notes=other.notes,
            origin=other.origin,
            client_id=other.client_id,
        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        data = asdict(self)
        data["version"] = RECORD_VERSION
        data["artifacts"] = list(self.artifacts)
        data["cells"] = [cell.as_dict() for cell in self.cells]
        data["failures"] = [failure.as_dict() for failure in self.failures]
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        version = data.get("version", RECORD_VERSION)
        if version != RECORD_VERSION:
            raise ValueError(
                f"unsupported run-record version {version!r} "
                f"(this build reads version {RECORD_VERSION})"
            )
        return cls(
            run_id=data["run_id"],
            created_at=data["created_at"],
            seed=int(data["seed"]),
            workers=int(data.get("workers", 1)),
            max_instances=data.get("max_instances"),
            source_fingerprint=data.get("source_fingerprint", ""),
            cache_dir=data.get("cache_dir"),
            backend=data.get("backend", "simulated"),
            backend_fingerprint=data.get("backend_fingerprint", ""),
            backend_options={
                k: str(v) for k, v in data.get("backend_options", {}).items()
            },
            artifacts=tuple(data.get("artifacts", ())),
            artifact_seconds={
                k: float(v) for k, v in data.get("artifact_seconds", {}).items()
            },
            total_seconds=float(data.get("total_seconds", 0.0)),
            computed_cells=int(data.get("computed_cells", 0)),
            cached_cells=int(data.get("cached_cells", 0)),
            cache_stats={
                k: int(v) for k, v in data.get("cache_stats", {}).items()
            },
            analysis_cache_stats={
                k: int(v)
                for k, v in data.get("analysis_cache_stats", {}).items()
            },
            chunk_size=data.get("chunk_size"),
            stream_stats={
                k: int(v) for k, v in data.get("stream_stats", {}).items()
            },
            rewrite_catalog=data.get("rewrite_catalog", ""),
            cells=tuple(
                CellRecord.from_dict(cell) for cell in data.get("cells", ())
            ),
            on_cell_error=data.get("on_cell_error", "fail"),
            failures=tuple(
                CellFailure.from_dict(failure)
                for failure in data.get("failures", ())
            ),
            notes=data.get("notes", ""),
            origin=data.get("origin", "cli"),
            client_id=data.get("client_id", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        return cls.from_dict(json.loads(text))


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def new_run_id(created_at: str, content: str) -> str:
    """Sortable run id: compact timestamp + short content hash."""
    stamp = created_at.replace("-", "").replace(":", "").replace("Z", "")
    digest = hashlib.sha256(content.encode("utf-8")).hexdigest()[:8]
    return f"{stamp}-{digest}"


def record_from_engine(
    engine: "ExperimentEngine",
    *,
    artifacts: tuple[str, ...] = (),
    artifact_seconds: Optional[dict[str, float]] = None,
    total_seconds: float = 0.0,
    created_at: Optional[str] = None,
    notes: str = "",
) -> RunRecord:
    """Snapshot an engine's evaluated cells into a :class:`RunRecord`.

    The engine accumulates every distinct cell it has served (cached or
    computed) in ``engine.results`` and per-cell provenance in
    ``engine.cell_log``; this turns that state into a durable record.
    """
    from repro.engine.cache import source_fingerprint
    from repro.sql.analysis_cache import counters as analysis_counters

    # engine.results holds the *last* serve of each cell, so its
    # provenance is the first log entry made under that serve's prompt:
    # repeat serves of one experiment keep the original computed/cached
    # flag, while a re-ask under a different prompt (a genuinely new
    # experiment for the same cell) resets it.
    last_prompt = {
        (e.model, e.task, e.workload): e.prompt for e in engine.cell_log
    }
    provenance: dict[tuple[str, str, str], tuple[bool, Optional[float]]] = {}
    for entry in engine.cell_log:
        key = (entry.model, entry.task, entry.workload)
        if entry.prompt == last_prompt[key]:
            provenance.setdefault(key, (entry.cached, entry.seconds))
    # Distinct-cell counts come from the provenance, not from the
    # engine's serve counters — those count repeat serves too (two
    # artifacts sharing a grid re-serve its cells from the cache), which
    # would make a cold run look warm.
    cached_count = sum(1 for cached, _ in provenance.values() if cached)
    computed_count = len(provenance) - cached_count
    from repro.tasks.base import PRIMARY_TASKS

    # Cells come out in the paper's presentation order: tasks as the
    # paper introduces them, then workload, then the paper's model order.
    task_order = {task: i for i, task in enumerate(PRIMARY_TASKS)}
    model_order = {profile.name: i for i, profile in enumerate(engine.models)}
    cells = []
    for key in sorted(
        engine.results,
        key=lambda k: (
            task_order.get(k[1], len(task_order)),
            k[1],
            k[2],
            model_order.get(k[0], len(model_order)),
            k[0],
        ),
    ):
        result = engine.results[key]
        cached, seconds = provenance.get(key, (True, None))
        cells.append(
            cell_record_from_result(
                result,
                model_display=engine.profile(result.model).display_name,
                cached=cached,
                seconds=seconds,
            )
        )
    created = created_at or _utc_now()
    config = engine.config
    cache_stats = (
        engine.cache.stats.as_dict() if engine.cache is not None else {}
    )
    from repro.tasks.base import REWRITE_TASKS

    rewrite_catalog = ""
    if any(cell.task in REWRITE_TASKS for cell in cells):
        from repro.rewrite.catalog import catalog_fingerprint

        rewrite_catalog = catalog_fingerprint()
    record = RunRecord(
        run_id="",
        created_at=created,
        seed=config.seed,
        workers=config.workers,
        max_instances=config.max_instances,
        source_fingerprint=source_fingerprint(),
        cache_dir=str(config.cache_dir) if config.cache_dir else None,
        backend=config.backend.name,
        backend_fingerprint=config.backend.fingerprint(),
        backend_options=config.backend.as_dict(),
        artifacts=tuple(artifacts),
        artifact_seconds=dict(artifact_seconds or {}),
        total_seconds=round(total_seconds, 3),
        computed_cells=computed_count,
        cached_cells=cached_count,
        cache_stats=cache_stats,
        analysis_cache_stats=analysis_counters().as_dict(),
        chunk_size=config.chunk_size,
        stream_stats=engine.stream_stats() or {},
        rewrite_catalog=rewrite_catalog,
        cells=tuple(cells),
        on_cell_error=config.on_cell_error,
        failures=tuple(engine.failures),
        notes=notes,
    )
    content = json.dumps(record.to_dict(), sort_keys=True)
    return replace(record, run_id=new_run_id(created, content))


@dataclass
class RunRecordStore:
    """Directory of run records (``<runs_dir>/<run_id>.json``)."""

    root: Path = DEFAULT_RUNS_DIR

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, run_id: str) -> Path:
        return self.root / f"{run_id}.json"

    def save(self, record: RunRecord) -> Path:
        path = self.path_for(record.run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(record.to_json(), encoding="utf-8")
        return path

    def run_ids(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))

    def load(self, run_id: str) -> RunRecord:
        """Load by exact id, unique id prefix, or literal file path."""
        direct = Path(run_id)
        if direct.is_file():
            return RunRecord.from_json(direct.read_text(encoding="utf-8"))
        path = self.path_for(run_id)
        if path.is_file():
            return RunRecord.from_json(path.read_text(encoding="utf-8"))
        matches = [rid for rid in self.run_ids() if rid.startswith(run_id)]
        if len(matches) == 1:
            return RunRecord.from_json(
                self.path_for(matches[0]).read_text(encoding="utf-8")
            )
        if matches:
            raise KeyError(
                f"ambiguous run id {run_id!r}: matches {', '.join(matches)}"
            )
        raise KeyError(f"no run record {run_id!r} under {self.root}")

    def records(self) -> list[RunRecord]:
        """All records, oldest first (run ids sort chronologically)."""
        return [self.load(run_id) for run_id in self.run_ids()]

    def latest(self) -> Optional[RunRecord]:
        ids = self.run_ids()
        return self.load(ids[-1]) if ids else None
