"""Write-ahead run journal: durable cell states under ``results/runs``.

Layout (all writes atomic temp+rename, same discipline as the
segmented cache)::

    <runs_dir>/<run_id>/journal/
        manifest.json          # run config, written once at start
        cells/<cell_id>.json   # one state file per grid cell

``manifest.json`` is written *before* any evaluation starts, so a run
killed at any point leaves enough on disk for ``repro run --resume`` to
reconstruct the exact grid (tasks, workload, backend, seed, chunking)
and continue.  Each cell file records the cell's position in the
``pending → in_flight → committed/failed/skipped/degraded`` state
machine; committed cells are skipped on resume via the
content-addressed cell cache (the journal records *progress*, the cache
records *bytes* — resume re-derives results through the cache, so a
journal lost entirely merely costs recomputation, never correctness).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

#: Bump when the journal format changes incompatibly.
JOURNAL_VERSION = 1

#: Cell state machine.  ``pending`` and ``in_flight`` are transient;
#: the other four are terminal for one run attempt (a resume moves
#: ``failed``/``in_flight`` cells back through the machine).
CELL_PENDING = "pending"
CELL_IN_FLIGHT = "in_flight"
CELL_COMMITTED = "committed"
CELL_FAILED = "failed"
CELL_SKIPPED = "skipped"
CELL_DEGRADED = "degraded"

CELL_STATES = (
    CELL_PENDING,
    CELL_IN_FLIGHT,
    CELL_COMMITTED,
    CELL_FAILED,
    CELL_SKIPPED,
    CELL_DEGRADED,
)

#: Keep the last N characters of a traceback in failure records.
_TRACEBACK_LIMIT = 4000


class JournalError(Exception):
    """A journal is missing, ambiguous, or unreadable."""


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _run_id(created_at: str, content: str) -> str:
    """Sortable run id: compact timestamp + short content hash.

    Same shape as :func:`repro.reporting.run_record.new_run_id` (kept
    in sync by test) so journal directories and run-record files for
    one run share an id without the lifecycle layer importing the
    reporting layer.
    """
    stamp = created_at.replace("-", "").replace(":", "").replace("Z", "")
    digest = hashlib.sha256(content.encode("utf-8")).hexdigest()[:8]
    return f"{stamp}-{digest}"


def _write_atomic(path: Path, text: str) -> None:
    """Write via temp file + rename so readers never see partial JSON."""
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    tmp.replace(path)


@dataclass(frozen=True)
class CellFailure:
    """Structured record of why one grid cell could not be evaluated.

    Carried by degraded/skipped cells into the journal and the final
    :class:`~repro.reporting.run_record.RunRecord`, so a grid that
    completed under ``--on-cell-error degrade`` shows *which* cells are
    gaps and *why* — never silently missing rows.
    """

    model: str
    task: str
    workload: str
    error_class: str
    message: str
    attempts: int = 1
    traceback: str = ""

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.model, self.task, self.workload)

    @classmethod
    def from_exception(
        cls,
        model: str,
        task: str,
        workload: str,
        exc: BaseException,
        attempts: int = 1,
    ) -> "CellFailure":
        trace = "".join(
            traceback_module.format_exception(type(exc), exc, exc.__traceback__)
        )
        return cls(
            model=model,
            task=task,
            workload=workload,
            error_class=type(exc).__name__,
            message=str(exc),
            attempts=attempts,
            traceback=trace[-_TRACEBACK_LIMIT:],
        )

    def as_dict(self) -> dict:
        return {
            "model": self.model,
            "task": self.task,
            "workload": self.workload,
            "error_class": self.error_class,
            "message": self.message,
            "attempts": self.attempts,
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellFailure":
        return cls(
            model=data["model"],
            task=data["task"],
            workload=data["workload"],
            error_class=data.get("error_class", "Exception"),
            message=data.get("message", ""),
            attempts=int(data.get("attempts", 1)),
            traceback=data.get("traceback", ""),
        )


@dataclass(frozen=True)
class CellEntry:
    """One cell's journalled state."""

    cell_id: str
    descriptor: dict
    state: str
    updated_at: str = ""
    failure: Optional[CellFailure] = None

    @property
    def key(self) -> tuple[str, str, str]:
        d = self.descriptor
        return (d.get("model", ""), d.get("task", ""), d.get("workload", ""))


def cell_descriptor(model: str, task: str, workload: str) -> dict:
    """Canonical journal descriptor of one grid cell."""
    return {"model": model, "task": task, "workload": workload}


def cell_id_for(descriptor: dict) -> str:
    """Filesystem-safe stable id of a cell descriptor."""
    payload = json.dumps(descriptor, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class RunJournal:
    """One run's write-ahead journal directory."""

    root: Path
    run_id: str
    manifest: dict = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    @classmethod
    def begin(
        cls,
        runs_dir: Path,
        config: dict,
        created_at: Optional[str] = None,
    ) -> "RunJournal":
        """Start a new journal: allocate a run id, persist the manifest.

        ``config`` must contain everything needed to re-run the same
        grid (it becomes ``manifest["config"]``, which ``--resume``
        feeds back through the CLI's run construction).
        """
        created = created_at or _utc_now()
        content = json.dumps(config, sort_keys=True)
        run_id = _run_id(created, content)
        root = Path(runs_dir) / run_id / "journal"
        (root / "cells").mkdir(parents=True, exist_ok=True)
        manifest = {
            "version": JOURNAL_VERSION,
            "run_id": run_id,
            "created_at": created,
            "config": config,
        }
        journal = cls(root=root, run_id=run_id, manifest=manifest)
        _write_atomic(
            root / "manifest.json",
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        )
        return journal

    @classmethod
    def load(cls, runs_dir: Path, run_id: str) -> "RunJournal":
        """Open an existing journal by exact id or unique id prefix."""
        runs_dir = Path(runs_dir)
        root = runs_dir / run_id / "journal"
        if not (root / "manifest.json").is_file():
            matches = [
                candidate.parent.parent.name
                for candidate in sorted(
                    runs_dir.glob("*/journal/manifest.json")
                )
                if candidate.parent.parent.name.startswith(run_id)
            ]
            if len(matches) > 1:
                raise JournalError(
                    f"ambiguous run id {run_id!r}: "
                    f"matches {', '.join(matches)}"
                )
            if not matches:
                raise JournalError(
                    f"no run journal for {run_id!r} under {runs_dir}"
                )
            run_id = matches[0]
            root = runs_dir / run_id / "journal"
        try:
            manifest = json.loads(
                (root / "manifest.json").read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError) as exc:
            raise JournalError(
                f"unreadable journal manifest under {root}: {exc}"
            ) from exc
        version = manifest.get("version", JOURNAL_VERSION)
        if version != JOURNAL_VERSION:
            raise JournalError(
                f"unsupported journal version {version!r} "
                f"(this build reads version {JOURNAL_VERSION})"
            )
        (root / "cells").mkdir(parents=True, exist_ok=True)
        return cls(root=root, run_id=run_id, manifest=manifest)

    # -- accessors ---------------------------------------------------------

    @property
    def config(self) -> dict:
        return self.manifest.get("config", {})

    @property
    def created_at(self) -> str:
        return self.manifest.get("created_at", "")

    def _cell_path(self, cell_id: str) -> Path:
        return self.root / "cells" / f"{cell_id}.json"

    # -- state transitions -------------------------------------------------

    def record(
        self,
        descriptor: dict,
        state: str,
        failure: Optional[CellFailure] = None,
    ) -> str:
        """Journal one cell's state transition; returns its cell id."""
        if state not in CELL_STATES:
            raise ValueError(
                f"unknown cell state {state!r}; expected one of {CELL_STATES}"
            )
        cell_id = cell_id_for(descriptor)
        payload = {
            "cell": descriptor,
            "state": state,
            "updated_at": _utc_now(),
        }
        if failure is not None:
            payload["failure"] = failure.as_dict()
        _write_atomic(
            self._cell_path(cell_id),
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
        return cell_id

    # -- reading back ------------------------------------------------------

    def cells(self) -> list[CellEntry]:
        """Every journalled cell, sorted by cell id (stable order)."""
        entries = []
        cells_dir = self.root / "cells"
        if not cells_dir.is_dir():
            return []
        for path in sorted(cells_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                # A torn cell file cannot happen via the atomic writer,
                # but a corrupted disk is survivable: treat the cell as
                # unjournalled (it will simply be re-evaluated).
                continue
            failure = None
            if payload.get("failure"):
                failure = CellFailure.from_dict(payload["failure"])
            entries.append(
                CellEntry(
                    cell_id=path.stem,
                    descriptor=payload.get("cell", {}),
                    state=payload.get("state", CELL_PENDING),
                    updated_at=payload.get("updated_at", ""),
                    failure=failure,
                )
            )
        return entries

    def states(self) -> dict[str, int]:
        """Count of cells per state (observability / `runs show`)."""
        counts: dict[str, int] = {}
        for entry in self.cells():
            counts[entry.state] = counts.get(entry.state, 0) + 1
        return counts

    def iter_failures(self) -> Iterator[CellFailure]:
        for entry in self.cells():
            if entry.failure is not None:
                yield entry.failure
