"""Crash-safe run lifecycle: journal, cell states, graceful interrupt.

The engine's durability story has three layers.  The *cache*
(:mod:`repro.engine.cache`) makes every committed cell's bytes atomic
and content-addressed.  The *journal* (:mod:`repro.lifecycle.journal`)
makes the run itself durable: a write-ahead record of the run's full
configuration plus each grid cell's progress through the
``pending → in_flight → committed/failed`` state machine, written with
the same temp+rename discipline.  The *interrupt* layer
(:mod:`repro.lifecycle.interrupt`) turns SIGINT/SIGTERM into a graceful
drain — stop dispatching, checkpoint, flush the journal, exit with a
dedicated code — so ``repro run --resume RUN_ID`` can reload the
journal and finish the grid with byte-identical final metrics.
"""

from repro.lifecycle.interrupt import (
    EXIT_INTERRUPTED,
    GracefulInterrupt,
    RunInterrupted,
)
from repro.lifecycle.journal import (
    CELL_COMMITTED,
    CELL_DEGRADED,
    CELL_FAILED,
    CELL_IN_FLIGHT,
    CELL_PENDING,
    CELL_SKIPPED,
    CELL_STATES,
    CellFailure,
    JournalError,
    RunJournal,
)

__all__ = [
    "EXIT_INTERRUPTED",
    "GracefulInterrupt",
    "RunInterrupted",
    "CELL_PENDING",
    "CELL_IN_FLIGHT",
    "CELL_COMMITTED",
    "CELL_FAILED",
    "CELL_SKIPPED",
    "CELL_DEGRADED",
    "CELL_STATES",
    "CellFailure",
    "JournalError",
    "RunJournal",
]
