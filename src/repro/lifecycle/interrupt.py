"""Graceful SIGINT/SIGTERM handling for in-flight grid runs.

First signal: latch a flag the engine polls at its checkpoints (between
cells on the materialised path, between chunks on the streaming path).
The engine raises :class:`RunInterrupted`, the run drains — in-flight
work finishes or is discarded atomically, the journal is flushed — and
the CLI prints a one-line resume hint and exits with
:data:`EXIT_INTERRUPTED`.  Second signal: the default handler is
restored and the signal re-delivered, so a stuck drain can always be
killed the ordinary way.
"""

from __future__ import annotations

import os
import signal
from typing import Optional

#: Dedicated exit code for an interrupted-but-resumable run (2 = usage
#: error, 3 = comparison regression, 4 = interrupted).
EXIT_INTERRUPTED = 4


class RunInterrupted(RuntimeError):
    """The run stopped at a checkpoint after SIGINT/SIGTERM.

    Not an error: everything journalled/cached so far is durable, and
    the run can be continued with ``repro run --resume <run_id>``.
    """

    def __init__(self, signal_name: str = "SIGINT") -> None:
        super().__init__(f"run interrupted by {signal_name}")
        self.signal_name = signal_name


class GracefulInterrupt:
    """Latching signal flag with second-signal escape hatch.

    Use as a context manager around the run::

        with GracefulInterrupt() as interrupt:
            engine.interrupt = interrupt
            ...  # engine calls interrupt.check() at checkpoints

    ``check()`` raises :class:`RunInterrupted` once a signal has been
    latched; ``triggered`` is the poll-only variant for code that wants
    to drain without unwinding.  Handlers are installed in the parent
    process only — worker processes ignore SIGINT (see
    :mod:`repro.engine.worker`) so the pool never spews
    ``KeyboardInterrupt`` tracebacks while the parent drains.
    """

    #: Signals that trigger a graceful drain.
    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.signal_name: Optional[str] = None
        self._previous: dict[int, object] = {}
        self._installed = False

    # -- signal plumbing ---------------------------------------------------

    def _handle(self, signum: int, frame: object) -> None:
        if self.signal_name is not None:
            # Second signal: stop being graceful.  Restore the default
            # disposition and re-deliver, so the process dies with the
            # conventional signal exit status.
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        self.signal_name = signal.Signals(signum).name

    def install(self) -> "GracefulInterrupt":
        for sig in self.SIGNALS:
            try:
                self._previous[sig] = signal.signal(sig, self._handle)
            except (ValueError, OSError):
                # Not the main thread (tests, embedded use): stay
                # poll-only; trigger() still works.
                continue
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        for sig, previous in self._previous.items():
            try:
                signal.signal(sig, previous)  # type: ignore[arg-type]
            except (ValueError, OSError):
                continue
        self._previous.clear()
        self._installed = False

    def __enter__(self) -> "GracefulInterrupt":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()

    # -- engine-facing surface ---------------------------------------------

    def trigger(self, signal_name: str = "SIGINT") -> None:
        """Latch programmatically (tests, chaos plans)."""
        if self.signal_name is None:
            self.signal_name = signal_name

    @property
    def triggered(self) -> bool:
        return self.signal_name is not None

    def check(self) -> None:
        """Raise :class:`RunInterrupted` if a signal has been latched.

        Engine checkpoints call this between units of work; in-flight
        units always finish (or discard) atomically before the raise
        propagates.
        """
        if self.signal_name is not None:
            raise RunInterrupted(self.signal_name)
