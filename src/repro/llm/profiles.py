"""Calibrated behaviour profiles for the five simulated models.

Each profile encodes, per task family, the statistical behaviour the
paper measured for that model (Tables 3-7):

* ``competence`` — true-positive rate on an average-complexity instance;
* ``complexity_sensitivity`` — recall lost per unit of normalised
  complexity, reproducing the longer-queries-fail-more effect behind
  Figures 6, 8 and 10-12;
* ``false_alarm`` / ``fp_complexity`` — false-positive rate and its
  complexity slope.  Detection tasks keep these low (precision > recall,
  the paper's "conservative" finding); performance_pred sets them high
  (recall > precision, the paper's "optimism" finding);
* ``type_accuracy`` — probability the predicted *type* is right given a
  correct binary answer (multi-class tasks are strictly harder);
* ``location_noise`` / ``exact_location`` — jitter magnitude and hit
  rate for miss_token_loc (Table 5).

The numbers below were tuned so the full benchmark harness lands near
the paper's reported metrics; see EXPERIMENTS.md for measured values.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

SYNTAX = "syntax"
TOKEN = "token"
PERFORMANCE = "performance"
EQUIVALENCE = "equivalence"
EXPLANATION = "explanation"

TASK_FAMILIES: tuple[str, ...] = (
    SYNTAX,
    TOKEN,
    PERFORMANCE,
    EQUIVALENCE,
    EXPLANATION,
)


@dataclass(frozen=True)
class TaskSkill:
    """One model's behaviour knobs for one task family.

    ``workload_penalty`` models model-by-workload interactions the paper
    observes beyond pure complexity (e.g. Gemini degrading on SQLShare's
    many unfamiliar schemas despite its short queries, section 4.1).
    A negative ``complexity_sensitivity`` means the model gets *bolder*
    on complex queries (MistralAI's trigger-happy flagging).
    """

    competence: float
    complexity_sensitivity: float = 0.0
    false_alarm: float = 0.02
    fp_complexity: float = 0.0
    type_accuracy: float = 0.9
    location_noise: float = 0.0
    exact_location: float = 0.0
    workload_penalty: dict[str, float] = field(default_factory=dict)

    def penalty_scale(self) -> float:
        """Stronger models shrug off hard types more (Figure 7 spread)."""
        return 2.0 * (1.0 - self.competence) + 0.4


@dataclass(frozen=True)
class ExplanationStyle:
    """Failure modes for query_exp (section 4.5 case study)."""

    detail_drop: float = 0.1  # omits selected attributes (GPT4 on Q17)
    superlative_invert: float = 0.05  # ASC/DESC misread (Llama3 on Q18)
    context_loss: float = 0.1  # drops table/filter context (Gemini Q15/Q16)


@dataclass(frozen=True)
class ModelProfile:
    """Full behaviour profile of one simulated model.

    Profiles are picklable (they cross process boundaries in the sharded
    engine) and hashable by content fingerprint, so a tweaked copy made
    with ``dataclasses.replace`` never aliases a cached result.
    """

    name: str
    display_name: str
    skills: dict[str, TaskSkill] = field(default_factory=dict)
    explanation: ExplanationStyle = field(default_factory=ExplanationStyle)
    verbosity: float = 0.5  # how chatty the verbalizer is

    def skill(self, family: str) -> TaskSkill:
        try:
            return self.skills[family]
        except KeyError:
            raise KeyError(
                f"{self.name} has no skill profile for {family!r}"
            ) from None

    def fingerprint(self) -> str:
        """Stable content hash, identical across processes.

        The canonical-JSON rendering survives process boundaries (unlike
        the salted built-in ``hash``), so the engine's result cache can
        key cells by the exact behaviour profile that produced them.
        Memoised in ``__dict__`` (the profile is frozen, so the content
        cannot change).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            payload = json.dumps(asdict(self), sort_keys=True, default=str)
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            self.__dict__["_fingerprint"] = cached
        return cached

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the skills
        # dict; hash by content instead so tweaked copies never collide.
        return hash((self.name, self.fingerprint()))


GPT4 = ModelProfile(
    name="gpt4",
    display_name="GPT4",
    skills={
        SYNTAX: TaskSkill(
            competence=0.995,
            complexity_sensitivity=0.12,
            false_alarm=0.012,
            fp_complexity=0.02,
            type_accuracy=0.97,
        ),
        TOKEN: TaskSkill(
            competence=0.99,
            complexity_sensitivity=0.05,
            false_alarm=0.008,
            fp_complexity=0.01,
            type_accuracy=0.96,
            location_noise=3.0,
            exact_location=0.58,
        ),
        PERFORMANCE: TaskSkill(
            competence=0.96,
            complexity_sensitivity=0.07,
            false_alarm=0.005,
            fp_complexity=0.07,
        ),
        EQUIVALENCE: TaskSkill(
            competence=1.0,
            complexity_sensitivity=0.0,
            false_alarm=0.005,
            fp_complexity=1.3,
            type_accuracy=0.985,
        ),
        EXPLANATION: TaskSkill(competence=0.9),
    },
    explanation=ExplanationStyle(
        detail_drop=0.25, superlative_invert=0.05, context_loss=0.05
    ),
    verbosity=0.7,
)

GPT35 = ModelProfile(
    name="gpt35",
    display_name="GPT3.5",
    skills={
        SYNTAX: TaskSkill(
            competence=0.93,
            complexity_sensitivity=0.25,
            false_alarm=0.03,
            fp_complexity=0.05,
            type_accuracy=0.90,
        ),
        TOKEN: TaskSkill(
            competence=0.95,
            complexity_sensitivity=0.08,
            false_alarm=0.10,
            fp_complexity=0.15,
            type_accuracy=0.80,
            location_noise=12.0,
            exact_location=0.33,
            workload_penalty={"sqlshare": 0.05},
        ),
        PERFORMANCE: TaskSkill(
            competence=0.88,
            complexity_sensitivity=0.11,
            false_alarm=0.015,
            fp_complexity=0.10,
        ),
        EQUIVALENCE: TaskSkill(
            competence=0.995,
            complexity_sensitivity=0.01,
            false_alarm=0.03,
            fp_complexity=3.0,
            type_accuracy=0.92,
        ),
        EXPLANATION: TaskSkill(competence=0.75),
    },
    explanation=ExplanationStyle(
        detail_drop=0.35, superlative_invert=0.25, context_loss=0.25
    ),
    verbosity=0.6,
)

LLAMA3 = ModelProfile(
    name="llama3",
    display_name="Llama3",
    skills={
        SYNTAX: TaskSkill(
            competence=0.88,
            complexity_sensitivity=0.55,
            false_alarm=0.02,
            fp_complexity=0.05,
            type_accuracy=0.86,
        ),
        TOKEN: TaskSkill(
            competence=0.98,
            complexity_sensitivity=0.12,
            false_alarm=0.05,
            fp_complexity=0.08,
            type_accuracy=0.86,
            location_noise=11.0,
            exact_location=0.37,
        ),
        PERFORMANCE: TaskSkill(
            competence=0.94,
            complexity_sensitivity=0.09,
            false_alarm=0.015,
            fp_complexity=0.13,
        ),
        EQUIVALENCE: TaskSkill(
            competence=0.995,
            complexity_sensitivity=0.01,
            false_alarm=0.04,
            fp_complexity=2.6,
            type_accuracy=0.88,
        ),
        EXPLANATION: TaskSkill(competence=0.72),
    },
    explanation=ExplanationStyle(
        detail_drop=0.35, superlative_invert=0.45, context_loss=0.3
    ),
    verbosity=0.5,
)

MISTRAL = ModelProfile(
    name="mistral",
    display_name="MistralAI",
    skills={
        SYNTAX: TaskSkill(
            competence=0.93,
            complexity_sensitivity=-0.05,
            false_alarm=0.05,
            fp_complexity=0.70,
            type_accuracy=0.92,
        ),
        TOKEN: TaskSkill(
            competence=0.88,
            complexity_sensitivity=-0.20,
            false_alarm=0.006,
            fp_complexity=0.01,
            type_accuracy=0.90,
            location_noise=10.0,
            exact_location=0.39,
        ),
        PERFORMANCE: TaskSkill(
            competence=0.94,
            complexity_sensitivity=0.09,
            false_alarm=0.05,
            fp_complexity=0.50,
        ),
        EQUIVALENCE: TaskSkill(
            competence=0.95,
            complexity_sensitivity=0.10,
            false_alarm=0.04,
            fp_complexity=1.2,
            type_accuracy=0.80,
        ),
        EXPLANATION: TaskSkill(competence=0.80),
    },
    explanation=ExplanationStyle(
        detail_drop=0.3, superlative_invert=0.1, context_loss=0.25
    ),
    verbosity=0.4,
)

GEMINI = ModelProfile(
    name="gemini",
    display_name="Gemini",
    skills={
        SYNTAX: TaskSkill(
            competence=0.82,
            complexity_sensitivity=0.45,
            false_alarm=0.012,
            fp_complexity=0.03,
            type_accuracy=0.74,
            workload_penalty={"sqlshare": 0.25},
        ),
        TOKEN: TaskSkill(
            competence=0.84,
            complexity_sensitivity=0.30,
            false_alarm=0.006,
            fp_complexity=0.01,
            type_accuracy=0.62,
            location_noise=16.0,
            exact_location=0.33,
            workload_penalty={"sqlshare": 0.08, "join_order": 0.05},
        ),
        PERFORMANCE: TaskSkill(
            competence=0.80,
            complexity_sensitivity=0.15,
            false_alarm=0.015,
            fp_complexity=0.14,
        ),
        EQUIVALENCE: TaskSkill(
            competence=0.97,
            complexity_sensitivity=0.02,
            false_alarm=0.05,
            fp_complexity=3.2,
            type_accuracy=0.76,
        ),
        EXPLANATION: TaskSkill(competence=0.60),
    },
    explanation=ExplanationStyle(
        detail_drop=0.4, superlative_invert=0.3, context_loss=0.55
    ),
    verbosity=0.8,
)

#: Evaluation order used throughout the paper's tables.
MODEL_PROFILES: tuple[ModelProfile, ...] = (GPT4, GPT35, LLAMA3, MISTRAL, GEMINI)

_BY_NAME = {profile.name: profile for profile in MODEL_PROFILES}
_BY_DISPLAY = {profile.display_name.lower(): profile for profile in MODEL_PROFILES}


def get_profile(name: str) -> ModelProfile:
    """Look up a profile by internal or display name (case-insensitive)."""
    lowered = name.lower()
    if lowered in _BY_NAME:
        return _BY_NAME[lowered]
    if lowered in _BY_DISPLAY:
        return _BY_DISPLAY[lowered]
    raise KeyError(
        f"unknown model {name!r}; expected one of {sorted(_BY_NAME)}"
    )


def model_names() -> list[str]:
    return [profile.name for profile in MODEL_PROFILES]
