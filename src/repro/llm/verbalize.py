"""Verbose response generation.

Real LLMs "often produce lengthy and verbose responses that require
careful extraction of relevant information" (section 3.4).  The
verbalizer wraps each simulated answer in model-flavoured prose drawn
from several phrasing families, so :mod:`repro.parsing` has realistic
material to extract labels from.
"""

from __future__ import annotations

import random

_YES_OPENERS = (
    "Yes.",
    "Yes, it does.",
    "Answer: yes.",
    "Indeed, yes —",
    "Yes —",
)
_NO_OPENERS = (
    "No.",
    "No, it does not.",
    "Answer: no.",
    "No —",
    "I don't believe so; no.",
)
_HEDGES = (
    "Looking at the query,",
    "After examining the statement,",
    "Based on the SQL provided,",
    "From the structure of the query,",
)
_FILLER = (
    "Let me walk through the clauses to explain my reasoning.",
    "The overall structure otherwise follows standard SQL conventions.",
    "Note that formatting and capitalization do not affect this judgement.",
    "This assessment assumes the schema implied by the table names.",
)


def yes_no_response(
    answer: bool,
    rng: random.Random,
    verbosity: float,
    elaboration: str = "",
) -> str:
    """A yes/no answer wrapped in prose; label first, chatter after."""
    parts: list[str] = []
    if rng.random() < verbosity * 0.6:
        parts.append(rng.choice(_HEDGES))
    parts.append(rng.choice(_YES_OPENERS if answer else _NO_OPENERS))
    if elaboration:
        parts.append(elaboration)
    if rng.random() < verbosity:
        parts.append(rng.choice(_FILLER))
    return " ".join(parts)


def typed_response(
    answer: bool,
    type_label: str | None,
    type_kind: str,
    rng: random.Random,
    verbosity: float,
    extra: str = "",
) -> str:
    """Yes/no plus a categorical label (`type_kind` names the category)."""
    elaboration = ""
    if answer and type_label is not None:
        templates = (
            f"The {type_kind} is '{type_label}'.",
            f"This looks like a '{type_label}' {type_kind}.",
            f"I would classify the {type_kind} as {type_label}.",
        )
        elaboration = rng.choice(templates)
    if extra:
        elaboration = f"{elaboration} {extra}".strip()
    return yes_no_response(answer, rng, verbosity, elaboration)


def token_response(
    missing: bool,
    token_type: str | None,
    token: str | None,
    position: int | None,
    rng: random.Random,
    verbosity: float,
) -> str:
    """The compound miss_token answer format of section 3.4."""
    if not missing:
        return yes_no_response(False, rng, verbosity)
    parts = [rng.choice(_YES_OPENERS), "There is a missing word."]
    if token_type is not None:
        parts.append(f"The type of the missing word is '{token_type}'.")
    if token is not None:
        parts.append(f"The missing word is likely '{token}'.")
    if position is not None:
        parts.append(f"It is missing at word position {position}.")
    if rng.random() < verbosity:
        parts.append(rng.choice(_FILLER))
    return " ".join(parts)


def runtime_response(costly: bool, rng: random.Random, verbosity: float) -> str:
    """performance_pred answer with the typical explanatory tail."""
    reason_costly = (
        "The multiple joins and predicates suggest a heavy execution plan.",
        "Scanning several tables with these filters is likely slow.",
        "The nesting and join structure point to a long runtime.",
    )
    reason_cheap = (
        "It touches a single table with selective filters.",
        "The query is simple and should use indexes effectively.",
        "Few predicates and a small projection keep this fast.",
    )
    elaboration = rng.choice(reason_costly if costly else reason_cheap)
    return yes_no_response(costly, rng, verbosity, elaboration)


def equivalence_response(
    equivalent: bool,
    pair_type: str | None,
    rng: random.Random,
    verbosity: float,
) -> str:
    """query_equiv answer; mentions the rewrite kind when judged equivalent."""
    if equivalent:
        extra = ""
        if pair_type is not None:
            extra = (
                f"The second query is a '{pair_type}' rewriting of the first, "
                "so both produce the same results."
            )
        return yes_no_response(True, rng, verbosity, extra)
    extra = ""
    if pair_type is not None:
        extra = f"They differ: this is a '{pair_type}' modification."
    return yes_no_response(False, rng, verbosity, extra)
