"""Client-facing LLM types.

The reproduction talks to models through the same narrow interface the
paper used: a prompt goes in, verbose natural-language text comes out,
and the response-processing pipeline (:mod:`repro.parsing`) extracts
labels.  ``SimulatedLLM`` is the offline stand-in for the five hosted
models; anything implementing :class:`ModelClient` can be swapped in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol


@dataclass
class LLMResponse:
    """One model response."""

    text: str
    model: str
    prompt: str = ""
    metadata: dict = field(default_factory=dict)


class ModelClient(Protocol):
    """The minimal surface the evaluation framework needs."""

    name: str

    def complete(self, prompt: str) -> LLMResponse:
        """Free-form completion (used by prompt tuning mock experiments)."""
        ...
