"""The simulated LLM client.

Replaces the paper's five hosted models.  For each task the client first
derives the *true* answer — using the semantic analyzer, the describer,
or the instance's construction-time ground truth — then passes it through
the model's calibrated noise profile (see DESIGN.md section 4).  All
noise is seeded by ``(model, task, instance id)``, so experiments are
reproducible bit-for-bit and independent of evaluation order.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.analysis.complexity import complexity_score
from repro.llm import verbalize
from repro.llm.base import LLMResponse
from repro.llm.describer import describe_statement
from repro.llm.difficulty import (
    EQUIV_TYPE_CONFUSIONS,
    SYNTAX_TYPE_CONFUSIONS,
    TOKEN_TYPE_CONFUSIONS,
    equivalence_fp_boost,
    syntax_penalty,
    token_penalty,
)
from repro.llm.profiles import (
    EQUIVALENCE,
    EXPLANATION,
    PERFORMANCE,
    SYNTAX,
    TOKEN,
    ModelProfile,
    get_profile,
)
from repro.sql import nodes as n
from repro.sql.properties import QueryProperties
from repro.util import derive_rng

from repro.corrupt.missing_tokens import TOKEN_TYPES
from repro.corrupt.syntax_errors import ERROR_TYPES
from repro.equivalence.counter_transforms import NON_EQUIVALENCE_TYPES
from repro.equivalence.transforms import EQUIVALENCE_TYPES


def _clamp(value: float, low: float = 0.01, high: float = 0.995) -> float:
    return max(low, min(high, value))


def _excess(complexity: float, floor: float = 0.1) -> float:
    """Complexity above the floor that even weak models handle."""
    return max(complexity - floor, 0.0)


class SimulatedLLM:
    """One simulated model; construct via name or profile."""

    def __init__(self, model: str | ModelProfile) -> None:
        self.profile = model if isinstance(model, ModelProfile) else get_profile(model)

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def display_name(self) -> str:
        return self.profile.display_name

    def _rng(self, task: str, instance_id: str) -> random.Random:
        return derive_rng(self.profile.name, task, instance_id)

    # -- generic completion (prompt tuning mock experiments) ----------------

    def complete(self, prompt: str) -> LLMResponse:
        rng = self._rng("complete", prompt)
        text = verbalize.yes_no_response(
            rng.random() < 0.5, rng, self.profile.verbosity
        )
        return LLMResponse(text=text, model=self.profile.name, prompt=prompt)

    # -- syntax_error ---------------------------------------------------------

    def answer_syntax_error(
        self,
        instance_id: str,
        query_text: str,
        workload: str,
        props: QueryProperties,
        truth_has_error: bool,
        truth_error_type: Optional[str],
        prompt_quality: float = 1.0,
    ) -> LLMResponse:
        skill = self.profile.skill(SYNTAX)
        rng = self._rng("syntax_error", instance_id)
        complexity = complexity_score(props)
        if truth_has_error:
            tpr = _clamp(
                (
                    skill.competence
                    - skill.complexity_sensitivity * _excess(complexity)
                    - skill.penalty_scale()
                    * syntax_penalty(workload, truth_error_type or "")
                    - skill.workload_penalty.get(workload, 0.0)
                )
                * prompt_quality
            )
            says_error = rng.random() < tpr
        else:
            fpr = _clamp(
                skill.false_alarm + skill.fp_complexity * complexity, 0.0, 0.9
            )
            says_error = rng.random() < fpr
        claimed_type: Optional[str] = None
        if says_error:
            claimed_type = self._claim_type(
                rng,
                truth_error_type if truth_has_error else None,
                skill.type_accuracy * prompt_quality,
                ERROR_TYPES,
                SYNTAX_TYPE_CONFUSIONS,
            )
        text = verbalize.typed_response(
            says_error,
            claimed_type,
            "syntax error",
            rng,
            self.profile.verbosity,
        )
        return LLMResponse(
            text=text,
            model=self.profile.name,
            metadata={"says_error": says_error, "claimed_type": claimed_type},
        )

    # -- miss_token -----------------------------------------------------------

    def answer_miss_token(
        self,
        instance_id: str,
        query_text: str,
        workload: str,
        props: QueryProperties,
        truth_missing: bool,
        truth_token_type: Optional[str],
        truth_token: Optional[str],
        truth_position: Optional[int],
        prompt_quality: float = 1.0,
    ) -> LLMResponse:
        skill = self.profile.skill(TOKEN)
        rng = self._rng("miss_token", instance_id)
        complexity = complexity_score(props)
        if truth_missing:
            tpr = _clamp(
                (
                    skill.competence
                    - skill.complexity_sensitivity * _excess(complexity)
                    - skill.penalty_scale()
                    * token_penalty(workload, truth_token_type or "")
                    - skill.workload_penalty.get(workload, 0.0)
                )
                * prompt_quality
            )
            says_missing = rng.random() < tpr
        else:
            fpr = _clamp(
                skill.false_alarm + skill.fp_complexity * complexity, 0.0, 0.9
            )
            says_missing = rng.random() < fpr
        claimed_type: Optional[str] = None
        claimed_token: Optional[str] = None
        claimed_position: Optional[int] = None
        if says_missing:
            claimed_type = self._claim_type(
                rng,
                truth_token_type if truth_missing else None,
                skill.type_accuracy * prompt_quality,
                TOKEN_TYPES,
                TOKEN_TYPE_CONFUSIONS,
            )
            claimed_token = truth_token if truth_missing else None
            claimed_position = self._claim_position(
                rng, skill, truth_position, props.word_count
            )
        text = verbalize.token_response(
            says_missing,
            claimed_type,
            claimed_token,
            claimed_position,
            rng,
            self.profile.verbosity,
        )
        return LLMResponse(
            text=text,
            model=self.profile.name,
            metadata={
                "says_missing": says_missing,
                "claimed_type": claimed_type,
                "claimed_position": claimed_position,
            },
        )

    def _claim_position(
        self,
        rng: random.Random,
        skill,
        truth_position: Optional[int],
        word_count: int,
    ) -> int:
        """Position prediction: exact with probability ``exact_location``,
        else jittered; jitter grows with query length (Table 5: long SDSS
        queries inflate MAE)."""
        if truth_position is None:
            return rng.randrange(max(word_count, 1))
        if rng.random() < skill.exact_location:
            return truth_position
        scale = skill.location_noise * (0.5 + word_count / 80.0)
        offset = 0
        while offset == 0:
            offset = round(rng.gauss(0.0, max(scale, 1.0)))
        claimed = truth_position + offset
        return max(0, min(claimed, max(word_count - 1, 0)))

    # -- performance_pred -------------------------------------------------------

    def answer_performance(
        self,
        instance_id: str,
        query_text: str,
        props: QueryProperties,
        truth_costly: bool,
        prompt_quality: float = 1.0,
    ) -> LLMResponse:
        skill = self.profile.skill(PERFORMANCE)
        rng = self._rng("performance_pred", instance_id)
        complexity = complexity_score(props)
        if truth_costly:
            tpr = _clamp(
                (skill.competence - skill.complexity_sensitivity * (1 - complexity))
                * prompt_quality
            )
            says_costly = rng.random() < tpr
        else:
            # The paper's key failure mode: long/wide queries *look* slow,
            # so false positives grow with perceived complexity (Fig 10).
            fpr = _clamp(
                skill.false_alarm + skill.fp_complexity * complexity, 0.0, 0.95
            )
            says_costly = rng.random() < fpr
        text = verbalize.runtime_response(says_costly, rng, self.profile.verbosity)
        return LLMResponse(
            text=text,
            model=self.profile.name,
            metadata={"says_costly": says_costly},
        )

    # -- rewrite_speedup --------------------------------------------------------

    def answer_speedup(
        self,
        instance_id: str,
        first_text: str,
        second_text: str,
        props: QueryProperties,
        truth_faster: bool,
        prompt_quality: float = 1.0,
    ) -> LLMResponse:
        """Judge whether a semantics-preserving rewrite speeds the query up.

        Reuses the performance skill: the same cost intuition that decides
        "slow or fast" decides "did this rewrite help", with the same
        complexity-driven false-positive mode — busy-looking rewrites of
        complex queries *look* like optimisations.
        """
        skill = self.profile.skill(PERFORMANCE)
        rng = self._rng("rewrite_speedup", instance_id)
        complexity = complexity_score(props)
        if truth_faster:
            tpr = _clamp(
                (
                    skill.competence
                    - skill.complexity_sensitivity * _excess(complexity)
                )
                * prompt_quality
            )
            says_faster = rng.random() < tpr
        else:
            fpr = _clamp(
                skill.false_alarm + skill.fp_complexity * complexity, 0.0, 0.95
            )
            says_faster = rng.random() < fpr
        reason_faster = (
            "The rewritten form avoids redundant work the original performs.",
            "The transformation simplifies the plan, so it should run faster.",
            "Collapsing the predicate structure reduces evaluation cost.",
        )
        reason_same = (
            "The rewrite is cosmetic; the engine would plan both the same way.",
            "Both forms scan the same data, so runtime should not improve.",
            "The optimizer already normalises this pattern; no speedup.",
        )
        text = verbalize.yes_no_response(
            says_faster,
            rng,
            self.profile.verbosity,
            rng.choice(reason_faster if says_faster else reason_same),
        )
        return LLMResponse(
            text=text,
            model=self.profile.name,
            metadata={"says_faster": says_faster},
        )

    # -- query_equiv -------------------------------------------------------------

    def answer_equivalence(
        self,
        instance_id: str,
        first_text: str,
        second_text: str,
        workload: str,
        props: QueryProperties,
        truth_equivalent: bool,
        truth_pair_type: Optional[str],
        prompt_quality: float = 1.0,
    ) -> LLMResponse:
        skill = self.profile.skill(EQUIVALENCE)
        rng = self._rng("query_equiv", instance_id)
        complexity = complexity_score(props)
        if truth_equivalent:
            tpr = _clamp(
                (
                    skill.competence
                    - skill.complexity_sensitivity * _excess(complexity)
                )
                * prompt_quality
            )
            says_equivalent = rng.random() < tpr
        else:
            # FP rate grows with query complexity — predicate volume above
            # all (section 4.4: all Join-Order FPs had 19+ predicates) —
            # and with how subtle the modification is (value/logical
            # changes fool models most).
            from repro.analysis.complexity import property_complexity

            predicate_pressure = property_complexity(props, "predicate_count")
            mix = 0.5 * complexity + 0.5 * predicate_pressure**2
            fpr = _clamp(
                skill.false_alarm
                + skill.workload_penalty.get(workload, 0.0)
                + skill.fp_complexity
                * mix
                * equivalence_fp_boost(truth_pair_type or ""),
                0.0,
                0.9,
            )
            says_equivalent = rng.random() < fpr
        claimed_type: Optional[str] = None
        if says_equivalent:
            pool = EQUIVALENCE_TYPES
            truth_for_type = truth_pair_type if truth_equivalent else None
            claimed_type = self._claim_type(
                rng,
                truth_for_type,
                skill.type_accuracy * prompt_quality,
                pool,
                EQUIV_TYPE_CONFUSIONS,
            )
        elif truth_pair_type is not None:
            pool = NON_EQUIVALENCE_TYPES
            truth_for_type = truth_pair_type if not truth_equivalent else None
            claimed_type = self._claim_type(
                rng,
                truth_for_type,
                skill.type_accuracy * prompt_quality,
                pool,
                EQUIV_TYPE_CONFUSIONS,
            )
        text = verbalize.equivalence_response(
            says_equivalent, claimed_type, rng, self.profile.verbosity
        )
        return LLMResponse(
            text=text,
            model=self.profile.name,
            metadata={
                "says_equivalent": says_equivalent,
                "claimed_type": claimed_type,
            },
        )

    # -- query_exp ------------------------------------------------------------------

    def answer_explanation(
        self,
        instance_id: str,
        query_text: str,
        statement: Optional[n.Statement],
        prompt_quality: float = 1.0,
    ) -> LLMResponse:
        rng = self._rng("query_exp", instance_id)
        style = self.profile.explanation
        if statement is None:
            return LLMResponse(
                text="This query could not be interpreted.",
                model=self.profile.name,
                metadata={"flaws": ["unparseable"]},
            )
        text = describe_statement(statement)
        flaws: list[str] = []
        if rng.random() < style.superlative_invert * (2.0 - prompt_quality):
            inverted = _invert_superlatives(text)
            if inverted != text:
                text = inverted
                flaws.append("superlative-invert")
        if rng.random() < style.detail_drop:
            dropped = _drop_selected_details(text)
            if dropped != text:
                text = dropped
                flaws.append("detail-drop")
        if rng.random() < style.context_loss:
            reduced = _drop_context(text)
            if reduced != text:
                text = reduced
                flaws.append("context-loss")
        return LLMResponse(
            text=text,
            model=self.profile.name,
            metadata={"flaws": flaws},
        )

    # -- shared helpers ---------------------------------------------------------------

    def _claim_type(
        self,
        rng: random.Random,
        truth_type: Optional[str],
        type_accuracy: float,
        pool: Sequence[str],
        confusions: dict[str, tuple[str, ...]],
    ) -> str:
        if truth_type is not None and rng.random() < _clamp(type_accuracy):
            return truth_type
        if truth_type is not None:
            neighbours = confusions.get(truth_type, ())
            if neighbours and rng.random() < 0.75:
                return rng.choice(list(neighbours))
        return rng.choice(list(pool))


def _invert_superlatives(text: str) -> str:
    """Misread ORDER BY direction (the Q18 failure: slowest vs fastest)."""
    swaps = {
        "lowest": "highest",
        "highest": "lowest",
        "ascending": "descending",
        "descending": "ascending",
        "minimum": "maximum",
        "maximum": "minimum",
    }
    for old, new in swaps.items():
        if old in text:
            return text.replace(old, new, 1)
    return text


def _drop_selected_details(text: str) -> str:
    """Omit part of the select list (the Q17 failure: missing attributes)."""
    for connector in (" and ", ", "):
        head, sep, tail = text.partition(connector)
        if sep and (" from " in tail or " where " in tail):
            for boundary in (" from ", " where "):
                if boundary in tail:
                    return head + boundary + tail.split(boundary, 1)[1]
    return text


def _drop_context(text: str) -> str:
    """Reduce the description to its head clause (the Q15/Q16 failure)."""
    for boundary in (" where ", " from "):
        if boundary in text:
            head = text.split(boundary, 1)[0]
            return head.rstrip(",. ") + "."
    return text
