"""Simulated LLM substrate: profiles, reasoning, verbalisation."""

from repro.llm.base import LLMResponse, ModelClient
from repro.llm.describer import describe_query, describe_statement
from repro.llm.profiles import (
    EQUIVALENCE,
    EXPLANATION,
    MODEL_PROFILES,
    PERFORMANCE,
    SYNTAX,
    TOKEN,
    ExplanationStyle,
    ModelProfile,
    TaskSkill,
    get_profile,
    model_names,
)
from repro.llm.simulated import SimulatedLLM

__all__ = [
    "LLMResponse",
    "ModelClient",
    "SimulatedLLM",
    "ModelProfile",
    "TaskSkill",
    "ExplanationStyle",
    "MODEL_PROFILES",
    "get_profile",
    "model_names",
    "SYNTAX",
    "TOKEN",
    "PERFORMANCE",
    "EQUIVALENCE",
    "EXPLANATION",
    "describe_statement",
    "describe_query",
]
