"""Record/replay backend: deterministic, offline model transport.

``record`` mode wraps an *inner* backend (the simulator by default, but
any registered backend works) and persists every response as a fixture;
``replay`` mode serves those fixtures back without touching the inner
backend — or the network — at all.  This is what lets CI run a full
grid end-to-end through the real dispatcher with zero model calls and
zero sockets.

Fixture layout on disk (human-diffable, append-friendly)::

    <fixtures_dir>/
        <model>/
            <task>.jsonl     # one JSON object per line:
                             # {"key", "request_id", "text", "model",
                             #  "metadata"}

``key`` is :meth:`ModelRequest.fingerprint` — a hash of the
wire-visible request fields (model, task, instance id, prompt text) —
so fixtures survive refactors that do not change what would actually be
sent to a model, and go stale (loudly: a missing-fixture error names
the re-record command) when prompts or datasets genuinely change.
Records append with ``O_APPEND``; response lines are far below the
POSIX atomic-append pipe threshold, so concurrent worker processes can
record into one file safely.  Record mode always re-asks the inner
backend; an identical response writes nothing, a changed one appends a
refreshed line (the last line for a key wins on load), so re-recording
heals stale fixtures in place.

Spec options:

* ``dir`` — fixtures root (required);
* ``mode`` — ``replay`` (default) or ``record``;
* ``inner`` — backend name to record from (default ``simulated``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.llm.base import LLMResponse
from repro.llm.backends.base import (
    BackendError,
    BackendSpec,
    BaseBackend,
    ModelBackend,
    ModelRequest,
)
from repro.llm.profiles import ModelProfile

#: Default fixtures root, relative to the working directory.
DEFAULT_FIXTURES_DIR = Path("tests/fixtures/replay")


def fixtures_fingerprint(root: Path) -> str:
    """Content hash of every fixture shard under *root*.

    Folded into replay-mode cell cache keys so editing or re-recording
    fixtures invalidates cells cached against the old responses — the
    fixture store is an *input* of a replay run, exactly like source
    code or the generation seed.
    """
    import hashlib

    digest = hashlib.sha256()
    root = Path(root)
    for path in sorted(root.glob("*/*.jsonl")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
    return digest.hexdigest()


def _jsonable_metadata(metadata: dict) -> dict:
    """Keep only JSON-round-trippable metadata (drop exotic values)."""
    try:
        return json.loads(json.dumps(metadata))
    except (TypeError, ValueError):
        clean = {}
        for key, value in metadata.items():
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                continue
            clean[key] = value
        return clean


class FixtureStore:
    """One fixtures directory: lazy per-(model, task) shards."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self._shards: dict[tuple[str, str], dict[str, dict]] = {}

    def shard_path(self, model: str, task: str) -> Path:
        return self.root / model / f"{task}.jsonl"

    def _load(self, model: str, task: str) -> dict[str, dict]:
        key = (model, task)
        if key not in self._shards:
            entries: dict[str, dict] = {}
            path = self.shard_path(model, task)
            if path.is_file():
                for line in path.read_text(encoding="utf-8").splitlines():
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                        entries[entry["key"]] = entry
                    except (ValueError, KeyError, TypeError):
                        continue  # torn or hand-mangled line: skip, loudly missing later
            self._shards[key] = entries
        return self._shards[key]

    def get(self, request: ModelRequest) -> Optional[dict]:
        return self._load(request.model, request.task).get(request.fingerprint())

    def put(self, request: ModelRequest, response: LLMResponse) -> None:
        """Persist one response; identical re-records write nothing.

        A *changed* response for a known key appends a new line (the
        last line wins on load), so re-recording refreshes stale
        fixtures instead of silently keeping old response text.
        """
        entry = {
            "key": request.fingerprint(),
            "request_id": request.request_id,
            "text": response.text,
            "model": response.model,
            "metadata": _jsonable_metadata(response.metadata),
        }
        existing = self._load(request.model, request.task).get(entry["key"])
        if existing == entry:
            return
        path = self.shard_path(request.model, request.task)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._load(request.model, request.task)[entry["key"]] = entry

    def entry_count(self) -> int:
        return sum(
            sum(1 for line in path.read_text(encoding="utf-8").splitlines() if line)
            for path in sorted(self.root.glob("*/*.jsonl"))
        )


class ReplayBackend(BaseBackend):
    """Serves fixtures (replay) or records them through an inner backend."""

    name = "replay"
    blocking_io = False  # file reads are memoised; effectively compute

    def __init__(
        self,
        profile: ModelProfile,
        spec: BackendSpec,
        inner: Optional[ModelBackend] = None,
    ) -> None:
        raw_dir = spec.option("dir") or str(DEFAULT_FIXTURES_DIR)
        self.profile = profile
        self.spec = spec
        self.store = FixtureStore(Path(raw_dir))
        self.mode = spec.option("mode", "replay")
        if self.mode not in ("replay", "record"):
            raise BackendError(
                f"replay mode must be 'replay' or 'record', got {self.mode!r}"
            )
        self.inner = inner
        if self.mode == "record" and self.inner is None:
            from repro.llm.backends.registry import create_backend

            inner_name = spec.option("inner", "simulated") or "simulated"
            if inner_name == self.name:
                raise BackendError("replay cannot record from itself")
            self.inner = create_backend(
                BackendSpec.build(inner_name, spec.as_dict()), profile
            )

    def complete(self, request: ModelRequest) -> LLMResponse:
        if self.mode == "record":
            # Always re-ask the inner backend: recording is the refresh
            # path, and a stale fixture must not shadow a changed inner
            # response.  Identical responses write nothing.
            assert self.inner is not None
            response = self.inner.complete(request)
            self.store.put(request, response)
            return response
        entry = self.store.get(request)
        if entry is not None:
            return LLMResponse(
                text=entry["text"],
                model=entry.get("model", request.model),
                prompt=request.prompt_text,
                metadata=dict(entry.get("metadata", {})),
            )
        raise BackendError(
            f"no fixture for {request.request_id!r} "
            f"({request.model}/{request.task}) under {self.store.root}; "
            "re-record with: repro run <artifact> --backend replay "
            f"--record-fixtures --fixtures-dir {self.store.root}"
        )

    async def acomplete(self, request: ModelRequest) -> LLMResponse:
        if self.mode == "record":
            assert self.inner is not None
            response = await self.inner.acomplete(request)
            self.store.put(request, response)
            return response
        return self.complete(request)
