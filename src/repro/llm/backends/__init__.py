"""Pluggable model backends and the async batched dispatcher.

See :mod:`repro.llm.backends.base` for the protocol and
:mod:`repro.llm.backends.dispatch` for the request funnel every engine
shard goes through.
"""

from repro.llm.backends.base import (
    BackendError,
    BackendSpec,
    BaseBackend,
    CircuitOpenError,
    DeadlineExceededError,
    DispatchStats,
    ModelBackend,
    ModelRequest,
    SIMULATED_SPEC,
    TransientBackendError,
)
from repro.llm.backends.dispatch import (
    DEFAULT_BREAKER_COOLDOWN,
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_MAX_CONCURRENCY,
    AsyncDispatcher,
    BreakerState,
    CircuitBreaker,
    TokenBucket,
    dispatch_requests,
)
from repro.llm.backends.registry import (
    BACKENDS,
    backend_names,
    create_backend,
    describe_backends,
    spec_from_cli,
)

__all__ = [
    "BackendError",
    "TransientBackendError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "BreakerState",
    "CircuitBreaker",
    "DEFAULT_BREAKER_THRESHOLD",
    "DEFAULT_BREAKER_COOLDOWN",
    "BackendSpec",
    "SIMULATED_SPEC",
    "BaseBackend",
    "ModelBackend",
    "ModelRequest",
    "DispatchStats",
    "AsyncDispatcher",
    "TokenBucket",
    "dispatch_requests",
    "DEFAULT_MAX_CONCURRENCY",
    "BACKENDS",
    "backend_names",
    "create_backend",
    "describe_backends",
    "spec_from_cli",
]
