"""OpenAI-compatible HTTP backend.

Talks to any endpoint implementing the de-facto ``/chat/completions``
wire format (OpenAI, vLLM, llama.cpp server, LiteLLM proxies, ...).
The transport is stdlib ``urllib`` — no hard dependency — and ``httpx``
is used automatically when installed (connection pooling, saner
timeouts).  The transport is injectable for tests, which is also how
the unit suite exercises this backend without a network.

Spec options (all strings, all folded into the backend fingerprint and
therefore into every cell cache key):

* ``base_url`` — endpoint root, e.g. ``http://localhost:8000/v1``;
* ``model`` — remote model name; defaults to the profile name, and a
  ``model_map`` option ("gpt4=gpt-4o,gemini=gemini-pro") can rename
  per-profile;
* ``api_key_env`` — *name* of the environment variable holding the key
  (default ``OPENAI_API_KEY``; the key itself never enters a spec);
* ``temperature`` — sampling temperature (default "0");
* ``timeout`` — per-request seconds (default "60").
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request
from typing import Callable, Optional

from repro.llm.base import LLMResponse
from repro.llm.backends.base import (
    BackendError,
    BackendSpec,
    BaseBackend,
    ModelRequest,
    TransientBackendError,
)
from repro.llm.profiles import ModelProfile

#: HTTP statuses worth retrying (rate limits and server-side hiccups).
RETRYABLE_STATUSES = frozenset({408, 409, 429, 500, 502, 503, 504})

DEFAULT_TIMEOUT = 60.0


def _urllib_transport(
    url: str, payload: dict, headers: dict[str, str], timeout: float
) -> dict:
    """POST ``payload`` as JSON; returns the decoded JSON response."""
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **headers},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        body = ""
        try:
            body = exc.read().decode("utf-8", "replace")[:500]
        except OSError:
            pass
        message = f"HTTP {exc.code} from {url}: {body}"
        if exc.code in RETRYABLE_STATUSES:
            raise TransientBackendError(message) from exc
        raise BackendError(message) from exc
    except (urllib.error.URLError, TimeoutError, OSError) as exc:
        raise TransientBackendError(f"cannot reach {url}: {exc}") from exc


def _httpx_transport_factory():  # pragma: no cover - exercised only with httpx
    """An httpx-pooled transport, or None when httpx is not installed.

    The returned callable carries a ``close`` attribute releasing the
    pooled connections; :meth:`OpenAICompatBackend.close` calls it.
    """
    try:
        import httpx
    except ImportError:
        return None

    client = httpx.Client()

    def transport(
        url: str, payload: dict, headers: dict[str, str], timeout: float
    ) -> dict:
        try:
            response = client.post(
                url, json=payload, headers=headers, timeout=timeout
            )
        except httpx.HTTPError as exc:
            raise TransientBackendError(f"cannot reach {url}: {exc}") from exc
        if response.status_code in RETRYABLE_STATUSES:
            raise TransientBackendError(
                f"HTTP {response.status_code} from {url}: {response.text[:500]}"
            )
        if response.status_code >= 400:
            raise BackendError(
                f"HTTP {response.status_code} from {url}: {response.text[:500]}"
            )
        return response.json()

    transport.close = client.close  # type: ignore[attr-defined]
    return transport


def _float_option(spec: BackendSpec, key: str, default: float) -> float:
    """A numeric spec option, or a clean error naming the bad value."""
    raw = spec.option(key)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        raise BackendError(
            f"backend option {key}={raw!r} is not a number"
        ) from None


def parse_model_map(raw: str) -> dict[str, str]:
    """``"gpt4=gpt-4o,gemini=gemini-pro"`` -> ``{"gpt4": "gpt-4o", ...}``."""
    mapping: dict[str, str] = {}
    for pair in filter(None, (part.strip() for part in raw.split(","))):
        key, sep, value = pair.partition("=")
        if not sep or not key.strip() or not value.strip():
            raise ValueError(
                f"bad model_map entry {pair!r}; expected 'profile=remote'"
            )
        mapping[key.strip()] = value.strip()
    return mapping


class OpenAICompatBackend(BaseBackend):
    """Chat-completions client for one profile against one endpoint."""

    name = "openai_compat"
    blocking_io = True  # urllib blocks: the dispatcher threads requests out

    def __init__(
        self,
        profile: ModelProfile,
        spec: BackendSpec,
        transport: Optional[Callable[..., dict]] = None,
    ) -> None:
        base_url = spec.option("base_url")
        if not base_url:
            raise BackendError(
                "openai_compat needs a base_url option "
                "(e.g. --backend-opt base_url=http://localhost:8000/v1)"
            )
        self.profile = profile
        self.spec = spec
        self.url = base_url.rstrip("/") + "/chat/completions"
        try:
            model_map = parse_model_map(spec.option("model_map", "") or "")
        except ValueError as exc:
            raise BackendError(str(exc)) from None
        self.remote_model = model_map.get(
            profile.name, spec.option("model", profile.name)
        )
        self.temperature = _float_option(spec, "temperature", 0.0)
        self.timeout = _float_option(spec, "timeout", DEFAULT_TIMEOUT)
        self.api_key_env = spec.option("api_key_env", "OPENAI_API_KEY")
        self.transport = (
            transport or _httpx_transport_factory() or _urllib_transport
        )

    def _headers(self) -> dict[str, str]:
        key = os.environ.get(self.api_key_env or "", "")
        return {"Authorization": f"Bearer {key}"} if key else {}

    def close(self) -> None:
        """Release pooled connections (no-op for the urllib transport)."""
        closer = getattr(self.transport, "close", None)
        if closer is not None:
            closer()

    def complete(self, request: ModelRequest) -> LLMResponse:
        payload = {
            "model": self.remote_model,
            "messages": [{"role": "user", "content": request.prompt_text}],
            "temperature": self.temperature,
        }
        data = self.transport(self.url, payload, self._headers(), self.timeout)
        try:
            choice = data["choices"][0]
            text = choice["message"]["content"]
        except (KeyError, IndexError, TypeError) as exc:
            raise BackendError(
                f"malformed chat-completions response from {self.url}: "
                f"{str(data)[:300]}"
            ) from exc
        if text is None:
            raise BackendError(
                f"empty completion from {self.url} for {request.request_id!r}"
            )
        return LLMResponse(
            text=text,
            model=request.model,
            prompt=request.prompt_text,
            metadata={
                "remote_model": self.remote_model,
                "finish_reason": choice.get("finish_reason"),
                "usage": data.get("usage", {}),
            },
        )
