"""Model-backend abstraction: how the engine talks to *any* model.

The evaluation pipeline is backend-agnostic: a task renders a
:class:`ModelRequest` (prompt text plus, for the simulator, the task
instance the ground-truth noise model needs), a backend turns it into an
:class:`repro.llm.base.LLMResponse`, and the task's response parser
extracts labels from the response *text* — exactly the paper's
prompt → verbose response → post-processing path (section 3.4).

Concrete backends live next to this module:

* :mod:`repro.llm.backends.simulated` — wraps :class:`SimulatedLLM`
  (byte-identical to the historical in-process path);
* :mod:`repro.llm.backends.openai_compat` — any OpenAI-style HTTP
  endpoint (stdlib ``urllib`` transport; ``httpx`` is optional);
* :mod:`repro.llm.backends.replay` — record/replay transport over
  on-disk fixtures, so CI runs fully offline and deterministic.

A backend is *addressed* by a :class:`BackendSpec` — a frozen,
picklable ``(name, options)`` pair that crosses process boundaries in
the sharded engine and whose :meth:`~BackendSpec.fingerprint` is folded
into every cell cache key, so a cell cached under one backend (or one
endpoint) is never served to another.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Optional, Protocol, runtime_checkable

from repro.llm.base import LLMResponse


class BackendError(Exception):
    """A request failed for good: do not retry."""


class TransientBackendError(BackendError):
    """A request failed in a retryable way (timeouts, 429s, 5xx...)."""


class CircuitOpenError(BackendError):
    """The backend's circuit breaker is open: fail fast, do not retry.

    Raised by the dispatcher *before* a request is issued when the
    backend has failed enough recent calls that further attempts would
    only burn the retry ladder against a dead endpoint.  Terminal by
    design — the run surfaces it immediately (or degrades the cell,
    under ``--on-cell-error degrade``) instead of grinding through
    per-request backoff schedules.
    """


class DeadlineExceededError(BackendError):
    """A wall-clock deadline (per request or per cell) expired.

    Terminal: the time budget is gone, so retrying cannot help.
    """


@dataclass(frozen=True)
class ModelRequest:
    """One model invocation, addressed to one simulated/hosted model.

    ``prompt_text`` is the fully rendered prompt a hosted backend sends
    over the wire.  ``instance`` carries the task instance for backends
    that *derive* the answer instead of generating it (the simulator
    needs the ground truth its calibrated noise model perturbs); hosted
    backends must ignore it.  ``prompt_quality`` is the prompt
    template's calibrated quality knob, again simulator-only.
    """

    request_id: str
    task: str
    model: str
    prompt_text: str
    prompt_quality: float = 1.0
    instance: Optional[Any] = None

    def fingerprint(self) -> str:
        """Stable content address of the request (fixture lookup key).

        Only wire-visible fields participate: a fixture recorded from
        one backend must replay for any other backend asked the same
        question about the same instance.
        """
        payload = json.dumps(
            {
                "request_id": self.request_id,
                "task": self.task,
                "model": self.model,
                "prompt_text": self.prompt_text,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@runtime_checkable
class ModelBackend(Protocol):
    """The minimal surface the dispatcher needs from a backend."""

    #: Registry name ("simulated", "openai_compat", "replay", ...).
    name: str

    def complete(self, request: ModelRequest) -> LLMResponse:
        """Answer one request synchronously."""
        ...

    async def acomplete(self, request: ModelRequest) -> LLMResponse:
        """Answer one request from the dispatcher's event loop."""
        ...


class BaseBackend:
    """Shared async shim: ``acomplete`` delegates to ``complete``.

    CPU-bound backends (the simulator) override nothing; blocking I/O
    backends (HTTP) inherit an ``acomplete`` that runs ``complete`` in a
    worker thread so the dispatcher's event loop keeps multiple requests
    in flight.
    """

    name = "base"
    #: Whether ``complete`` blocks on I/O (dispatch via a thread) or is
    #: pure compute (call inline; a thread would add overhead only).
    blocking_io = False

    def complete(self, request: ModelRequest) -> LLMResponse:
        raise NotImplementedError

    async def acomplete(self, request: ModelRequest) -> LLMResponse:
        if self.blocking_io:
            import asyncio

            return await asyncio.to_thread(self.complete, request)
        return self.complete(request)

    def close(self) -> None:
        """Release any held resources (idempotent; default: none)."""


@dataclass(frozen=True)
class BackendSpec:
    """Picklable address of a backend: registry name + flat options.

    Options are stored as a sorted tuple of ``(key, value)`` string
    pairs so the spec is hashable, picklable, and content-addressable.
    Secrets must never be placed in options — backends read credentials
    from the environment (e.g. ``api_key_env`` names the variable).
    """

    name: str = "simulated"
    options: tuple[tuple[str, str], ...] = ()

    @classmethod
    def build(cls, name: str, options: Optional[dict[str, str]] = None) -> "BackendSpec":
        return cls(
            name=name,
            options=tuple(sorted((options or {}).items())),
        )

    def option(self, key: str, default: Optional[str] = None) -> Optional[str]:
        for candidate, value in self.options:
            if candidate == key:
                return value
        return default

    def as_dict(self) -> dict[str, str]:
        return dict(self.options)

    def fingerprint(self) -> str:
        """Backend identity folded into cell cache keys.

        Hashes the registry name plus every option — the endpoint URL,
        the remote model mapping, the fixture directory — so results
        obtained from different backends (or the same backend pointed at
        a different endpoint) can never alias one another in the cache.
        """
        payload = json.dumps(
            {"name": self.name, "options": self.as_dict()}, sort_keys=True
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: The default spec: the in-process simulator, no options.
SIMULATED_SPEC = BackendSpec(name="simulated")


@dataclass
class DispatchStats:
    """Counters one dispatcher run accumulates."""

    requests: int = 0
    completed: int = 0
    retries: int = 0
    failures: int = 0
    rate_waits: int = 0
    timeouts: int = 0
    breaker_rejections: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "retries": self.retries,
            "failures": self.failures,
            "rate_waits": self.rate_waits,
            "timeouts": self.timeouts,
            "breaker_rejections": self.breaker_rejections,
            "seconds": round(self.seconds, 6),
        }


# Re-exported for convenience: backends produce plain LLMResponses.
__all__ = [
    "BackendError",
    "TransientBackendError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "ModelRequest",
    "ModelBackend",
    "BaseBackend",
    "BackendSpec",
    "SIMULATED_SPEC",
    "DispatchStats",
    "LLMResponse",
]
