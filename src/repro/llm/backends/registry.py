"""Backend registry: names -> factories, plus the CLI-facing catalogue."""

from __future__ import annotations

from typing import Callable, Optional

from repro.llm.backends.base import (
    BackendSpec,
    ModelBackend,
)
from repro.llm.profiles import ModelProfile

#: name -> (description, factory(profile, spec) -> backend).
_FactoryT = Callable[[ModelProfile, BackendSpec], ModelBackend]


def _make_simulated(profile: ModelProfile, spec: BackendSpec) -> ModelBackend:
    from repro.llm.backends.simulated import SimulatedBackend

    return SimulatedBackend(profile)


def _make_openai_compat(profile: ModelProfile, spec: BackendSpec) -> ModelBackend:
    from repro.llm.backends.openai_compat import OpenAICompatBackend

    return OpenAICompatBackend(profile, spec)


def _make_replay(profile: ModelProfile, spec: BackendSpec) -> ModelBackend:
    from repro.llm.backends.replay import ReplayBackend

    return ReplayBackend(profile, spec)


def _make_chaos(profile: ModelProfile, spec: BackendSpec) -> ModelBackend:
    from repro.chaos.backend import ChaosBackend

    return ChaosBackend(profile, spec)


BACKENDS: dict[str, tuple[str, _FactoryT]] = {
    "simulated": (
        "in-process calibrated simulator (default; offline, deterministic)",
        _make_simulated,
    ),
    "openai_compat": (
        "any OpenAI-style /chat/completions endpoint "
        "(options: base_url, model, model_map, api_key_env, temperature, timeout)",
        _make_openai_compat,
    ),
    "replay": (
        "record/replay transport over on-disk fixtures "
        "(options: dir, mode=replay|record, inner)",
        _make_replay,
    ),
    "chaos": (
        "fault-injection wrapper around another backend "
        "(options: inner, rate, kind=429|500|timeout, fail_attempts, chaos_seed)",
        _make_chaos,
    ),
}

#: Option keys each backend understands.  ``spec_from_cli`` rejects
#: anything else: an unrecognised key would be silently ignored by the
#: backend yet still change every cell cache key via the fingerprint.
BACKEND_OPTION_KEYS: dict[str, frozenset[str]] = {
    "simulated": frozenset(),
    "openai_compat": frozenset(
        {"base_url", "model", "model_map", "api_key_env", "temperature", "timeout"}
    ),
    "replay": frozenset({"dir", "mode", "inner"}),
    "chaos": frozenset({"inner", "rate", "kind", "fail_attempts", "chaos_seed"}),
}


def allowed_option_keys(backend: str, options: dict[str, str]) -> frozenset[str]:
    """Keys valid for *backend* — wrappers (replay, chaos) also accept
    their inner backend's keys (they ride the same spec so the wrapper
    can configure the inner transport, e.g. ``inner=openai_compat``
    plus ``base_url=...``)."""
    keys = BACKEND_OPTION_KEYS.get(backend, frozenset())
    if backend in ("replay", "chaos"):
        inner = options.get("inner", "simulated")
        keys = keys | BACKEND_OPTION_KEYS.get(inner, frozenset())
    return keys


def backend_names() -> list[str]:
    return list(BACKENDS)


def create_backend(
    spec: BackendSpec, profile: ModelProfile
) -> ModelBackend:
    """Instantiate the backend *spec* names, for one model profile."""
    try:
        _, factory = BACKENDS[spec.name]
    except KeyError:
        raise KeyError(
            f"unknown backend {spec.name!r}; expected one of {sorted(BACKENDS)}"
        ) from None
    return factory(profile, spec)


def describe_backends() -> list[tuple[str, str]]:
    """(name, description) rows for ``repro backends list``."""
    return [(name, description) for name, (description, _) in BACKENDS.items()]


def spec_from_cli(
    backend: str,
    opts: Optional[list[str]] = None,
    fixtures_dir: Optional[str] = None,
    record_fixtures: bool = False,
) -> BackendSpec:
    """Build a :class:`BackendSpec` from CLI arguments.

    ``opts`` are raw ``KEY=VALUE`` strings from repeated
    ``--backend-opt`` flags; the dedicated replay flags fold into the
    same option map.  Replay-only flags on any other backend raise —
    they would silently do nothing while still changing the backend
    fingerprint (and therefore every cell cache key).
    """
    if backend != "replay" and (fixtures_dir is not None or record_fixtures):
        raise ValueError(
            "--fixtures-dir/--record-fixtures are only meaningful with "
            f"--backend replay (got --backend {backend})"
        )
    options: dict[str, str] = {}
    for raw in opts or []:
        key, sep, value = raw.partition("=")
        if not sep or not key.strip():
            raise ValueError(
                f"bad --backend-opt {raw!r}; expected KEY=VALUE"
            )
        options[key.strip()] = value.strip()
    if fixtures_dir is not None:
        options.setdefault("dir", str(fixtures_dir))
    if record_fixtures:
        options["mode"] = "record"
    if backend == "replay" and "dir" not in options:
        # The default must live in the spec itself: the dir is part of
        # the backend's cache-key fingerprint, and an implicit default
        # must fingerprint identically to the same dir passed explicitly.
        from repro.llm.backends.replay import DEFAULT_FIXTURES_DIR

        options["dir"] = str(DEFAULT_FIXTURES_DIR)
    if backend in BACKEND_OPTION_KEYS:
        allowed = allowed_option_keys(backend, options)
        unknown = sorted(set(options) - allowed)
        if unknown:
            raise ValueError(
                f"unknown option(s) for backend {backend!r}: "
                f"{', '.join(unknown)}; allowed: "
                f"{', '.join(sorted(allowed)) or '(none)'}"
            )
    return BackendSpec.build(backend, options)
