"""Async batched dispatcher: the one funnel every model call goes through.

The engine hands a whole shard of :class:`ModelRequest`\\ s to
:class:`AsyncDispatcher`, which keeps up to ``max_concurrency`` of them
in flight, throttles issue rate through a token bucket (``rps``), and
retries transient failures with exponential backoff plus deterministic
jitter.  Results come back in request order regardless of completion
order, so sharded evaluation stays byte-identical to the serial path.

Determinism: the jitter RNG is seeded from each request's id, and
backends themselves are deterministic (the simulator) or replayed from
fixtures — so a retried schedule changes *when* calls happen, never
*what* they return.

Test seams: ``sleep`` and ``clock`` are injectable, so the retry and
rate-limit paths are property-tested against a fake backend and a fake
clock without any real waiting.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Awaitable, Callable, Optional, Sequence

from repro.llm.base import LLMResponse
from repro.llm.backends.base import (
    BackendError,
    DispatchStats,
    ModelBackend,
    ModelRequest,
    TransientBackendError,
)

#: Default in-flight bound; matches a typical hosted-API comfort zone.
DEFAULT_MAX_CONCURRENCY = 8

#: Retry schedule defaults (attempt n sleeps ~ base * 2**n, capped).
DEFAULT_MAX_RETRIES = 3
DEFAULT_BACKOFF_BASE = 0.1
DEFAULT_BACKOFF_CAP = 5.0


@dataclass
class BucketState:
    """Persistent token-bucket fill level.

    Split out from :class:`TokenBucket` so the *state* can outlive any
    one dispatcher/event loop: asyncio primitives (the bucket's lock)
    must be recreated per loop, but carrying the fill level across
    per-shard dispatch batches is what makes ``rps`` a sustained
    per-process rate instead of a fresh burst for every shard.
    """

    tokens: float
    updated: float


class TokenBucket:
    """Classic token bucket: ``rps`` sustained, ``burst`` peak.

    ``acquire`` waits (via the injected ``sleep``) until a token is
    available; refill is computed lazily from the injected ``clock`` so
    tests can drive it with virtual time.  Pass a shared
    :class:`BucketState` to continue a previous bucket's fill level.
    """

    def __init__(
        self,
        rps: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
        state: Optional[BucketState] = None,
    ) -> None:
        if rps <= 0:
            raise ValueError(f"rps must be > 0, got {rps}")
        self.rps = float(rps)
        self.capacity = float(burst) if burst is not None else max(self.rps, 1.0)
        self._clock = clock
        self._sleep = sleep
        self.state = (
            state if state is not None else BucketState(self.capacity, clock())
        )
        self._lock = asyncio.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(now - self.state.updated, 0.0)
        self.state.updated = now
        self.state.tokens = min(
            self.capacity, self.state.tokens + elapsed * self.rps
        )

    #: Tolerance against float rounding: sleeping exactly
    #: ``deficit / rps`` can refill to a hair *under* one token, which
    #: without slack would loop forever on ever-tinier sleeps.
    EPSILON = 1e-9

    async def acquire(self) -> int:
        """Take one token; returns how many waits were needed."""
        waits = 0
        async with self._lock:
            while True:
                self._refill()
                if self.state.tokens >= 1.0 - self.EPSILON:
                    self.state.tokens -= 1.0
                    return waits
                waits += 1
                deficit = 1.0 - self.state.tokens
                await self._sleep(deficit / self.rps + self.EPSILON)


def _jitter_rng(request: ModelRequest, attempt: int) -> random.Random:
    """Deterministic per-(request, attempt) jitter source."""
    return random.Random(f"backoff:{request.request_id}:{attempt}")


class AsyncDispatcher:
    """Bounded-concurrency, rate-limited, retrying request funnel."""

    def __init__(
        self,
        backend: ModelBackend,
        max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
        rps: Optional[float] = None,
        burst: Optional[float] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
        clock: Callable[[], float] = time.monotonic,
        bucket_state: Optional[BucketState] = None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.backend = backend
        self.max_concurrency = max_concurrency
        self.rps = rps
        self.burst = burst
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._clock = clock
        self.bucket_state = bucket_state
        self.stats = DispatchStats()

    def backoff_delay(self, request: ModelRequest, attempt: int) -> float:
        """Exponential backoff with deterministic jitter for *attempt*.

        ``attempt`` counts failures so far (1 for the first retry).
        Delay is ``base * 2**(attempt-1)`` scaled by a jitter factor in
        [1.0, 2.0), capped at ``backoff_cap``.
        """
        raw = self.backoff_base * (2.0 ** (attempt - 1))
        jitter = 1.0 + _jitter_rng(request, attempt).random()
        return min(raw * jitter, self.backoff_cap)

    async def _complete_with_retry(
        self, request: ModelRequest, bucket: Optional[TokenBucket]
    ) -> LLMResponse:
        attempt = 0
        while True:
            if bucket is not None:
                self.stats.rate_waits += await bucket.acquire()
            try:
                response = await self.backend.acomplete(request)
            except TransientBackendError:
                attempt += 1
                if attempt > self.max_retries:
                    self.stats.failures += 1
                    raise
                self.stats.retries += 1
                await self._sleep(self.backoff_delay(request, attempt))
                continue
            except BackendError:
                self.stats.failures += 1
                raise
            self.stats.completed += 1
            return response

    async def run(self, requests: Sequence[ModelRequest]) -> list[LLMResponse]:
        """Answer every request; results align index-for-index.

        Any request that exhausts its retries (or fails terminally)
        propagates its exception — the caller decides whether a partial
        cell is acceptable (the engine: it is not).
        """
        self.stats.requests += len(requests)
        started = self._clock()
        semaphore = asyncio.Semaphore(self.max_concurrency)
        bucket = None
        if self.rps is not None:
            bucket = TokenBucket(
                self.rps,
                self.burst,
                clock=self._clock,
                sleep=self._sleep,
                state=self.bucket_state,
            )
            # Persist the fill level across run() calls (and across the
            # per-shard dispatchers the engine workers create), so the
            # burst allowance is not replenished by mere re-batching.
            self.bucket_state = bucket.state

        async def bounded(request: ModelRequest) -> LLMResponse:
            async with semaphore:
                return await self._complete_with_retry(request, bucket)

        try:
            results = await asyncio.gather(
                *(bounded(request) for request in requests)
            )
        finally:
            self.stats.seconds += self._clock() - started
        return list(results)

    def run_sync(self, requests: Sequence[ModelRequest]) -> list[LLMResponse]:
        """``run`` from synchronous code (one private event loop)."""
        return asyncio.run(self.run(requests))


def dispatch_requests(
    backend: ModelBackend,
    requests: Sequence[ModelRequest],
    max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
    rps: Optional[float] = None,
) -> list[LLMResponse]:
    """One-shot convenience wrapper (tests, scripts, ad-hoc batches).

    The engine's shard paths construct :class:`AsyncDispatcher`
    directly instead, because they thread a persistent
    :class:`BucketState` through successive batches — this wrapper
    starts every call with a fresh burst.
    """
    dispatcher = AsyncDispatcher(
        backend, max_concurrency=max_concurrency, rps=rps
    )
    return dispatcher.run_sync(requests)
