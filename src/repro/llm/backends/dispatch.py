"""Async batched dispatcher: the one funnel every model call goes through.

The engine hands a whole shard of :class:`ModelRequest`\\ s to
:class:`AsyncDispatcher`, which keeps up to ``max_concurrency`` of them
in flight, throttles issue rate through a token bucket (``rps``), and
retries transient failures with exponential backoff plus deterministic
jitter.  Results come back in request order regardless of completion
order, so sharded evaluation stays byte-identical to the serial path.

Determinism: the jitter RNG is seeded from each request's id, and
backends themselves are deterministic (the simulator) or replayed from
fixtures — so a retried schedule changes *when* calls happen, never
*what* they return.

Test seams: ``sleep`` and ``clock`` are injectable, so the retry and
rate-limit paths are property-tested against a fake backend and a fake
clock without any real waiting.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from dataclasses import dataclass
from typing import Awaitable, Callable, Optional, Sequence

from collections import deque
from repro.llm.base import LLMResponse
from repro.llm.backends.base import (
    BackendError,
    CircuitOpenError,
    DeadlineExceededError,
    DispatchStats,
    ModelBackend,
    ModelRequest,
    TransientBackendError,
)

#: Default in-flight bound; matches a typical hosted-API comfort zone.
DEFAULT_MAX_CONCURRENCY = 8

#: Retry schedule defaults (attempt n sleeps ~ base * 2**n, capped).
DEFAULT_MAX_RETRIES = 3
DEFAULT_BACKOFF_BASE = 0.1
DEFAULT_BACKOFF_CAP = 5.0

#: Circuit-breaker defaults: trip after this many consecutive transient
#: failures, or when the failure rate over the rolling window crosses
#: the rate threshold (only once the window holds ``min_calls`` calls).
DEFAULT_BREAKER_THRESHOLD = 5
DEFAULT_BREAKER_WINDOW = 20
DEFAULT_BREAKER_RATE = 0.5
DEFAULT_BREAKER_MIN_CALLS = 10
#: Seconds an open breaker waits before letting one probe through.
DEFAULT_BREAKER_COOLDOWN = 30.0


@dataclass
class BucketState:
    """Persistent token-bucket fill level.

    Split out from :class:`TokenBucket` so the *state* can outlive any
    one dispatcher/event loop: asyncio primitives must be recreated per
    loop, but carrying the fill level across per-shard dispatch batches
    is what makes ``rps`` a sustained per-process rate instead of a
    fresh burst for every shard.

    Refill-and-take is atomic under a process-wide (threading) lock:
    concurrent jobs — each with its own dispatcher, event loop and
    thread — can share one ``BucketState`` without double-counting the
    same elapsed interval or granting one token twice.  An asyncio lock
    cannot provide this (each loop would get its own), and the state
    never crosses a process boundary (workers keep per-process states),
    so a plain ``threading.Lock`` is exactly sufficient.
    """

    tokens: float
    updated: float

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def take(
        self, rps: float, capacity: float, now: float, epsilon: float = 0.0
    ) -> tuple[bool, float]:
        """Atomically refill to *now* and try to take one token.

        Returns ``(granted, deficit)``: ``deficit`` is how many tokens
        short the bucket is after the refill (0.0 when granted), which
        callers turn into a sleep (``deficit / rps``) or a 429
        ``Retry-After``.
        """
        with self._lock:
            elapsed = max(now - self.updated, 0.0)
            self.updated = now
            self.tokens = min(capacity, self.tokens + elapsed * rps)
            if self.tokens >= 1.0 - epsilon:
                self.tokens -= 1.0
                return True, 0.0
            return False, 1.0 - self.tokens


class TokenBucket:
    """Classic token bucket: ``rps`` sustained, ``burst`` peak.

    ``acquire`` waits (via the injected ``sleep``) until a token is
    available; refill is computed lazily from the injected ``clock`` so
    tests can drive it with virtual time.  Pass a shared
    :class:`BucketState` to continue a previous bucket's fill level.
    """

    def __init__(
        self,
        rps: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
        state: Optional[BucketState] = None,
    ) -> None:
        if rps <= 0:
            raise ValueError(f"rps must be > 0, got {rps}")
        self.rps = float(rps)
        self.capacity = float(burst) if burst is not None else max(self.rps, 1.0)
        self._clock = clock
        self._sleep = sleep
        self.state = (
            state if state is not None else BucketState(self.capacity, clock())
        )
        self._lock = asyncio.Lock()

    #: Tolerance against float rounding: sleeping exactly
    #: ``deficit / rps`` can refill to a hair *under* one token, which
    #: without slack would loop forever on ever-tinier sleeps.
    EPSILON = 1e-9

    async def acquire(self) -> int:
        """Take one token; returns how many waits were needed.

        The refill-and-take itself is atomic on the (possibly shared)
        :class:`BucketState`; the asyncio lock only serialises waiters
        within this event loop so they queue instead of thundering.
        """
        waits = 0
        async with self._lock:
            while True:
                granted, deficit = self.state.take(
                    self.rps, self.capacity, self._clock(), self.EPSILON
                )
                if granted:
                    return waits
                waits += 1
                await self._sleep(deficit / self.rps + self.EPSILON)

    def try_acquire(self) -> tuple[bool, float]:
        """Non-blocking take: ``(granted, seconds until next token)``.

        The synchronous entry point for callers that answer "try again
        later" instead of waiting — the server's per-client rate limit
        turns the returned delay into a 429 ``Retry-After``.
        """
        granted, deficit = self.state.take(
            self.rps, self.capacity, self._clock(), self.EPSILON
        )
        return granted, 0.0 if granted else deficit / self.rps


@dataclass
class BreakerState:
    """Persistent circuit-breaker health, shareable across dispatchers.

    Mirrors :class:`BucketState`: asyncio-free plain data, so the same
    breaker memory outlives any one dispatcher/event loop.  The engine
    threads one ``BreakerState`` per backend through successive
    per-shard dispatch batches — a backend that died during shard 3
    stays tripped for shard 4 instead of re-earning a fresh retry
    ladder.
    """

    #: "closed" (healthy), "open" (fail fast), or "half_open" (probing).
    state: str = "closed"
    consecutive_failures: int = 0
    #: Clock value when the breaker last tripped open.
    opened_at: float = 0.0
    #: True while the single half-open probe is in flight.
    probe_in_flight: bool = False
    #: Rolling call outcomes (True = success) for the rate trip.
    window: deque = None  # type: ignore[assignment]
    #: How many times this breaker has tripped open (observability).
    trips: int = 0

    def __post_init__(self) -> None:
        if self.window is None:
            self.window = deque(maxlen=DEFAULT_BREAKER_WINDOW)


class CircuitBreaker:
    """Closed/open/half-open breaker guarding one backend.

    * **closed** — requests flow; every outcome is recorded.  Trips to
      *open* on ``threshold`` consecutive transient failures, or when
      the failure rate over the rolling window reaches ``rate`` (once
      at least ``min_calls`` outcomes are in the window).
    * **open** — :meth:`admit` fails fast with
      :class:`CircuitOpenError` until ``cooldown`` seconds (by the
      injected ``clock``) have passed, then transitions to *half-open*.
    * **half-open** — exactly one probe request is admitted; its
      success closes the breaker (window reset), its failure re-opens
      it and restarts the cooldown timer.

    Like the token bucket, the clock is injectable so tests drive the
    cooldown with virtual time, and the mutable health lives in a
    shareable :class:`BreakerState`.
    """

    def __init__(
        self,
        threshold: int = DEFAULT_BREAKER_THRESHOLD,
        rate: float = DEFAULT_BREAKER_RATE,
        min_calls: int = DEFAULT_BREAKER_MIN_CALLS,
        cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        clock: Callable[[], float] = time.monotonic,
        state: Optional[BreakerState] = None,
        backend_name: str = "backend",
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.threshold = threshold
        self.rate = rate
        self.min_calls = min_calls
        self.cooldown = cooldown
        self.backend_name = backend_name
        self._clock = clock
        self.state = state if state is not None else BreakerState()

    def admit(self) -> None:
        """Gate one request; raises :class:`CircuitOpenError` if shut.

        In the *open* state the first caller after the cooldown elapses
        becomes the half-open probe; everyone else fails fast.  In the
        *half-open* state only that single probe is in flight — all
        other callers fail fast until its outcome is known.
        """
        s = self.state
        if s.state == "closed":
            return
        if s.state == "open":
            elapsed = self._clock() - s.opened_at
            if elapsed < self.cooldown:
                remaining = self.cooldown - elapsed
                raise CircuitOpenError(
                    f"circuit open for backend {self.backend_name!r}: "
                    f"failing fast ({s.trips} trip(s); next probe in "
                    f"{remaining:.1f}s)"
                )
            s.state = "half_open"
            s.probe_in_flight = True
            return
        # half_open: admit exactly one probe.
        if s.probe_in_flight:
            raise CircuitOpenError(
                f"circuit half-open for backend {self.backend_name!r}: "
                "probe already in flight"
            )
        s.probe_in_flight = True

    def on_success(self) -> None:
        """Record a successful call; a half-open probe closes the breaker."""
        s = self.state
        s.consecutive_failures = 0
        if s.state == "half_open":
            s.state = "closed"
            s.probe_in_flight = False
            s.window.clear()
            return
        s.window.append(True)

    def on_failure(self) -> None:
        """Record a transient failure; may trip the breaker open."""
        s = self.state
        s.consecutive_failures += 1
        if s.state == "half_open":
            # The probe failed: re-open and restart the cooldown.
            self._trip()
            return
        if s.state == "open":
            return
        s.window.append(False)
        failures = sum(1 for ok in s.window if not ok)
        rate_tripped = (
            len(s.window) >= self.min_calls
            and failures / len(s.window) >= self.rate
        )
        if s.consecutive_failures >= self.threshold or rate_tripped:
            self._trip()

    def release_probe(self) -> None:
        """Abandon an admitted half-open probe without an outcome.

        Called when the probe request is *cancelled* (graceful drain)
        rather than completing — otherwise ``probe_in_flight`` would
        stay latched and the breaker could never re-probe.
        """
        if self.state.state == "half_open":
            self.state.probe_in_flight = False

    def _trip(self) -> None:
        s = self.state
        s.state = "open"
        s.opened_at = self._clock()
        s.probe_in_flight = False
        s.trips += 1


def _jitter_rng(request: ModelRequest, attempt: int) -> random.Random:
    """Deterministic per-(request, attempt) jitter source."""
    return random.Random(f"backoff:{request.request_id}:{attempt}")


class AsyncDispatcher:
    """Bounded-concurrency, rate-limited, retrying request funnel."""

    def __init__(
        self,
        backend: ModelBackend,
        max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
        rps: Optional[float] = None,
        burst: Optional[float] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
        clock: Callable[[], float] = time.monotonic,
        bucket_state: Optional[BucketState] = None,
        request_timeout: Optional[float] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be > 0, got {request_timeout}"
            )
        self.backend = backend
        self.max_concurrency = max_concurrency
        self.rps = rps
        self.burst = burst
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._clock = clock
        self.bucket_state = bucket_state
        self.request_timeout = request_timeout
        self.breaker = breaker
        self.stats = DispatchStats()

    def backoff_delay(self, request: ModelRequest, attempt: int) -> float:
        """Exponential backoff with deterministic jitter for *attempt*.

        ``attempt`` counts failures so far (1 for the first retry).
        Delay is ``base * 2**(attempt-1)`` scaled by a jitter factor in
        [1.0, 2.0), capped at ``backoff_cap``.
        """
        raw = self.backoff_base * (2.0 ** (attempt - 1))
        jitter = 1.0 + _jitter_rng(request, attempt).random()
        return min(raw * jitter, self.backoff_cap)

    def _attempt_timeout(self, deadline: Optional[float]) -> Optional[float]:
        """Seconds this attempt may run: min(request_timeout, remaining).

        Raises :class:`DeadlineExceededError` if the batch deadline has
        already passed — checked *before* issuing, so a deadline that
        expires during backoff never launches another doomed attempt.
        """
        remaining = None
        if deadline is not None:
            remaining = deadline - self._clock()
            if remaining <= 0:
                raise DeadlineExceededError(
                    "cell deadline exceeded before request could be issued"
                )
        if self.request_timeout is None:
            return remaining
        if remaining is None:
            return self.request_timeout
        return min(self.request_timeout, remaining)

    async def _complete_with_retry(
        self,
        request: ModelRequest,
        bucket: Optional[TokenBucket],
        deadline: Optional[float] = None,
    ) -> LLMResponse:
        attempt = 0
        while True:
            timeout = self._attempt_timeout(deadline)
            if self.breaker is not None:
                try:
                    self.breaker.admit()
                except CircuitOpenError:
                    self.stats.breaker_rejections += 1
                    self.stats.failures += 1
                    raise
            if bucket is not None:
                self.stats.rate_waits += await bucket.acquire()
            try:
                if timeout is not None:
                    response = await asyncio.wait_for(
                        self.backend.acomplete(request), timeout=timeout
                    )
                else:
                    response = await self.backend.acomplete(request)
            except (TransientBackendError, asyncio.TimeoutError) as exc:
                timed_out = isinstance(exc, asyncio.TimeoutError)
                if timed_out:
                    self.stats.timeouts += 1
                if self.breaker is not None:
                    self.breaker.on_failure()
                attempt += 1
                if attempt > self.max_retries:
                    self.stats.failures += 1
                    if timed_out:
                        raise TransientBackendError(
                            f"request {request.request_id} timed out after "
                            f"{timeout:.3f}s (attempt {attempt})"
                        ) from exc
                    raise
                self.stats.retries += 1
                await self._sleep(self.backoff_delay(request, attempt))
                continue
            except asyncio.CancelledError:
                if self.breaker is not None:
                    self.breaker.release_probe()
                raise
            except BackendError:
                # Terminal protocol errors (bad request, auth) are the
                # request's fault, not evidence the endpoint is down —
                # they do not feed the breaker.
                self.stats.failures += 1
                raise
            if self.breaker is not None:
                self.breaker.on_success()
            self.stats.completed += 1
            return response

    async def run(
        self,
        requests: Sequence[ModelRequest],
        deadline_seconds: Optional[float] = None,
    ) -> list[LLMResponse]:
        """Answer every request; results align index-for-index.

        Any request that exhausts its retries (or fails terminally)
        propagates its exception — the caller decides whether a partial
        cell is acceptable (the engine: it is not).

        ``deadline_seconds`` bounds the whole batch by wall clock: once
        it elapses, not-yet-issued attempts fail with
        :class:`DeadlineExceededError` and in-flight attempts have their
        per-attempt timeout clipped to the remaining budget.
        """
        self.stats.requests += len(requests)
        started = self._clock()
        deadline = (
            started + deadline_seconds if deadline_seconds is not None else None
        )
        semaphore = asyncio.Semaphore(self.max_concurrency)
        bucket = None
        if self.rps is not None:
            bucket = TokenBucket(
                self.rps,
                self.burst,
                clock=self._clock,
                sleep=self._sleep,
                state=self.bucket_state,
            )
            # Persist the fill level across run() calls (and across the
            # per-shard dispatchers the engine workers create), so the
            # burst allowance is not replenished by mere re-batching.
            self.bucket_state = bucket.state

        async def bounded(request: ModelRequest) -> LLMResponse:
            async with semaphore:
                return await self._complete_with_retry(
                    request, bucket, deadline
                )

        try:
            results = await asyncio.gather(
                *(bounded(request) for request in requests)
            )
        finally:
            self.stats.seconds += self._clock() - started
        return list(results)

    def run_sync(
        self,
        requests: Sequence[ModelRequest],
        deadline_seconds: Optional[float] = None,
    ) -> list[LLMResponse]:
        """``run`` from synchronous code (one private event loop)."""
        return asyncio.run(self.run(requests, deadline_seconds))


def dispatch_requests(
    backend: ModelBackend,
    requests: Sequence[ModelRequest],
    max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
    rps: Optional[float] = None,
) -> list[LLMResponse]:
    """One-shot convenience wrapper (tests, scripts, ad-hoc batches).

    The engine's shard paths construct :class:`AsyncDispatcher`
    directly instead, because they thread a persistent
    :class:`BucketState` through successive batches — this wrapper
    starts every call with a fresh burst.
    """
    dispatcher = AsyncDispatcher(
        backend, max_concurrency=max_concurrency, rps=rps
    )
    return dispatcher.run_sync(requests)
