"""The simulated backend: the five calibrated profiles behind the
backend protocol.

Wraps :class:`repro.llm.simulated.SimulatedLLM` so the engine's
dispatcher path produces **byte-identical** responses to the historical
direct ``ask_*`` path: the same per-task ``answer_*`` method is invoked
with the same arguments, and all noise remains seeded by
``(model, task, instance_id)`` — concurrency and dispatch order cannot
change a single byte of any response.
"""

from __future__ import annotations

from repro.llm.base import LLMResponse
from repro.llm.backends.base import BackendError, BaseBackend, ModelRequest
from repro.llm.simulated import SimulatedLLM
from repro.llm.profiles import ModelProfile

# Task names, mirrored from repro.tasks.base (string constants rather
# than an import: the tasks package imports the backend registry, and
# duplicating five literals is cheaper than a lazy-import dance).
_SYNTAX_ERROR = "syntax_error"
_MISS_TOKEN = "miss_token"
_QUERY_EQUIV = "query_equiv"
_PERFORMANCE_PRED = "performance_pred"
_QUERY_EXP = "query_exp"
_REWRITE_EQUIVALENCE = "rewrite_equivalence"
_REWRITE_SPEEDUP = "rewrite_speedup"


class SimulatedBackend(BaseBackend):
    """Answers requests by running the profile's calibrated noise model."""

    name = "simulated"
    blocking_io = False  # pure compute: dispatch inline, never to a thread

    def __init__(self, profile: ModelProfile) -> None:
        self.profile = profile
        self.client = SimulatedLLM(profile)

    def complete(self, request: ModelRequest) -> LLMResponse:
        instance = request.instance
        if instance is None:
            raise BackendError(
                "simulated backend needs the task instance on the request "
                f"(got a bare prompt for {request.request_id!r})"
            )
        task = request.task
        quality = request.prompt_quality
        if task == _SYNTAX_ERROR:
            return self.client.answer_syntax_error(
                instance.instance_id,
                instance.payload["query"],
                instance.workload,
                instance.props,
                truth_has_error=bool(instance.label),
                truth_error_type=instance.label_type,
                prompt_quality=quality,
            )
        if task == _MISS_TOKEN:
            return self.client.answer_miss_token(
                instance.instance_id,
                instance.payload["query"],
                instance.workload,
                instance.props,
                truth_missing=bool(instance.label),
                truth_token_type=instance.label_type,
                truth_token=instance.removed_token,
                truth_position=instance.position,
                prompt_quality=quality,
            )
        if task in (_QUERY_EQUIV, _REWRITE_EQUIVALENCE):
            return self.client.answer_equivalence(
                instance.instance_id,
                instance.payload["query_1"],
                instance.payload["query_2"],
                instance.workload,
                instance.props,
                truth_equivalent=bool(instance.label),
                truth_pair_type=instance.label_type,
                prompt_quality=quality,
            )
        if task == _PERFORMANCE_PRED:
            return self.client.answer_performance(
                instance.instance_id,
                instance.payload["query"],
                instance.props,
                truth_costly=bool(instance.label),
                prompt_quality=quality,
            )
        if task == _REWRITE_SPEEDUP:
            return self.client.answer_speedup(
                instance.instance_id,
                instance.payload["query_1"],
                instance.payload["query_2"],
                instance.props,
                truth_faster=bool(instance.label),
                prompt_quality=quality,
            )
        if task == _QUERY_EXP:
            from repro.sql.analysis_cache import try_parse_cached

            statement = try_parse_cached(instance.payload["query"])
            return self.client.answer_explanation(
                instance.instance_id,
                instance.payload["query"],
                statement,
                prompt_quality=quality,
            )
        raise BackendError(f"simulated backend has no handler for task {task!r}")
