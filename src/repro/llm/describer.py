"""AST-to-English query description.

The faithful core of the simulated models' query_exp behaviour: walks a
parsed SELECT and produces an accurate one-sentence description.  Model
profiles then corrupt it through their
:class:`~repro.llm.profiles.ExplanationStyle` flaws (section 4.5):
detail-dropping, superlative inversion, and context loss.
"""

from __future__ import annotations

from repro.sql import nodes as n
from repro.sql.render import render


def describe_statement(statement: n.Statement) -> str:
    """An accurate English description of a SELECT statement."""
    if not isinstance(statement, n.SelectStatement):
        return f"Executes a {n.statement_type(statement)} statement."
    return describe_query(statement.query)


def describe_query(query: n.Query) -> str:
    body = query.body
    if isinstance(body, n.Compound):
        left = describe_body(body.left)
        right = describe_body(body.right)
        connector = {
            "UNION": "combined with",
            "INTERSECT": "that also appear in",
            "EXCEPT": "excluding",
        }[body.op]
        return f"{left} {connector} the rows of: {right.lower()}"
    text = describe_body(body)
    if query.ctes:
        names = ", ".join(cte.name for cte in query.ctes)
        text += f" (using intermediate result {names})"
    return text


def describe_body(core: n.QueryBody) -> str:
    if isinstance(core, n.Compound):
        return describe_query(n.Query(body=core))
    parts: list[str] = []
    parts.append(_describe_selection(core))
    tables = _describe_sources(core)
    if tables:
        parts.append(f"from {tables}")
    if core.where is not None:
        parts.append(f"where {_describe_condition(core.where)}")
    if core.group_by:
        grouped = ", ".join(_expr_phrase(g) for g in core.group_by)
        parts.append(f"for each {grouped}")
    if core.having is not None:
        parts.append(f"keeping groups where {_describe_condition(core.having)}")
    ordering = _describe_ordering(core)
    if ordering:
        parts.append(ordering)
    limit = core.top if core.top is not None else core.limit
    if limit == 1 and core.order_by:
        pass  # folded into the superlative phrase by _describe_ordering
    elif limit is not None:
        parts.append(f"returning at most {limit} rows")
    sentence = " ".join(parts)
    return sentence[0].upper() + sentence[1:] + "."


def _describe_selection(core: n.SelectCore) -> str:
    names = []
    for item in core.items:
        names.append(_expr_phrase(item.expr, alias=item.alias))
    if len(names) == 1:
        head = names[0]
    else:
        head = ", ".join(names[:-1]) + " and " + names[-1]
    quantifier = "the distinct " if core.distinct else "the "
    return f"find {quantifier}{head}"


def _describe_sources(core: n.SelectCore) -> str:
    phrases = []
    for ref in core.from_items:
        phrases.append(_source_phrase(ref))
    return ", ".join(phrases)


def _source_phrase(ref: n.TableRef) -> str:
    if isinstance(ref, n.NamedTable):
        return ref.name
    if isinstance(ref, n.DerivedTable):
        return f"a subquery ({describe_query(ref.query).rstrip('.')})"
    if isinstance(ref, n.Join):
        left = _source_phrase(ref.left)
        right = _source_phrase(ref.right)
        joiner = {
            "INNER": "joined with",
            "LEFT": "left-joined with",
            "RIGHT": "right-joined with",
            "FULL": "fully joined with",
            "CROSS": "crossed with",
        }[ref.kind]
        phrase = f"{left} {joiner} {right}"
        if ref.condition is not None:
            phrase += f" on {_describe_condition(ref.condition)}"
        return phrase
    return "an unknown source"


def _describe_ordering(core: n.SelectCore) -> str:
    if not core.order_by:
        return ""
    limit = core.top if core.top is not None else core.limit
    first = core.order_by[0]
    direction = first.direction or "ASC"
    subject = _expr_phrase(first.expr)
    if limit == 1:
        superlative = "lowest" if direction == "ASC" else "highest"
        return f"for the row with the {superlative} {subject}"
    adverb = "ascending" if direction == "ASC" else "descending"
    extra = ""
    if len(core.order_by) > 1:
        extra = " (then by " + ", ".join(
            _expr_phrase(item.expr) for item in core.order_by[1:]
        ) + ")"
    return f"ordered by {adverb} {subject}{extra}"


def _expr_phrase(expr: n.Expr, alias: str | None = None) -> str:
    if isinstance(expr, n.Star):
        return "all columns" if expr.table is None else f"all {expr.table} columns"
    if isinstance(expr, n.ColumnRef):
        return expr.name
    if isinstance(expr, n.FuncCall):
        name = expr.name.upper()
        arg = _expr_phrase(expr.args[0]) if expr.args else ""
        mapping = {
            "COUNT": f"number of {arg}" if arg not in ("all columns", "") else "number of rows",
            "AVG": f"average {arg}",
            "SUM": f"total {arg}",
            "MIN": f"minimum {arg}",
            "MAX": f"maximum {arg}",
        }
        if name in mapping:
            phrase = mapping[name]
            if expr.distinct:
                phrase = phrase.replace("number of", "number of distinct")
            return phrase
        return render(expr)
    if isinstance(expr, n.Literal):
        return render(expr)
    if alias:
        return alias
    return render(expr)


def _describe_condition(expr: n.Expr) -> str:
    if isinstance(expr, n.Binary):
        if expr.op == "AND":
            return (
                f"{_describe_condition(expr.left)} and "
                f"{_describe_condition(expr.right)}"
            )
        if expr.op == "OR":
            return (
                f"{_describe_condition(expr.left)} or "
                f"{_describe_condition(expr.right)}"
            )
        op_words = {
            "=": "equals",
            "<>": "differs from",
            "!=": "differs from",
            ">": "is greater than",
            "<": "is less than",
            ">=": "is at least",
            "<=": "is at most",
        }
        if expr.op in op_words:
            return (
                f"{_expr_phrase(expr.left)} {op_words[expr.op]} "
                f"{_expr_phrase(expr.right)}"
            )
        return render(expr)
    if isinstance(expr, n.Between):
        verb = "is not between" if expr.negated else "is between"
        return (
            f"{_expr_phrase(expr.expr)} {verb} {_expr_phrase(expr.low)} "
            f"and {_expr_phrase(expr.high)}"
        )
    if isinstance(expr, n.InList):
        verb = "is not one of" if expr.negated else "is one of"
        items = ", ".join(_expr_phrase(item) for item in expr.items)
        return f"{_expr_phrase(expr.expr)} {verb} {items}"
    if isinstance(expr, n.InSubquery):
        verb = "does not appear" if expr.negated else "appears"
        return (
            f"{_expr_phrase(expr.expr)} {verb} in the result of a subquery "
            f"({describe_query(expr.query).rstrip('.')})"
        )
    if isinstance(expr, n.Exists):
        verb = "no matching row exists" if expr.negated else "a matching row exists"
        return f"{verb} in a subquery ({describe_query(expr.query).rstrip('.')})"
    if isinstance(expr, n.Like):
        verb = "does not match" if expr.negated else "matches"
        return f"{_expr_phrase(expr.expr)} {verb} pattern {_expr_phrase(expr.pattern)}"
    if isinstance(expr, n.IsNull):
        verb = "is not null" if expr.negated else "is null"
        return f"{_expr_phrase(expr.expr)} {verb}"
    if isinstance(expr, n.Unary) and expr.op == "NOT":
        return f"not ({_describe_condition(expr.operand)})"
    return render(expr)
