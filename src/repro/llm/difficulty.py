"""Per-workload type-difficulty tables.

The paper finds that *which* error/token types models miss depends on the
dataset, not the model (sections 4.1-4.2):

* SDSS: type mismatches (nested-mismatch, condition-mismatch) are the
  hardest syntax errors (Fig 7a); missing *keywords* dominate FNs (Fig 9a).
* SQLShare: ambiguous aliases are hardest (Fig 7b) — many schemas, many
  aliases; missing aliases and tables dominate FNs (Fig 9b).
* Join-Order: nested-mismatch hardest (Fig 7c); no token type stands out
  (Fig 9c).

Values are additive recall penalties applied on positive instances of the
given type; 0.0 means no extra difficulty.
"""

from __future__ import annotations

from repro.workloads.base import JOIN_ORDER, SDSS, SQLSHARE

#: syntax_error recall penalty per (workload, error type) — Figure 7.
SYNTAX_TYPE_DIFFICULTY: dict[str, dict[str, float]] = {
    SDSS: {
        "aggr-attr": 0.00,
        "aggr-having": 0.02,
        "nested-mismatch": 0.18,
        "condition-mismatch": 0.14,
        "alias-undefined": 0.03,
        "alias-ambiguous": 0.03,
    },
    SQLSHARE: {
        "aggr-attr": 0.02,
        "aggr-having": 0.03,
        "nested-mismatch": 0.06,
        "condition-mismatch": 0.05,
        "alias-undefined": 0.05,
        "alias-ambiguous": 0.15,
    },
    JOIN_ORDER: {
        "aggr-attr": 0.02,
        "aggr-having": 0.04,
        "nested-mismatch": 0.17,
        "condition-mismatch": 0.08,
        "alias-undefined": 0.03,
        "alias-ambiguous": 0.05,
    },
}

#: miss_token recall penalty per (workload, token type) — Figure 9.
TOKEN_TYPE_DIFFICULTY: dict[str, dict[str, float]] = {
    SDSS: {
        "keyword": 0.10,
        "column": 0.02,
        "table": 0.02,
        "value": 0.03,
        "alias": 0.03,
        "comparison": 0.04,
    },
    SQLSHARE: {
        "keyword": 0.03,
        "column": 0.03,
        "table": 0.10,
        "value": 0.02,
        "alias": 0.12,
        "comparison": 0.04,
    },
    JOIN_ORDER: {
        "keyword": 0.03,
        "column": 0.03,
        "table": 0.03,
        "value": 0.03,
        "alias": 0.03,
        "comparison": 0.03,
    },
}

#: query_equiv difficulty: FP propensity per non-equivalence type.
#: Section 4.4: models mostly fail on modified conditions — value changes
#: and logical-operator flips — i.e. numeric/logical reasoning gaps.
EQUIV_TYPE_DIFFICULTY: dict[str, float] = {
    "value-change": 0.30,
    "logical-conditions": 0.22,
    "comparison-op": 0.18,
    "change-join-condition": 0.12,
    "agg-function": 0.08,
    "drop-condition": 0.10,
    "column-swap": 0.03,
    "distinct-change": 0.14,
}

#: Confusable neighbours for multi-class predictions: when a model gets
#: the type wrong it usually picks something adjacent, not uniform noise.
SYNTAX_TYPE_CONFUSIONS: dict[str, tuple[str, ...]] = {
    "aggr-attr": ("aggr-having",),
    "aggr-having": ("aggr-attr",),
    "nested-mismatch": ("condition-mismatch",),
    "condition-mismatch": ("nested-mismatch", "aggr-having"),
    "alias-undefined": ("alias-ambiguous",),
    "alias-ambiguous": ("alias-undefined",),
}

TOKEN_TYPE_CONFUSIONS: dict[str, tuple[str, ...]] = {
    "keyword": ("comparison",),
    "table": ("column", "alias"),
    "column": ("table", "alias"),
    "value": ("comparison",),
    "alias": ("column", "table"),
    "comparison": ("keyword", "value"),
}

EQUIV_TYPE_CONFUSIONS: dict[str, tuple[str, ...]] = {
    "swap-subqueries": ("join-nested", "nested-join"),
    "join-nested": ("nested-join", "swap-subqueries"),
    "nested-join": ("join-nested",),
    "cte": ("join-nested",),
    "reorder-conditions": ("comparison-flip",),
    "between-split": ("in-expansion", "reorder-conditions"),
    "in-expansion": ("between-split",),
    "join-commute": ("alias-rename", "reorder-conditions"),
    "alias-rename": ("join-commute",),
    "comparison-flip": ("reorder-conditions",),
    "agg-function": ("value-change",),
    "change-join-condition": ("logical-conditions",),
    "logical-conditions": ("comparison-op", "change-join-condition"),
    "value-change": ("comparison-op",),
    "comparison-op": ("value-change", "logical-conditions"),
    "drop-condition": ("logical-conditions",),
    "column-swap": ("value-change",),
    "distinct-change": ("drop-condition",),
}


def syntax_penalty(workload: str, error_type: str) -> float:
    return SYNTAX_TYPE_DIFFICULTY.get(workload, {}).get(error_type, 0.05)


def token_penalty(workload: str, token_type: str) -> float:
    return TOKEN_TYPE_DIFFICULTY.get(workload, {}).get(token_type, 0.04)


def equivalence_fp_boost(pair_type: str) -> float:
    return EQUIV_TYPE_DIFFICULTY.get(pair_type, 0.10)
