"""Typed AST for the SQL dialect used across the paper's workloads.

Every node is a plain dataclass with structural equality, which the test
suite leans on for parse/render round-trip checks.  ``walk`` provides
generic pre-order traversal for property extraction and transforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterator, Optional, Union


#: Per-class field-name cache: ``dataclasses.fields`` is surprisingly
#: expensive to call once per node per traversal, and traversals
#: (property extraction, transforms, semantic analysis) dominate the
#: engine's dataset-build hot path.
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def _field_names(cls: type) -> tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in fields(cls))  # type: ignore[arg-type]
        _FIELD_NAMES[cls] = names
    return names


class Node:
    """Base class for all AST nodes."""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (dataclass fields, recursing into lists)."""
        own = self.__dict__
        for name in _field_names(self.__class__):
            value = own[name]
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item
                    elif isinstance(item, tuple):
                        for sub in item:
                            if isinstance(sub, Node):
                                yield sub


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal over *node* and all descendants."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(list(current.children())))


def _clone_value(value):
    if isinstance(value, Node):
        return clone(value)
    if isinstance(value, list):
        return [_clone_value(item) for item in value]
    if isinstance(value, tuple):
        return tuple(_clone_value(item) for item in value)
    return value  # str/int/float/bool/None — immutable leaves


def clone(node: Node) -> Node:
    """A deep structural copy of an AST, several times faster than
    ``copy.deepcopy``.

    Parser output is strictly a tree (no shared sub-nodes), so a plain
    recursive rebuild is equivalent to ``deepcopy`` while skipping its
    memo bookkeeping and reduce-protocol dispatch.  Transforms use this
    for their mutate-a-copy discipline; it is also the required first
    step before mutating any AST obtained from
    :mod:`repro.sql.analysis_cache`, whose statements are shared values.
    """
    cls = node.__class__
    names = _field_names(cls)
    copy = cls.__new__(cls)
    copy_dict = copy.__dict__
    node_dict = node.__dict__
    for name in names:
        copy_dict[name] = _clone_value(node_dict[name])
    return copy


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Marker base class for expressions."""


@dataclass(eq=True)
class Literal(Expr):
    """A literal constant.

    ``kind`` is one of ``"number"``, ``"string"``, ``"null"``, ``"boolean"``.
    Numbers keep their source spelling in ``text`` so rendering is lossless.
    """

    value: Union[int, float, str, bool, None]
    kind: str
    text: str = ""

    def __post_init__(self) -> None:
        if not self.text:
            if self.kind == "string":
                self.text = str(self.value)
            elif self.kind == "null":
                self.text = "NULL"
            else:
                self.text = str(self.value)


@dataclass(eq=True)
class ColumnRef(Expr):
    """Reference to a column, optionally qualified: ``table.column``."""

    name: str
    table: Optional[str] = None


@dataclass(eq=True)
class Star(Expr):
    """``*`` or ``table.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None


@dataclass(eq=True)
class Variable(Expr):
    """A T-SQL session variable such as ``@maxZ``."""

    name: str  # includes the leading '@'


@dataclass(eq=True)
class FuncCall(Expr):
    """A function application, possibly schema-qualified (``dbo.fX(...)``)."""

    name: str
    args: list[Expr] = field(default_factory=list)
    distinct: bool = False
    schema: Optional[str] = None


@dataclass(eq=True)
class Unary(Expr):
    """Unary operator application: ``-x``, ``+x`` or ``NOT x``."""

    op: str
    operand: Expr


@dataclass(eq=True)
class Binary(Expr):
    """Binary operator application (arithmetic, comparison, AND/OR)."""

    op: str
    left: Expr
    right: Expr


@dataclass(eq=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(eq=True)
class InList(Expr):
    """``expr [NOT] IN (item, ...)``."""

    expr: Expr
    items: list[Expr] = field(default_factory=list)
    negated: bool = False


@dataclass(eq=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)``."""

    expr: Expr
    query: "Query"
    negated: bool = False


@dataclass(eq=True)
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)``."""

    query: "Query"
    negated: bool = False


@dataclass(eq=True)
class Like(Expr):
    """``expr [NOT] LIKE pattern``."""

    expr: Expr
    pattern: Expr
    negated: bool = False


@dataclass(eq=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    expr: Expr
    negated: bool = False


@dataclass(eq=True)
class Case(Expr):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    operand: Optional[Expr]
    whens: list[tuple[Expr, Expr]] = field(default_factory=list)
    default: Optional[Expr] = None


@dataclass(eq=True)
class ScalarSubquery(Expr):
    """A parenthesised SELECT used as a scalar expression."""

    query: "Query"


@dataclass(eq=True)
class Cast(Expr):
    """``CAST(expr AS type)``."""

    expr: Expr
    type_name: str


# ---------------------------------------------------------------------------
# Table references
# ---------------------------------------------------------------------------


class TableRef(Node):
    """Marker base class for FROM-clause items."""


@dataclass(eq=True)
class NamedTable(TableRef):
    """A base table or CTE reference, optionally aliased."""

    name: str
    alias: Optional[str] = None
    schema: Optional[str] = None


@dataclass(eq=True)
class DerivedTable(TableRef):
    """A parenthesised subquery in FROM, with an alias."""

    query: "Query"
    alias: str = ""


@dataclass(eq=True)
class Join(TableRef):
    """An explicit join.  ``kind`` in INNER/LEFT/RIGHT/FULL/CROSS."""

    left: TableRef
    right: TableRef
    kind: str = "INNER"
    condition: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


@dataclass(eq=True)
class SelectItem(Node):
    """One element of a select list."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(eq=True)
class OrderItem(Node):
    """One element of an ORDER BY list."""

    expr: Expr
    direction: Optional[str] = None  # "ASC" | "DESC" | None


@dataclass(eq=True)
class SelectCore(Node):
    """A single SELECT block (no set operators, no WITH)."""

    items: list[SelectItem] = field(default_factory=list)
    from_items: list[TableRef] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    distinct: bool = False
    top: Optional[int] = None  # T-SQL SELECT TOP n
    limit: Optional[int] = None
    offset: Optional[int] = None


@dataclass(eq=True)
class Compound(Node):
    """Two query bodies combined by UNION [ALL] / INTERSECT / EXCEPT."""

    op: str
    left: "QueryBody"
    right: "QueryBody"
    all: bool = False
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None


QueryBody = Union[SelectCore, Compound]


@dataclass(eq=True)
class CommonTableExpr(Node):
    """One CTE in a WITH clause."""

    name: str
    query: "Query"
    columns: list[str] = field(default_factory=list)


@dataclass(eq=True)
class Query(Node):
    """A full query expression: optional CTEs plus a body."""

    body: QueryBody
    ctes: list[CommonTableExpr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement(Node):
    """Marker base class for top-level statements."""


@dataclass(eq=True)
class SelectStatement(Statement):
    """A top-level query."""

    query: Query


@dataclass(eq=True)
class ColumnDef(Node):
    """A column definition inside CREATE TABLE."""

    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False
    default: Optional[Expr] = None


@dataclass(eq=True)
class CreateTable(Statement):
    """``CREATE TABLE name (cols)`` or ``CREATE TABLE name AS SELECT``."""

    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    as_query: Optional[Query] = None
    schema: Optional[str] = None


@dataclass(eq=True)
class CreateView(Statement):
    """``CREATE VIEW name AS SELECT ...``."""

    name: str
    query: Query


@dataclass(eq=True)
class Insert(Statement):
    """``INSERT INTO t [(cols)] VALUES (...)[, ...]`` or ``... SELECT``."""

    table: str
    columns: list[str] = field(default_factory=list)
    rows: list[list[Expr]] = field(default_factory=list)
    query: Optional[Query] = None

    def children(self) -> Iterator[Node]:
        for row in self.rows:
            yield from row
        if self.query is not None:
            yield self.query


@dataclass(eq=True)
class Update(Statement):
    """``UPDATE t SET col = expr [, ...] [WHERE ...]``."""

    table: str
    assignments: list[tuple[str, Expr]] = field(default_factory=list)
    where: Optional[Expr] = None

    def children(self) -> Iterator[Node]:
        for _, expr in self.assignments:
            yield expr
        if self.where is not None:
            yield self.where


@dataclass(eq=True)
class Delete(Statement):
    """``DELETE FROM t [WHERE ...]``."""

    table: str
    where: Optional[Expr] = None


@dataclass(eq=True)
class DropTable(Statement):
    """``DROP TABLE [IF EXISTS] name``."""

    name: str
    if_exists: bool = False


@dataclass(eq=True)
class Declare(Statement):
    """T-SQL ``DECLARE @name TYPE``."""

    name: str
    type_name: str


@dataclass(eq=True)
class SetVariable(Statement):
    """T-SQL ``SET @name = expr``."""

    name: str
    value: Expr


@dataclass(eq=True)
class ExecProcedure(Statement):
    """T-SQL ``EXEC proc arg, ...``."""

    name: str
    args: list[Expr] = field(default_factory=list)
    schema: Optional[str] = None


@dataclass(eq=True)
class Waitfor(Statement):
    """T-SQL ``WAITFOR DELAY 'hh:mm:ss'``."""

    delay: str


@dataclass(eq=True)
class Script(Node):
    """A sequence of statements separated by semicolons."""

    statements: list[Statement] = field(default_factory=list)


def statement_type(stmt: Statement) -> str:
    """The paper's ``query_type`` label for a statement (SELECT, CREATE...)."""
    mapping = {
        SelectStatement: "SELECT",
        CreateTable: "CREATE",
        CreateView: "CREATE",
        Insert: "INSERT",
        Update: "UPDATE",
        Delete: "DELETE",
        DropTable: "DROP",
        Declare: "DECLARE",
        SetVariable: "SET",
        ExecProcedure: "EXEC",
        Waitfor: "WAITFOR",
    }
    for node_type, label in mapping.items():
        if isinstance(stmt, node_type):
            if isinstance(stmt, SelectStatement) and stmt.query.ctes:
                return "WITH"
            return label
    raise TypeError(f"unknown statement type: {type(stmt).__name__}")
