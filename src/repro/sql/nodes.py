"""Typed AST for the SQL dialect used across the paper's workloads.

Every node is a ``__slots__`` dataclass: slotted instances are smaller
and faster to build/clone than dict-backed ones, which matters because
million-instance synthetic workloads (ROADMAP item 2) materialise one
tree per query text.  Structural equality is provided by a single
generic :meth:`Node.__eq__` with a precomputed-hash fast path: once
:func:`structural_hash` has been computed for two trees, comparing them
starts with an O(1) hash check instead of a full tree walk.  ``walk``
provides generic pre-order traversal for property extraction and
transforms.

Nodes are deliberately *unhashable* (``__hash__ = None``): they are
mutable, and the analysis cache keys on query text, never on trees.
:func:`structural_hash` is the explicit, cached alternative for
identity-of-shape questions (equality fast path, shared-AST mutation
detection in :mod:`repro.sql.analysis_cache`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields
from typing import Iterator, Optional, Union

#: Armed by ``REPRO_DEBUG_SHARED_AST=1`` (the same switch that arms the
#: analysis-cache mutation guard): every clone() asserts the copy starts
#: with no ``_shash``, so a stale structural hash can never ride across
#: a mutating transform.
_DEBUG_CLONE_SHASH = os.environ.get("REPRO_DEBUG_SHARED_AST", "") not in ("", "0")


#: Per-class field-name cache: ``dataclasses.fields`` is surprisingly
#: expensive to call once per node per traversal, and traversals
#: (property extraction, transforms, semantic analysis) dominate the
#: engine's dataset-build hot path.
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def _field_names(cls: type) -> tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in fields(cls))  # type: ignore[arg-type]
        _FIELD_NAMES[cls] = names
    return names


class Node:
    """Base class for all AST nodes.

    The only non-field slot is ``_shash``, the lazily computed structural
    hash.  It is intentionally *not* a dataclass field: it never takes
    part in equality directly, never appears in ``repr``, and clones
    never inherit it (a clone exists to be mutated).
    """

    __slots__ = ("_shash",)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        cls = self.__class__
        if other.__class__ is not cls:
            return NotImplemented
        # Hash fast path: two trees whose structural hashes are both
        # already known and differ cannot be equal.  (Equal hashes still
        # fall through to the field comparison — hashes can collide.)
        try:
            if self._shash != other._shash:
                return False
        except AttributeError:
            pass
        for name in _field_names(cls):
            if getattr(self, name) != getattr(other, name):
                return False
        return True

    # Defining __eq__ would implicitly set this to None anyway; keep it
    # explicit: nodes are mutable and must stay unhashable.
    __hash__ = None  # type: ignore[assignment]

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (dataclass fields, recursing into lists)."""
        for name in _field_names(self.__class__):
            value = getattr(self, name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item
                    elif isinstance(item, tuple):
                        for sub in item:
                            if isinstance(sub, Node):
                                yield sub


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal over *node* and all descendants."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(list(current.children())))


def _clone_value(value):
    if isinstance(value, Node):
        return clone(value)
    if isinstance(value, list):
        return [_clone_value(item) for item in value]
    if isinstance(value, tuple):
        return tuple(_clone_value(item) for item in value)
    return value  # str/int/float/bool/None — immutable leaves


def clone(node: Node) -> Node:
    """A deep structural copy of an AST, several times faster than
    ``copy.deepcopy``.

    Parser output is strictly a tree (no shared sub-nodes), so a plain
    recursive rebuild is equivalent to ``deepcopy`` while skipping its
    memo bookkeeping and reduce-protocol dispatch.  Transforms use this
    for their mutate-a-copy discipline; it is also the required first
    step before mutating any AST obtained from
    :mod:`repro.sql.analysis_cache`, whose statements are shared values.

    The ``_shash`` cache is deliberately not copied: a clone exists to
    be mutated, so a carried-over hash would immediately go stale.
    """
    cls = node.__class__
    copy = cls.__new__(cls)
    for name in _field_names(cls):
        setattr(copy, name, _clone_value(getattr(node, name)))
    if _DEBUG_CLONE_SHASH:
        assert not hasattr(copy, "_shash"), (
            f"clone() must never carry the _shash cache across a mutating "
            f"transform (got a pre-hashed {cls.__name__})"
        )
    return copy


def _hash_value(value, fresh: bool) -> int:
    if isinstance(value, Node):
        return structural_hash(value, fresh=fresh)
    if isinstance(value, (list, tuple)):
        return hash(tuple(_hash_value(item, fresh) for item in value))
    return hash(value)


def structural_hash(node: Node, *, fresh: bool = False) -> int:
    """Deep structural hash of *node*, cached on the node.

    Equal trees always hash equal; unequal trees collide only with
    ordinary ``hash`` probability.  The result is memoized in the
    ``_shash`` slot (for the whole subtree), so repeated equality checks
    and cache-integrity sweeps cost O(1) after the first walk.

    With ``fresh=True`` the hash is recomputed from the current field
    values, bypassing *and not touching* the cache — this is what the
    shared-AST mutation guard uses to detect that a cached tree was
    mutated after its hash was recorded.
    """
    if not fresh:
        try:
            return node._shash
        except AttributeError:
            pass
    cls = node.__class__
    result = hash(
        (cls.__qualname__,)
        + tuple(_hash_value(getattr(node, name), fresh) for name in _field_names(cls))
    )
    if not fresh:
        node._shash = result
    return result


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Marker base class for expressions."""

    __slots__ = ()


@dataclass(eq=False, slots=True)
class Literal(Expr):
    """A literal constant.

    ``kind`` is one of ``"number"``, ``"string"``, ``"null"``, ``"boolean"``.
    Numbers keep their source spelling in ``text`` so rendering is lossless.
    """

    value: Union[int, float, str, bool, None]
    kind: str
    text: str = ""

    def __post_init__(self) -> None:
        if not self.text:
            if self.kind == "string":
                self.text = str(self.value)
            elif self.kind == "null":
                self.text = "NULL"
            else:
                self.text = str(self.value)


@dataclass(eq=False, slots=True)
class ColumnRef(Expr):
    """Reference to a column, optionally qualified: ``table.column``."""

    name: str
    table: Optional[str] = None


@dataclass(eq=False, slots=True)
class Star(Expr):
    """``*`` or ``table.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None


@dataclass(eq=False, slots=True)
class Variable(Expr):
    """A T-SQL session variable such as ``@maxZ``."""

    name: str  # includes the leading '@'


@dataclass(eq=False, slots=True)
class FuncCall(Expr):
    """A function application, possibly schema-qualified (``dbo.fX(...)``)."""

    name: str
    args: list[Expr] = field(default_factory=list)
    distinct: bool = False
    schema: Optional[str] = None


@dataclass(eq=False, slots=True)
class Unary(Expr):
    """Unary operator application: ``-x``, ``+x`` or ``NOT x``."""

    op: str
    operand: Expr


@dataclass(eq=False, slots=True)
class Binary(Expr):
    """Binary operator application (arithmetic, comparison, AND/OR)."""

    op: str
    left: Expr
    right: Expr


@dataclass(eq=False, slots=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(eq=False, slots=True)
class InList(Expr):
    """``expr [NOT] IN (item, ...)``."""

    expr: Expr
    items: list[Expr] = field(default_factory=list)
    negated: bool = False


@dataclass(eq=False, slots=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)``."""

    expr: Expr
    query: "Query"
    negated: bool = False


@dataclass(eq=False, slots=True)
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)``."""

    query: "Query"
    negated: bool = False


@dataclass(eq=False, slots=True)
class Like(Expr):
    """``expr [NOT] LIKE pattern``."""

    expr: Expr
    pattern: Expr
    negated: bool = False


@dataclass(eq=False, slots=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    expr: Expr
    negated: bool = False


@dataclass(eq=False, slots=True)
class Case(Expr):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    operand: Optional[Expr]
    whens: list[tuple[Expr, Expr]] = field(default_factory=list)
    default: Optional[Expr] = None


@dataclass(eq=False, slots=True)
class ScalarSubquery(Expr):
    """A parenthesised SELECT used as a scalar expression."""

    query: "Query"


@dataclass(eq=False, slots=True)
class Cast(Expr):
    """``CAST(expr AS type)``."""

    expr: Expr
    type_name: str


# ---------------------------------------------------------------------------
# Table references
# ---------------------------------------------------------------------------


class TableRef(Node):
    """Marker base class for FROM-clause items."""

    __slots__ = ()


@dataclass(eq=False, slots=True)
class NamedTable(TableRef):
    """A base table or CTE reference, optionally aliased."""

    name: str
    alias: Optional[str] = None
    schema: Optional[str] = None


@dataclass(eq=False, slots=True)
class DerivedTable(TableRef):
    """A parenthesised subquery in FROM, with an alias."""

    query: "Query"
    alias: str = ""


@dataclass(eq=False, slots=True)
class Join(TableRef):
    """An explicit join.  ``kind`` in INNER/LEFT/RIGHT/FULL/CROSS."""

    left: TableRef
    right: TableRef
    kind: str = "INNER"
    condition: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


@dataclass(eq=False, slots=True)
class SelectItem(Node):
    """One element of a select list."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(eq=False, slots=True)
class OrderItem(Node):
    """One element of an ORDER BY list."""

    expr: Expr
    direction: Optional[str] = None  # "ASC" | "DESC" | None


@dataclass(eq=False, slots=True)
class SelectCore(Node):
    """A single SELECT block (no set operators, no WITH)."""

    items: list[SelectItem] = field(default_factory=list)
    from_items: list[TableRef] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    distinct: bool = False
    top: Optional[int] = None  # T-SQL SELECT TOP n
    limit: Optional[int] = None
    offset: Optional[int] = None


@dataclass(eq=False, slots=True)
class Compound(Node):
    """Two query bodies combined by UNION [ALL] / INTERSECT / EXCEPT."""

    op: str
    left: "QueryBody"
    right: "QueryBody"
    all: bool = False
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None


QueryBody = Union[SelectCore, Compound]


@dataclass(eq=False, slots=True)
class CommonTableExpr(Node):
    """One CTE in a WITH clause."""

    name: str
    query: "Query"
    columns: list[str] = field(default_factory=list)


@dataclass(eq=False, slots=True)
class Query(Node):
    """A full query expression: optional CTEs plus a body."""

    body: QueryBody
    ctes: list[CommonTableExpr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement(Node):
    """Marker base class for top-level statements."""

    __slots__ = ()


@dataclass(eq=False, slots=True)
class SelectStatement(Statement):
    """A top-level query."""

    query: Query


@dataclass(eq=False, slots=True)
class ColumnDef(Node):
    """A column definition inside CREATE TABLE."""

    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False
    default: Optional[Expr] = None


@dataclass(eq=False, slots=True)
class CreateTable(Statement):
    """``CREATE TABLE name (cols)`` or ``CREATE TABLE name AS SELECT``."""

    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    as_query: Optional[Query] = None
    schema: Optional[str] = None


@dataclass(eq=False, slots=True)
class CreateView(Statement):
    """``CREATE VIEW name AS SELECT ...``."""

    name: str
    query: Query


@dataclass(eq=False, slots=True)
class Insert(Statement):
    """``INSERT INTO t [(cols)] VALUES (...)[, ...]`` or ``... SELECT``."""

    table: str
    columns: list[str] = field(default_factory=list)
    rows: list[list[Expr]] = field(default_factory=list)
    query: Optional[Query] = None

    def children(self) -> Iterator[Node]:
        for row in self.rows:
            yield from row
        if self.query is not None:
            yield self.query


@dataclass(eq=False, slots=True)
class Update(Statement):
    """``UPDATE t SET col = expr [, ...] [WHERE ...]``."""

    table: str
    assignments: list[tuple[str, Expr]] = field(default_factory=list)
    where: Optional[Expr] = None

    def children(self) -> Iterator[Node]:
        for _, expr in self.assignments:
            yield expr
        if self.where is not None:
            yield self.where


@dataclass(eq=False, slots=True)
class Delete(Statement):
    """``DELETE FROM t [WHERE ...]``."""

    table: str
    where: Optional[Expr] = None


@dataclass(eq=False, slots=True)
class DropTable(Statement):
    """``DROP TABLE [IF EXISTS] name``."""

    name: str
    if_exists: bool = False


@dataclass(eq=False, slots=True)
class Declare(Statement):
    """T-SQL ``DECLARE @name TYPE``."""

    name: str
    type_name: str


@dataclass(eq=False, slots=True)
class SetVariable(Statement):
    """T-SQL ``SET @name = expr``."""

    name: str
    value: Expr


@dataclass(eq=False, slots=True)
class ExecProcedure(Statement):
    """T-SQL ``EXEC proc arg, ...``."""

    name: str
    args: list[Expr] = field(default_factory=list)
    schema: Optional[str] = None


@dataclass(eq=False, slots=True)
class Waitfor(Statement):
    """T-SQL ``WAITFOR DELAY 'hh:mm:ss'``."""

    delay: str


@dataclass(eq=False, slots=True)
class Script(Node):
    """A sequence of statements separated by semicolons."""

    statements: list[Statement] = field(default_factory=list)


def statement_type(stmt: Statement) -> str:
    """The paper's ``query_type`` label for a statement (SELECT, CREATE...)."""
    mapping = {
        SelectStatement: "SELECT",
        CreateTable: "CREATE",
        CreateView: "CREATE",
        Insert: "INSERT",
        Update: "UPDATE",
        Delete: "DELETE",
        DropTable: "DROP",
        Declare: "DECLARE",
        SetVariable: "SET",
        ExecProcedure: "EXEC",
        Waitfor: "WAITFOR",
    }
    for node_type, label in mapping.items():
        if isinstance(stmt, node_type):
            if isinstance(stmt, SelectStatement) and stmt.query.ctes:
                return "WITH"
            return label
    raise TypeError(f"unknown statement type: {type(stmt).__name__}")
