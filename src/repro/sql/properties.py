"""Syntactic property extraction (paper section 2.1).

For each query the paper measures: ``char_count``, ``word_count``,
``query_type``, ``table_count``, ``join_count``, ``column_count``,
``function_count``, ``predicate_count``, ``nestedness`` and an
``aggregate`` flag.  These drive the workload statistics (Table 2,
Figures 1-3), the correlation analysis (Figure 4) and every
failure-by-property analysis in Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql import nodes as n
from repro.sql.keywords import AGGREGATE_FUNCTIONS, JOIN_KEYWORDS, STATEMENT_OPENERS
from repro.sql.tokens import K_IDENT, K_KEYWORD, TokenKind

#: Property names in the order the paper's Figure 4 heatmaps use them.
PROPERTY_NAMES: tuple[str, ...] = (
    "char_count",
    "word_count",
    "table_count",
    "join_count",
    "column_count",
    "function_count",
    "predicate_count",
    "nestedness",
)


@dataclass
class QueryProperties:
    """The measured syntactic properties of one SQL query."""

    char_count: int = 0
    word_count: int = 0
    query_type: str = "SELECT"
    table_count: int = 0
    join_count: int = 0
    column_count: int = 0
    function_count: int = 0
    predicate_count: int = 0
    nestedness: int = 0
    aggregate: bool = False

    def as_dict(self) -> dict[str, float]:
        """Numeric view used by correlation and failure analyses."""
        return {
            "char_count": self.char_count,
            "word_count": self.word_count,
            "table_count": self.table_count,
            "join_count": self.join_count,
            "column_count": self.column_count,
            "function_count": self.function_count,
            "predicate_count": self.predicate_count,
            "nestedness": self.nestedness,
        }

    def value(self, name: str) -> float:
        """Look up a numeric property by its paper name."""
        return self.as_dict()[name]


@dataclass
class _Accumulator:
    tables: set[str] = field(default_factory=set)
    cte_names: set[str] = field(default_factory=set)
    explicit_joins: int = 0
    implicit_joins: int = 0
    functions: int = 0
    predicates: int = 0
    max_depth: int = 0
    aggregate: bool = False


def extract_properties(text: str) -> QueryProperties:
    """Measure *text*.  Parses when possible, falls back to token scans.

    The fallback matters because corrupted queries (missing tokens) may not
    parse, yet the evaluation framework still needs rough size properties.

    Parsing goes through the process-wide memo layer
    (:mod:`repro.sql.analysis_cache`), so repeated measurement of the
    same text costs one parse total; the returned record is always a
    fresh (caller-owned) object.
    """
    from repro.sql.analysis_cache import try_parse_cached

    statement = try_parse_cached(text)
    if statement is None:
        return properties_from_tokens(text)
    props = _properties_from_ast(statement)
    props.char_count = len(text)
    props.word_count = len(text.split())
    return props


def extract_statement_properties(statement: n.Statement, text: str) -> QueryProperties:
    """Measure an already-parsed statement (avoids reparsing)."""
    props = _properties_from_ast(statement)
    props.char_count = len(text)
    props.word_count = len(text.split())
    return props


# ---------------------------------------------------------------------------
# AST-based measurement
# ---------------------------------------------------------------------------


def _properties_from_ast(statement: n.Statement) -> QueryProperties:
    acc = _Accumulator()
    _collect_statement(statement, acc, depth=0)
    props = QueryProperties(
        query_type=n.statement_type(statement),
        table_count=len(acc.tables),
        join_count=acc.explicit_joins + acc.implicit_joins,
        column_count=_select_column_count(statement),
        function_count=acc.functions,
        predicate_count=acc.predicates,
        nestedness=acc.max_depth,
        aggregate=acc.aggregate,
    )
    return props


def _collect_statement(statement: n.Statement, acc: _Accumulator, depth: int) -> None:
    if isinstance(statement, n.SelectStatement):
        _collect_query(statement.query, acc, depth)
    elif isinstance(statement, n.CreateTable):
        acc.tables.add(statement.name.lower())
        if statement.as_query is not None:
            _collect_query(statement.as_query, acc, depth)
    elif isinstance(statement, n.CreateView):
        _collect_query(statement.query, acc, depth)
    elif isinstance(statement, n.Insert):
        acc.tables.add(statement.table.lower())
        for row in statement.rows:
            for expr in row:
                _collect_expr(expr, acc, depth)
        if statement.query is not None:
            _collect_query(statement.query, acc, depth)
    elif isinstance(statement, n.Update):
        acc.tables.add(statement.table.lower())
        for _, expr in statement.assignments:
            _collect_expr(expr, acc, depth)
        if statement.where is not None:
            acc.predicates += _count_leaf_predicates(statement.where)
            _collect_expr(statement.where, acc, depth)
    elif isinstance(statement, n.Delete):
        acc.tables.add(statement.table.lower())
        if statement.where is not None:
            acc.predicates += _count_leaf_predicates(statement.where)
            _collect_expr(statement.where, acc, depth)
    elif isinstance(statement, n.DropTable):
        acc.tables.add(statement.name.lower())
    elif isinstance(statement, (n.Declare, n.Waitfor)):
        pass
    elif isinstance(statement, n.SetVariable):
        _collect_expr(statement.value, acc, depth)
    elif isinstance(statement, n.ExecProcedure):
        for arg in statement.args:
            _collect_expr(arg, acc, depth)


def _collect_query(query: n.Query, acc: _Accumulator, depth: int) -> None:
    for cte in query.ctes:
        acc.cte_names.add(cte.name.lower())
        _collect_query(cte.query, acc, depth + 1)
    _collect_body(query.body, acc, depth)


def _collect_body(body: n.QueryBody, acc: _Accumulator, depth: int) -> None:
    if isinstance(body, n.Compound):
        _collect_body(body.left, acc, depth)
        _collect_body(body.right, acc, depth)
        for item in body.order_by:
            _collect_expr(item.expr, acc, depth)
        return
    _collect_select_core(body, acc, depth)


def _collect_select_core(core: n.SelectCore, acc: _Accumulator, depth: int) -> None:
    acc.max_depth = max(acc.max_depth, depth)
    for item in core.items:
        _collect_expr(item.expr, acc, depth)
    comma_sources = 0
    for ref in core.from_items:
        comma_sources += 1
        _collect_table_ref(ref, acc, depth)
    if core.where is not None:
        acc.predicates += _count_leaf_predicates(core.where)
        _collect_expr(core.where, acc, depth)
        if comma_sources > 1:
            acc.implicit_joins += _count_implicit_joins(core.where)
    if core.having is not None:
        acc.predicates += _count_leaf_predicates(core.having)
        _collect_expr(core.having, acc, depth)
    for expr in core.group_by:
        _collect_expr(expr, acc, depth)
    for item in core.order_by:
        _collect_expr(item.expr, acc, depth)


def _collect_table_ref(ref: n.TableRef, acc: _Accumulator, depth: int) -> None:
    if isinstance(ref, n.NamedTable):
        if ref.name.lower() not in acc.cte_names:
            acc.tables.add(ref.name.lower())
    elif isinstance(ref, n.DerivedTable):
        _collect_query(ref.query, acc, depth + 1)
    elif isinstance(ref, n.Join):
        acc.explicit_joins += 1
        _collect_table_ref(ref.left, acc, depth)
        _collect_table_ref(ref.right, acc, depth)
        if ref.condition is not None:
            _collect_expr(ref.condition, acc, depth)


def _collect_expr(expr: n.Expr, acc: _Accumulator, depth: int) -> None:
    if isinstance(expr, n.FuncCall):
        acc.functions += 1
        if expr.name.upper() in AGGREGATE_FUNCTIONS:
            acc.aggregate = True
        for arg in expr.args:
            _collect_expr(arg, acc, depth)
    elif isinstance(expr, (n.ScalarSubquery, n.Exists)):
        _collect_query(expr.query, acc, depth + 1)
    elif isinstance(expr, n.InSubquery):
        _collect_expr(expr.expr, acc, depth)
        _collect_query(expr.query, acc, depth + 1)
    else:
        for child in expr.children():
            if isinstance(child, n.Query):
                _collect_query(child, acc, depth + 1)
            elif isinstance(child, n.Expr):
                _collect_expr(child, acc, depth)


def _count_leaf_predicates(expr: n.Expr) -> int:
    """Count atomic boolean conditions in a WHERE/HAVING tree."""
    if isinstance(expr, n.Binary) and expr.op in ("AND", "OR"):
        return _count_leaf_predicates(expr.left) + _count_leaf_predicates(expr.right)
    if isinstance(expr, n.Unary) and expr.op == "NOT":
        return _count_leaf_predicates(expr.operand)
    return 1


def _count_implicit_joins(where: n.Expr) -> int:
    """Count equality conditions linking columns of two different sources."""
    count = 0
    stack = [where]
    while stack:
        expr = stack.pop()
        if isinstance(expr, n.Binary):
            if expr.op in ("AND", "OR"):
                stack.append(expr.left)
                stack.append(expr.right)
            elif (
                expr.op == "="
                and isinstance(expr.left, n.ColumnRef)
                and isinstance(expr.right, n.ColumnRef)
                and expr.left.table is not None
                and expr.right.table is not None
                and expr.left.table.lower() != expr.right.table.lower()
            ):
                count += 1
        elif isinstance(expr, n.Unary) and expr.op == "NOT":
            stack.append(expr.operand)
    return count


def _select_column_count(statement: n.Statement) -> int:
    """Distinct columns referenced in the outermost SELECT clause."""
    query: n.Query | None = None
    if isinstance(statement, n.SelectStatement):
        query = statement.query
    elif isinstance(statement, n.CreateView):
        query = statement.query
    elif isinstance(statement, n.CreateTable):
        query = statement.as_query
    if query is None:
        return 0
    body = query.body
    while isinstance(body, n.Compound):
        body = body.left
    names: set[str] = set()
    for item in body.items:
        for node in n.walk(item.expr):
            if isinstance(node, n.ColumnRef):
                names.add(node.name.lower())
            elif isinstance(node, n.Star):
                names.add("*")
    return len(names)


# ---------------------------------------------------------------------------
# Token-based fallback for unparseable (corrupted) text
# ---------------------------------------------------------------------------


def properties_from_tokens(text: str) -> QueryProperties:
    """Token-scan measurement for text that does not parse.

    Runs on the scanner's parallel arrays (:func:`repro.sql.lexer.scan`)
    rather than Token objects: this path only needs kinds and values, so
    it skips the word-index bisect and Token construction entirely.
    """
    from repro.sql.lexer import scan

    props = QueryProperties(char_count=len(text), word_count=len(text.split()))
    props.query_type = _guess_query_type(text)
    try:
        kinds, values, _, _ = scan(text)
    except Exception:
        return props
    seen_from = False
    for index, kind in enumerate(kinds):
        if kind == K_KEYWORD:
            value = values[index]
            if value == "FROM":
                seen_from = True
            elif value == "JOIN":
                props.join_count += 1
            elif value in ("AND", "OR"):
                props.predicate_count += 1
            elif value == "WHERE":
                props.predicate_count += 1
            elif value == "SELECT" and index > 0:
                props.nestedness = max(props.nestedness, 1)
            elif value in AGGREGATE_FUNCTIONS:
                props.aggregate = True
        elif kind == K_IDENT:
            value = values[index]
            if value.upper() in AGGREGATE_FUNCTIONS:
                # The scan is EOF-terminated, so index + 1 always exists.
                if values[index + 1] == "(":
                    props.aggregate = True
                    props.function_count += 1
            if seen_from and props.table_count == 0:
                props.table_count = 1
    return props


def _guess_query_type(text: str) -> str:
    for word in text.split():
        upper = word.upper().strip("(;")
        if upper in STATEMENT_OPENERS:
            return "EXEC" if upper == "EXECUTE" else upper
    return "SELECT"


def has_explicit_join(text: str) -> bool:
    """Quick token-level check for explicit join keywords."""
    from repro.sql.analysis_cache import tokenize_cached

    try:
        tokens = tokenize_cached(text)
    except Exception:
        return False
    return any(
        token.kind is TokenKind.KEYWORD and token.value in JOIN_KEYWORDS
        for token in tokens
    )
