"""The generic AST transform layer.

Every mutation of a parsed statement in this codebase — corruption
injectors, non-equivalence counter-transforms, equivalence rewrites,
synthetic-generator normalisation, and the rewrite catalog — runs
through the primitives here instead of carrying its own tree walker.
The module owns four concerns:

* **copy-on-write application** — :func:`apply_typed_transform` clones
  the statement (clones never inherit the ``_shash`` structural-hash
  cache, so rebuilt trees can never serve a stale hash), runs one
  mutation function from a registry against the clone, renders, and
  wraps the outcome;
* **site selection** — mutation functions receive a seeded
  ``random.Random`` and use the shared helpers (:func:`and_leaves`,
  :func:`select_cores`, :func:`named_tables`, …) to enumerate candidate
  sites deterministically;
* **applicability** — :func:`applicable_types` probes a registry
  against a throwaway clone per type, the shared idiom behind
  ``applicable_error_types``/``applicable_structural_types``;
* **structural rebuilding** — :func:`replace_expr` (identity-based,
  list- and tuple-aware) and :func:`rewrite_leaves` (predicate-driven
  leaf replacement) are the only sanctioned ways to splice a subtree
  in place.

Do not write new ad-hoc walkers in task or workload code; extend this
module instead (see ARCHITECTURE.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

from repro.sql import nodes as n
from repro.sql.nodes import _field_names, clone, walk
from repro.sql.render import render

__all__ = [
    "AppliedTransform",
    "MutationFn",
    "and_leaves",
    "applicable_types",
    "apply_typed_transform",
    "clone",
    "collect",
    "named_tables",
    "named_tables_with_labels",
    "outer_core",
    "qualify_core_refs",
    "qualify_shallow",
    "replace_expr",
    "rewrite_leaves",
    "sample_order",
    "select_cores",
    "rebuild_and",
    "walk",
]

#: A mutation function mutates an already-cloned statement in place and
#: returns a human-readable detail string on success, ``None`` when the
#: transform does not apply, or a pre-rendered ``(text, detail)`` pair
#: when the corrupted output is *not* a straight render of the mutated
#: tree (e.g. clause-order swaps that misrender deliberately).
MutationOutcome = Union[None, str, tuple[str, str]]
MutationFn = Callable[..., MutationOutcome]


@dataclass
class AppliedTransform:
    """One successful transform application, ready for wrapping.

    ``statement`` is the mutated AST ``text`` was rendered from, or
    ``None`` when the mutation produced pre-rendered text that no tree
    renders to.
    """

    text: str
    name: str
    detail: str
    original_text: str
    statement: Optional[n.Statement] = None


# ---------------------------------------------------------------------------
# Traversal / selection primitives
# ---------------------------------------------------------------------------


def outer_core(statement: n.Statement) -> Optional[n.SelectCore]:
    """The outermost SELECT core of a plain (non-compound) statement."""
    if not isinstance(statement, n.SelectStatement):
        return None
    body = statement.query.body
    return body if isinstance(body, n.SelectCore) else None


def select_cores(statement: n.Node) -> list[n.SelectCore]:
    """All SELECT cores in the statement, outermost first."""
    return [node for node in walk(statement) if isinstance(node, n.SelectCore)]


def collect(root: n.Node, node_type, predicate=None) -> list:
    """All nodes of *node_type* under *root*, optionally filtered."""
    if predicate is None:
        return [node for node in walk(root) if isinstance(node, node_type)]
    return [
        node for node in walk(root) if isinstance(node, node_type) and predicate(node)
    ]


def named_tables(core: n.SelectCore) -> list[n.NamedTable]:
    """The named tables of one core's FROM clause, join trees flattened."""
    tables: list[n.NamedTable] = []

    def visit(ref: n.TableRef) -> None:
        if isinstance(ref, n.NamedTable):
            tables.append(ref)
        elif isinstance(ref, n.Join):
            visit(ref.left)
            visit(ref.right)

    for item in core.from_items:
        visit(item)
    return tables


def named_tables_with_labels(core: n.SelectCore) -> list[tuple[str, str]]:
    """``(label, table_name)`` pairs for one core's FROM sources."""
    return [(table.alias or table.name, table.name) for table in named_tables(core)]


def and_leaves(expr: n.Expr) -> list[n.Expr]:
    """Flatten a conjunction into its leaves."""
    if isinstance(expr, n.Binary) and expr.op == "AND":
        return and_leaves(expr.left) + and_leaves(expr.right)
    return [expr]


def rebuild_and(leaves: list[n.Expr]) -> Optional[n.Expr]:
    """Left-fold leaves back into an AND chain (None for an empty list)."""
    if not leaves:
        return None
    combined = leaves[0]
    for leaf in leaves[1:]:
        combined = n.Binary(op="AND", left=combined, right=leaf)
    return combined


def sample_order(rng: random.Random, types: Sequence[str]) -> list[str]:
    """All types in seeded random order (uniform, without replacement)."""
    return rng.sample(list(types), k=len(types))


def qualify_shallow(expr: n.Expr, alias: str) -> None:
    """Qualify unqualified column refs at this scope level (not subqueries)."""
    stack: list[n.Expr] = [expr]
    while stack:
        current = stack.pop()
        if isinstance(current, n.ColumnRef):
            if current.table is None:
                current.table = alias
        elif isinstance(current, (n.ScalarSubquery, n.Exists)):
            continue
        elif isinstance(current, n.InSubquery):
            stack.append(current.expr)
        else:
            for child in current.children():
                if isinstance(child, n.Expr):
                    stack.append(child)


def qualify_core_refs(core: n.SelectCore, alias: str) -> None:
    """Qualify every unqualified level-0 ref of a single-source core."""
    select_aliases = {item.alias.lower() for item in core.items if item.alias}
    for item in core.items:
        if isinstance(item.expr, n.Star):
            continue
        qualify_shallow(item.expr, alias)
    if core.where is not None:
        qualify_shallow(core.where, alias)
    for expr in core.group_by:
        qualify_shallow(expr, alias)
    if core.having is not None:
        qualify_shallow(core.having, alias)
    for item in core.order_by:
        # ORDER BY may name a select alias; qualifying that would break it.
        if (
            isinstance(item.expr, n.ColumnRef)
            and item.expr.table is None
            and item.expr.name.lower() in select_aliases
        ):
            continue
        qualify_shallow(item.expr, alias)


# ---------------------------------------------------------------------------
# Structural rebuilding
# ---------------------------------------------------------------------------


def replace_expr(root: n.Node, target: n.Expr, replacement: n.Expr) -> bool:
    """Replace *target* (by identity) anywhere under *root*.

    Handles node-valued fields, nodes inside list fields, and nodes
    inside tuples inside list fields (``Case.whens``,
    ``Update.assignments``).  Returns True when a splice happened.
    """
    for node in walk(root):
        for field_name in _field_names(node.__class__):
            value = getattr(node, field_name)
            if value is target:
                setattr(node, field_name, replacement)
                return True
            if isinstance(value, list):
                for index, item in enumerate(value):
                    if item is target:
                        value[index] = replacement
                        return True
                    if isinstance(item, tuple):
                        for sub_index, sub in enumerate(item):
                            if sub is target:
                                new_tuple = list(item)
                                new_tuple[sub_index] = replacement
                                value[index] = tuple(new_tuple)
                                return True
    return False


def rewrite_leaves(
    root: n.Node,
    matches: Callable[[object], bool],
    rebuild: Callable,
) -> int:
    """Replace every field value satisfying *matches* with ``rebuild(value)``.

    Walks every node's fields in place — including list items and
    tuple-in-list items — and returns the number of replacements.  This
    is the structural-hash-safe way to normalise leaves across a whole
    tree (the tree being rewritten must be a clone or a fresh build,
    never a cached shared statement).
    """
    count = 0
    for node in walk(root):
        for field_name in _field_names(node.__class__):
            value = getattr(node, field_name)
            if matches(value):
                setattr(node, field_name, rebuild(value))
                count += 1
            elif isinstance(value, list):
                for index, item in enumerate(value):
                    if matches(item):
                        value[index] = rebuild(item)
                        count += 1
                    elif isinstance(item, tuple) and any(matches(sub) for sub in item):
                        value[index] = tuple(
                            rebuild(sub) if matches(sub) else sub for sub in item
                        )
                        count += 1
    return count


# ---------------------------------------------------------------------------
# Registry application
# ---------------------------------------------------------------------------


def apply_typed_transform(
    statement: n.Statement,
    schema,
    rng: random.Random,
    registry: Mapping[str, MutationFn],
    order: Iterable[str],
    *,
    original_text: Optional[str] = None,
    require_change: bool = True,
    kind: str = "transform",
) -> Optional[AppliedTransform]:
    """Apply the first applicable transform from *registry* in *order*.

    The copy-on-write discipline all mutation sites share: each
    candidate runs against a fresh :func:`clone` of *statement* (clones
    carry no ``_shash``, so the mutated tree always re-derives its
    structural hash), successful mutations are rendered, and — when
    *require_change* — renders identical to *original_text* are skipped
    as silent no-ops.  Unknown names in *order* raise ``KeyError``.
    """
    if original_text is None:
        original_text = render(statement)
    for candidate in order:
        fn = registry.get(candidate)
        if fn is None:
            raise KeyError(f"unknown {kind} type {candidate!r}")
        mutated = clone(statement)
        outcome = fn(mutated, schema, rng)
        if outcome is None:
            continue
        if isinstance(outcome, tuple):
            text, detail = outcome
            applied_statement = None
        else:
            text, detail = render(mutated), outcome
            applied_statement = mutated
        if require_change and text == original_text:
            continue
        return AppliedTransform(
            text=text,
            name=candidate,
            detail=detail,
            original_text=original_text,
            statement=applied_statement,
        )
    return None


def applicable_types(
    statement: n.Statement,
    schema,
    rng: random.Random,
    registry: Mapping[str, MutationFn],
    types: Sequence[str],
) -> list[str]:
    """Types whose mutation function succeeds on (a copy of) *statement*.

    Each probe runs against a throwaway clone with an rng forked off the
    caller's (``random.Random(rng.random())``), so probing consumes
    exactly one draw per type regardless of how many draws the mutation
    makes internally.
    """
    applicable = []
    for type_name in types:
        trial = clone(statement)
        if registry[type_name](trial, schema, random.Random(rng.random())) is not None:
            applicable.append(type_name)
    return applicable
