"""Token model shared by the lexer and parser."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    VARIABLE = "variable"  # T-SQL @name
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: Lexical category.
        value: Canonical text.  Keywords are upper-cased; identifiers keep
            their original spelling; strings keep their quotes stripped.
        position: Character offset of the first character in the source.
        word_index: Zero-based index of the whitespace-delimited word the
            token starts in.  The miss_token_loc task reports positions as
            word counts (paper section 3.4), so the lexer tracks this.
        end: Character offset one past the last character (for splicing
            tokens out of the source, as the missing-token injector does).
    """

    kind: TokenKind
    value: str
    position: int = 0
    word_index: int = 0
    end: int = 0

    def is_keyword(self, *names: str) -> bool:
        """Return True when this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.value in names

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.value}:{self.value!r}@{self.position}"
