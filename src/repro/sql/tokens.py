"""Token model shared by the lexer and parser.

:class:`Token` is a ``NamedTuple`` rather than a dataclass: the lexer
builds one per token on the cold path of every first-touch text, and
``tuple.__new__`` construction is several times cheaper than a frozen
dataclass ``__init__`` (which pays an ``object.__setattr__`` per field).
The public surface is unchanged — attribute access, structural equality,
immutability and :meth:`Token.is_keyword` all behave as before.

The scanner-internal hot path (:func:`repro.sql.lexer.scan`) avoids
Token objects entirely and speaks in the integer kind codes below;
:data:`KIND_TO_CODE` / :data:`CODE_TO_KIND` convert at the boundary.
"""

from __future__ import annotations

import enum
from typing import NamedTuple


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    VARIABLE = "variable"  # T-SQL @name
    EOF = "eof"


#: Integer kind codes used by the scanner/parser hot path.  Comparing
#: small ints is cheaper than comparing enum members, and lists of ints
#: are cheaper to build than lists of enum references.
K_KEYWORD = 0
K_IDENT = 1
K_NUMBER = 2
K_STRING = 3
K_OPERATOR = 4
K_PUNCT = 5
K_VARIABLE = 6
K_EOF = 7

#: code -> TokenKind, indexable by the K_* constants above.
CODE_TO_KIND: tuple[TokenKind, ...] = (
    TokenKind.KEYWORD,
    TokenKind.IDENT,
    TokenKind.NUMBER,
    TokenKind.STRING,
    TokenKind.OPERATOR,
    TokenKind.PUNCT,
    TokenKind.VARIABLE,
    TokenKind.EOF,
)

#: TokenKind -> code (for adapting an externally built Token stream).
KIND_TO_CODE: dict[TokenKind, int] = {
    kind: code for code, kind in enumerate(CODE_TO_KIND)
}


class Token(NamedTuple):
    """A single lexical token.

    Attributes:
        kind: Lexical category.
        value: Canonical text.  Keywords are upper-cased; identifiers keep
            their original spelling; strings keep their quotes stripped.
        position: Character offset of the first character in the source.
        word_index: Zero-based index of the whitespace-delimited word the
            token starts in.  The miss_token_loc task reports positions as
            word counts (paper section 3.4), so the lexer tracks this.
        end: Character offset one past the last character (for splicing
            tokens out of the source, as the missing-token injector does).
    """

    kind: TokenKind
    value: str
    position: int = 0
    word_index: int = 0
    end: int = 0

    def is_keyword(self, *names: str) -> bool:
        """Return True when this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.value in names

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.value}:{self.value!r}@{self.position}"
