"""Single-pass SQL scanner and lexer.

Two layers share one compiled master pattern:

* :func:`scan` — the hot core.  One C-speed regex match per token
  (a possessive trivia prefix folds whitespace/comments into the same
  match), classified into four parallel arrays ``(kinds, values,
  starts, ends)`` with integer kind codes.  No Token objects, no word
  indexes: this is what the parser and the memoized analysis layer
  consume on the cold path.
* :func:`tokenize` — the public lexer.  Wraps the scan into a flat list
  of :class:`~repro.sql.tokens.Token`, adding each token's
  whitespace-delimited *word* index (the paper's miss_token_loc task
  measures positions in words, section 3.4) via one bisect per token
  over precomputed word-end offsets.

Keywords classify through :data:`~repro.sql.keywords.KEYWORD_CANON`, a
precomputed spelling table that resolves the common casings with a
single dict probe instead of an ``.upper()`` + set membership per word.
Comments are skipped.  The token stream is byte-identical to the
original character-at-a-time scanner (``tests/golden/lexer_tokens.json``
proves it field-for-field).
"""

from __future__ import annotations

import re
from bisect import bisect_right
from itertools import repeat

from repro.sql.errors import LexError
from repro.sql.keywords import KEYWORD_CANON, KEYWORDS
from repro.sql.tokens import (
    CODE_TO_KIND,
    K_EOF,
    K_IDENT,
    K_KEYWORD,
    K_NUMBER,
    K_OPERATOR,
    K_PUNCT,
    K_STRING,
    K_VARIABLE,
    Token,
)

#: Whitespace-delimited words; their end offsets drive word_index lookup.
_WORDS = re.compile(r"\S+")

#: The master pattern: skip trivia, then match one token.  The
#: alternatives are ordered roughly by frequency in real query logs
#: (words and punctuation dominate), with three correctness constraints:
#:
#: * PUNCT's ``.`` carries a ``(?!\\d)`` guard so ``.5`` falls through
#:   to NUMBER while a plain ``.`` stays punctuation;
#: * BADCOMMENT sits before OPERATOR so an unterminated ``/*`` raises
#:   instead of lexing as a division operator;
#: * the BAD* alternatives come after every well-formed sibling: they
#:   only match when the alternative above failed, turning each failure
#:   mode into the same LexError the old scanner raised.
#:
#: The trivia prefix and the string bodies use possessive repetition
#: (``*+``) so a partial match cannot backtrack into a shorter bogus
#: one — an unterminated ``'a''`` falls through to BADSTRING exactly
#: like the old scanner's unterminated-literal path.  The whole token
#: part is optional: a match that consumed only trailing trivia reports
#: ``lastindex is None`` and ends the scan.
_MASTER = re.compile(
    r"""
    (?:\s+|--[^\n]*(?:\n|$)|/\*(?s:.)*?\*/)*+
    (?:
     (?P<WORD>[^\W\d]\w*)
    |(?P<PUNCT>[(),;]|\.(?!\d))
    |(?P<NUMBER>(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
    |(?P<BADCOMMENT>/\*)
    |(?P<OPERATOR><=|>=|<>|!=|\|\||[-+*/%=<>!|])
    |(?P<STRING>'(?:[^']|'')*+'|"(?:[^"]|"")*+")
    |(?P<BRACKET>\[[^]]*\])
    |(?P<VARIABLE>@\w+)
    |(?P<BADSTRING>['"])
    |(?P<BADBRACKET>\[)
    |(?P<BADVAR>@)
    )?
    """,
    re.VERBOSE,
)

_GROUPS = _MASTER.groupindex
_WORD = _GROUPS["WORD"]
_PUNCT = _GROUPS["PUNCT"]
_NUMBER = _GROUPS["NUMBER"]
_BADCOMMENT = _GROUPS["BADCOMMENT"]
_OPERATOR = _GROUPS["OPERATOR"]
_STRING = _GROUPS["STRING"]
_BRACKET = _GROUPS["BRACKET"]
_VARIABLE = _GROUPS["VARIABLE"]

_BAD_MESSAGES = {
    _BADCOMMENT: "unterminated block comment",
    _GROUPS["BADSTRING"]: "unterminated string literal",
    _GROUPS["BADBRACKET"]: "unterminated bracketed identifier",
    _GROUPS["BADVAR"]: "dangling '@'",
}

#: Result of one scan: parallel (kinds, values, starts, ends) arrays,
#: EOF-terminated (the EOF entry's start/end are both ``len(text)``).
ScanResult = tuple[list[int], list[str], list[int], list[int]]


def scan(text: str) -> ScanResult:
    """Scan *text* into parallel token arrays (the cold-path core).

    Returns ``(kinds, values, starts, ends)`` where ``kinds`` holds the
    ``K_*`` integer codes of :mod:`repro.sql.tokens`, terminated by one
    ``K_EOF`` entry.  Raises :class:`~repro.sql.errors.LexError` exactly
    where :func:`tokenize` does.
    """
    length = len(text)
    match_at = _MASTER.match
    canon_get = KEYWORD_CANON.get
    keywords = KEYWORDS
    kinds: list[int] = []
    values: list[str] = []
    starts: list[int] = []
    ends: list[int] = []
    append_kind = kinds.append
    append_value = values.append
    append_start = starts.append
    append_end = ends.append
    pos = 0
    while pos < length:
        match = match_at(text, pos)
        index = match.lastindex
        if index is None:
            # Only trivia matched: end of input, or an unlexable char.
            end = match.end()
            if end >= length:
                break
            raise LexError(f"unexpected character {text[end]!r}", end)
        start = match.start(index)
        end = match.end()
        if index == _WORD:
            raw = match.group(index)
            canonical = canon_get(raw)
            if canonical is not None:
                append_kind(K_KEYWORD)
                append_value(canonical)
            else:
                upper = raw.upper()
                if upper in keywords:
                    append_kind(K_KEYWORD)
                    append_value(upper)
                else:
                    append_kind(K_IDENT)
                    append_value(raw)
        elif index == _PUNCT:
            append_kind(K_PUNCT)
            append_value(text[start])
        elif index == _NUMBER:
            append_kind(K_NUMBER)
            append_value(match.group(index))
        elif index == _OPERATOR:
            append_kind(K_OPERATOR)
            append_value(match.group(index))
        elif index == _STRING:
            quote = text[start]
            append_kind(K_STRING)
            append_value(text[start + 1 : end - 1].replace(quote + quote, quote))
        elif index == _BRACKET:
            append_kind(K_IDENT)
            append_value(text[start + 1 : end - 1])
        elif index == _VARIABLE:
            append_kind(K_VARIABLE)
            append_value(match.group(index))
        else:
            raise LexError(_BAD_MESSAGES[index], start)
        append_start(start)
        append_end(end)
        pos = end
    append_kind(K_EOF)
    append_value("")
    append_start(length)
    append_end(length)
    return kinds, values, starts, ends


def _word_ends(text: str) -> list[int]:
    return [m.end() for m in _WORDS.finditer(text)]


def tokens_from_scan(text: str, scanned: ScanResult) -> list[Token]:
    """Wrap a scan into the public EOF-terminated Token list."""
    kinds, values, starts, ends = scanned
    word_ends = _word_ends(text)
    # The EOF sentinel's start is len(text); bisect maps it just like
    # any other offset.  map() keeps the per-token work in C: one bisect
    # for the word index, one Token._make for construction.
    words = map(bisect_right, repeat(word_ends), starts)
    token_kinds = map(CODE_TO_KIND.__getitem__, kinds)
    return list(map(Token._make, zip(token_kinds, values, starts, words, ends)))


class Lexer:
    """Single-pass scanner over a SQL string (compatibility wrapper).

    Hot paths call :func:`scan` (arrays) or :func:`tokenize` (tokens)
    directly; this class survives for callers that want
    :meth:`word_index` lookups against the same word model.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.length = len(text)
        self.pos = 0
        self._word_ends = _word_ends(text)

    def word_index(self, offset: int) -> int:
        """Index of the whitespace-delimited word *offset* belongs to.

        Whitespace positions map to the index of the *next* word — how a
        person counts word positions when told "the missing word is at
        word position N".
        """
        return bisect_right(self._word_ends, offset)

    def tokenize(self) -> list[Token]:
        """Scan the whole input and return tokens ending with EOF."""
        tokens = tokens_from_scan(self.text, scan(self.text))
        self.pos = self.length
        return tokens


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*, returning a token list terminated by EOF.

    This is the *raw* (uncached) lexer; hot paths should prefer
    :func:`repro.sql.analysis_cache.tokenize_cached`, which memoizes the
    stream per distinct text.
    """
    return tokens_from_scan(text, scan(text))


def word_count(text: str) -> int:
    """Number of whitespace-delimited words (paper property word_count)."""
    return len(text.split())


def char_count(text: str) -> int:
    """Number of characters (paper property char_count)."""
    return len(text)
