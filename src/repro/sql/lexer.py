"""Single-pass regex SQL lexer.

Produces a flat list of :class:`~repro.sql.tokens.Token`.  Comments are
skipped.  Each token records both its character offset and the index of
the whitespace-delimited *word* it starts in, because the paper's
miss_token_loc task measures positions in words (section 3.4).

One compiled master pattern — a possessive trivia prefix (whitespace and
comments) followed by a token alternation — classifies every token in a
single C-speed match, replacing the previous character-at-a-time
scanner.  The token stream is byte-identical (the golden fixture in
``tests/golden/lexer_tokens.json``, recorded from the old scanner,
proves it).  Word indexes come from a bisect over word-end offsets
instead of a per-character index array.
"""

from __future__ import annotations

import re
from bisect import bisect_right

from repro.sql.errors import LexError
from repro.sql.keywords import KEYWORDS
from repro.sql.tokens import Token, TokenKind

#: Whitespace-delimited words; their end offsets drive word_index lookup.
_WORDS = re.compile(r"\S+")

#: The master pattern: skip trivia, then match one token.  The
#: alternatives are ordered roughly by frequency in real query logs
#: (words and punctuation dominate), with three correctness constraints:
#:
#: * PUNCT's ``.`` carries a ``(?!\\d)`` guard so ``.5`` falls through
#:   to NUMBER while a plain ``.`` stays punctuation;
#: * BADCOMMENT sits before OPERATOR so an unterminated ``/*`` raises
#:   instead of lexing as a division operator;
#: * the BAD* alternatives come after every well-formed sibling: they
#:   only match when the alternative above failed, turning each failure
#:   mode into the same LexError the old scanner raised.
#:
#: The trivia prefix and the string bodies use possessive repetition
#: (``*+``) so a partial match cannot backtrack into a shorter bogus
#: one — an unterminated ``'a''`` falls through to BADSTRING exactly
#: like the old scanner's unterminated-literal path.  The whole token
#: part is optional: a match that consumed only trailing trivia reports
#: ``lastindex is None`` and ends the scan.
_MASTER = re.compile(
    r"""
    (?:\s+|--[^\n]*(?:\n|$)|/\*(?s:.)*?\*/)*+
    (?:
     (?P<WORD>[^\W\d]\w*)
    |(?P<PUNCT>[(),;]|\.(?!\d))
    |(?P<NUMBER>(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
    |(?P<BADCOMMENT>/\*)
    |(?P<OPERATOR><=|>=|<>|!=|\|\||[-+*/%=<>!|])
    |(?P<STRING>'(?:[^']|'')*+'|"(?:[^"]|"")*+")
    |(?P<BRACKET>\[[^]]*\])
    |(?P<VARIABLE>@\w+)
    |(?P<BADSTRING>['"])
    |(?P<BADBRACKET>\[)
    |(?P<BADVAR>@)
    )?
    """,
    re.VERBOSE,
)

_GROUPS = _MASTER.groupindex
_WORD = _GROUPS["WORD"]
_PUNCT = _GROUPS["PUNCT"]
_NUMBER = _GROUPS["NUMBER"]
_BADCOMMENT = _GROUPS["BADCOMMENT"]
_OPERATOR = _GROUPS["OPERATOR"]
_STRING = _GROUPS["STRING"]
_BRACKET = _GROUPS["BRACKET"]
_VARIABLE = _GROUPS["VARIABLE"]

_BAD_MESSAGES = {
    _BADCOMMENT: "unterminated block comment",
    _GROUPS["BADSTRING"]: "unterminated string literal",
    _GROUPS["BADBRACKET"]: "unterminated bracketed identifier",
    _GROUPS["BADVAR"]: "dangling '@'",
}

_KEYWORD_KIND = TokenKind.KEYWORD
_IDENT_KIND = TokenKind.IDENT
_PUNCT_KIND = TokenKind.PUNCT
_NUMBER_KIND = TokenKind.NUMBER
_OPERATOR_KIND = TokenKind.OPERATOR
_STRING_KIND = TokenKind.STRING
_VARIABLE_KIND = TokenKind.VARIABLE


class Lexer:
    """Single-pass scanner over a SQL string."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.length = len(text)
        self.pos = 0
        self._word_ends = [m.end() for m in _WORDS.finditer(text)]

    def word_index(self, offset: int) -> int:
        """Index of the whitespace-delimited word *offset* belongs to.

        Whitespace positions map to the index of the *next* word — how a
        person counts word positions when told "the missing word is at
        word position N".
        """
        return bisect_right(self._word_ends, offset)

    def tokenize(self) -> list[Token]:
        """Scan the whole input and return tokens ending with EOF."""
        text = self.text
        length = self.length
        word_ends = self._word_ends
        scan = _MASTER.match
        keywords = KEYWORDS
        tokens: list[Token] = []
        append = tokens.append
        pos = 0
        while pos < length:
            match = scan(text, pos)
            index = match.lastindex
            if index is None:
                # Only trivia matched: end of input, or an unlexable char.
                end = match.end()
                if end >= length:
                    pos = end
                    break
                raise LexError(f"unexpected character {text[end]!r}", end)
            start = match.start(index)
            end = match.end()
            word = bisect_right(word_ends, start)
            if index == _WORD:
                raw = match.group(index)
                upper = raw.upper()
                if upper in keywords:
                    append(Token(_KEYWORD_KIND, upper, start, word, end))
                else:
                    append(Token(_IDENT_KIND, raw, start, word, end))
            elif index == _PUNCT:
                append(Token(_PUNCT_KIND, text[start], start, word, end))
            elif index == _NUMBER:
                append(Token(_NUMBER_KIND, match.group(index), start, word, end))
            elif index == _OPERATOR:
                append(Token(_OPERATOR_KIND, match.group(index), start, word, end))
            elif index == _STRING:
                quote = text[start]
                value = text[start + 1 : end - 1].replace(quote + quote, quote)
                append(Token(_STRING_KIND, value, start, word, end))
            elif index == _BRACKET:
                append(
                    Token(_IDENT_KIND, text[start + 1 : end - 1], start, word, end)
                )
            elif index == _VARIABLE:
                append(Token(_VARIABLE_KIND, match.group(index), start, word, end))
            else:
                raise LexError(_BAD_MESSAGES[index], start)
            pos = end
        self.pos = pos
        append(
            Token(TokenKind.EOF, "", self.pos, bisect_right(word_ends, self.pos), self.pos)
        )
        return tokens


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*, returning a token list terminated by EOF.

    This is the *raw* (uncached) lexer; hot paths should prefer
    :func:`repro.sql.analysis_cache.tokenize_cached`, which memoizes the
    stream per distinct text.
    """
    return Lexer(text).tokenize()


def word_count(text: str) -> int:
    """Number of whitespace-delimited words (paper property word_count)."""
    return len(text.split())


def char_count(text: str) -> int:
    """Number of characters (paper property char_count)."""
    return len(text)
