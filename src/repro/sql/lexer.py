"""Hand-written SQL lexer.

Produces a flat list of :class:`~repro.sql.tokens.Token`.  Comments are
skipped.  Each token records both its character offset and the index of
the whitespace-delimited *word* it starts in, because the paper's
miss_token_loc task measures positions in words (section 3.4).
"""

from __future__ import annotations

from repro.sql.errors import LexError
from repro.sql.keywords import KEYWORDS
from repro.sql.tokens import Token, TokenKind

_OPERATOR_STARTS = set("+-*/%=<>!|")
_TWO_CHAR_OPERATORS = {"<=", ">=", "<>", "!=", "||"}
_PUNCT = set("(),.;")


def _word_indexes(text: str) -> list[int]:
    """Map each character offset to the index of the word it belongs to.

    A "word" is a maximal run of non-whitespace characters; whitespace
    positions map to the index of the *next* word.  This matches how a
    person counts word positions when told "the missing word is at word
    position N".
    """
    indexes = [0] * (len(text) + 1)
    word = 0
    in_word = False
    for offset, char in enumerate(text):
        if char.isspace():
            if in_word:
                word += 1
                in_word = False
            indexes[offset] = word
        else:
            in_word = True
            indexes[offset] = word
    indexes[len(text)] = word + (1 if in_word else 0)
    return indexes


class Lexer:
    """Single-pass scanner over a SQL string."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.length = len(text)
        self.pos = 0
        self._words = _word_indexes(text)

    def tokenize(self) -> list[Token]:
        """Scan the whole input and return tokens ending with EOF."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    def _next_token(self) -> Token:
        self._skip_trivia()
        if self.pos >= self.length:
            return Token(TokenKind.EOF, "", self.pos, self._words[self.pos], self.pos)
        start = self.pos
        char = self.text[start]
        if char.isdigit() or (char == "." and self._peek_is_digit(start + 1)):
            return self._read_number(start)
        if char == "'" or char == '"':
            return self._read_string(start, char)
        if char == "[":
            return self._read_bracket_ident(start)
        if char == "@":
            return self._read_variable(start)
        if char == "_" or char.isalpha():
            return self._read_word(start)
        if char in _OPERATOR_STARTS:
            return self._read_operator(start)
        if char in _PUNCT:
            self.pos = start + 1
            return Token(TokenKind.PUNCT, char, start, self._words[start], start + 1)
        raise LexError(f"unexpected character {char!r}", start)

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments (``--`` line and ``/* */`` block)."""
        while self.pos < self.length:
            char = self.text[self.pos]
            if char.isspace():
                self.pos += 1
                continue
            if char == "-" and self._peek(self.pos + 1) == "-":
                newline = self.text.find("\n", self.pos)
                self.pos = self.length if newline < 0 else newline + 1
                continue
            if char == "/" and self._peek(self.pos + 1) == "*":
                close = self.text.find("*/", self.pos + 2)
                if close < 0:
                    raise LexError("unterminated block comment", self.pos)
                self.pos = close + 2
                continue
            return

    def _peek(self, offset: int) -> str:
        return self.text[offset] if offset < self.length else ""

    def _peek_is_digit(self, offset: int) -> bool:
        return offset < self.length and self.text[offset].isdigit()

    def _read_number(self, start: int) -> Token:
        pos = start
        seen_dot = False
        seen_exp = False
        while pos < self.length:
            char = self.text[pos]
            if char.isdigit():
                pos += 1
            elif char == "." and not seen_dot and not seen_exp:
                seen_dot = True
                pos += 1
            elif char in "eE" and not seen_exp and pos > start:
                nxt = self._peek(pos + 1)
                if nxt.isdigit() or (nxt in "+-" and self._peek_is_digit(pos + 2)):
                    seen_exp = True
                    pos += 2 if nxt in "+-" else 1
                    continue
                break
            else:
                break
        self.pos = pos
        return Token(
            TokenKind.NUMBER, self.text[start:pos], start, self._words[start], pos
        )

    def _read_string(self, start: int, quote: str) -> Token:
        pos = start + 1
        parts: list[str] = []
        while pos < self.length:
            char = self.text[pos]
            if char == quote:
                if self._peek(pos + 1) == quote:  # doubled quote escape
                    parts.append(quote)
                    pos += 2
                    continue
                self.pos = pos + 1
                return Token(
                    TokenKind.STRING, "".join(parts), start, self._words[start], pos + 1
                )
            parts.append(char)
            pos += 1
        raise LexError("unterminated string literal", start)

    def _read_bracket_ident(self, start: int) -> Token:
        """Read a T-SQL ``[bracketed identifier]``."""
        close = self.text.find("]", start + 1)
        if close < 0:
            raise LexError("unterminated bracketed identifier", start)
        self.pos = close + 1
        return Token(
            TokenKind.IDENT,
            self.text[start + 1 : close],
            start,
            self._words[start],
            close + 1,
        )

    def _read_variable(self, start: int) -> Token:
        pos = start + 1
        while pos < self.length and (
            self.text[pos].isalnum() or self.text[pos] == "_"
        ):
            pos += 1
        if pos == start + 1:
            raise LexError("dangling '@'", start)
        self.pos = pos
        return Token(
            TokenKind.VARIABLE, self.text[start:pos], start, self._words[start], pos
        )

    def _read_word(self, start: int) -> Token:
        pos = start
        while pos < self.length and (
            self.text[pos].isalnum() or self.text[pos] == "_"
        ):
            pos += 1
        self.pos = pos
        raw = self.text[start:pos]
        upper = raw.upper()
        if upper in KEYWORDS:
            return Token(TokenKind.KEYWORD, upper, start, self._words[start], pos)
        return Token(TokenKind.IDENT, raw, start, self._words[start], pos)

    def _read_operator(self, start: int) -> Token:
        two = self.text[start : start + 2]
        if two in _TWO_CHAR_OPERATORS:
            self.pos = start + 2
            return Token(TokenKind.OPERATOR, two, start, self._words[start], start + 2)
        self.pos = start + 1
        return Token(
            TokenKind.OPERATOR, self.text[start], start, self._words[start], start + 1
        )


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*, returning a token list terminated by EOF."""
    return Lexer(text).tokenize()


def word_count(text: str) -> int:
    """Number of whitespace-delimited words (paper property word_count)."""
    return len(text.split())


def char_count(text: str) -> int:
    """Number of characters (paper property char_count)."""
    return len(text)
