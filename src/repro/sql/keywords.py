"""SQL keyword and built-in function vocabularies.

The workloads studied in the paper mix dialects: SDSS/SQLShare queries are
T-SQL flavoured (``SELECT TOP``, ``DECLARE @x``, ``EXEC``, ``WAITFOR``,
``dbo.`` qualified UDFs), while Join-Order and Spider queries are plain
ANSI/SQLite SELECTs.  The vocabularies below cover the union.
"""

from __future__ import annotations

#: Reserved words recognised by the lexer.  Matching is case-insensitive;
#: the canonical spelling stored on tokens is upper-case.
KEYWORDS: frozenset[str] = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "OFFSET",
        "TOP",
        "DISTINCT",
        "ALL",
        "AS",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "FULL",
        "OUTER",
        "CROSS",
        "ON",
        "USING",
        "AND",
        "OR",
        "NOT",
        "IN",
        "BETWEEN",
        "LIKE",
        "IS",
        "NULL",
        "EXISTS",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "WITH",
        "CREATE",
        "TABLE",
        "VIEW",
        "INSERT",
        "INTO",
        "VALUES",
        "UPDATE",
        "SET",
        "DELETE",
        "DROP",
        "DECLARE",
        "EXEC",
        "EXECUTE",
        "WAITFOR",
        "DELAY",
        "PRIMARY",
        "KEY",
        "FOREIGN",
        "REFERENCES",
        "DEFAULT",
        "CHECK",
        "UNIQUE",
        "INDEX",
        "CAST",
        "TRUE",
        "FALSE",
        "IF",
    }
)

#: Precomputed spelling -> canonical-uppercase keyword table.  The three
#: spellings real query logs use (``SELECT`` / ``select`` / ``Select``)
#: resolve with a single dict probe — the scanner's word fast path —
#: while arbitrary mixed case (``SeLeCt``) falls back to ``.upper()``
#: plus a :data:`KEYWORDS` membership check.  This is the pure-Python
#: analogue of a perfect-hash keyword table: one collision-free lookup
#: classifies the overwhelmingly common case.
KEYWORD_CANON: dict[str, str] = {
    spelling: keyword
    for keyword in KEYWORDS
    for spelling in (keyword, keyword.lower(), keyword.capitalize())
}

#: Aggregate functions; used by the analyzer for GROUP BY discipline and by
#: the property extractor for the ``aggregate`` flag.
AGGREGATE_FUNCTIONS: frozenset[str] = frozenset(
    {"COUNT", "SUM", "AVG", "MIN", "MAX", "STDEV", "VAR"}
)

#: Scalar built-ins seen across the four workloads (T-SQL + SQLite blend).
SCALAR_FUNCTIONS: frozenset[str] = frozenset(
    {
        "ABS",
        "ROUND",
        "FLOOR",
        "CEILING",
        "SQRT",
        "POWER",
        "LOG",
        "LOG10",
        "EXP",
        "SIN",
        "COS",
        "TAN",
        "ATAN2",
        "RADIANS",
        "DEGREES",
        "SIGN",
        "UPPER",
        "LOWER",
        "LTRIM",
        "RTRIM",
        "TRIM",
        "LEN",
        "LENGTH",
        "SUBSTRING",
        "SUBSTR",
        "REPLACE",
        "CHARINDEX",
        "STR",
        "CONCAT",
        "COALESCE",
        "NULLIF",
        "ISNULL",
        "IFNULL",
        "GETDATE",
        "DATEDIFF",
        "DATEADD",
        "YEAR",
        "MONTH",
        "DAY",
        "CONVERT",
    }
)

#: SDSS SkyServer user-defined functions (schema-qualified with ``dbo.``).
#: These appear verbatim in real SDSS query logs and in our generator.
SDSS_UDFS: frozenset[str] = frozenset(
    {
        "fGetNearbyObjEq",
        "fGetObjFromRect",
        "fPhotoTypeN",
        "fSpecZWarningN",
        "fObjidFromSDSS",
        "fDistanceArcMinEq",
        "fMagToFlux",
        "fSDSSfromEq",
    }
)

#: Words that may open a statement; used for query_type classification.
STATEMENT_OPENERS: tuple[str, ...] = (
    "SELECT",
    "WITH",
    "CREATE",
    "INSERT",
    "UPDATE",
    "DELETE",
    "DROP",
    "DECLARE",
    "SET",
    "EXEC",
    "EXECUTE",
    "WAITFOR",
)

#: Join-introducing keywords, used by the property extractor.
JOIN_KEYWORDS: frozenset[str] = frozenset(
    {"JOIN", "INNER", "LEFT", "RIGHT", "FULL", "CROSS"}
)

#: Type names accepted in DDL and CAST expressions.
TYPE_NAMES: frozenset[str] = frozenset(
    {
        "INT",
        "INTEGER",
        "BIGINT",
        "SMALLINT",
        "TINYINT",
        "FLOAT",
        "REAL",
        "DOUBLE",
        "DECIMAL",
        "NUMERIC",
        "VARCHAR",
        "NVARCHAR",
        "CHAR",
        "TEXT",
        "DATE",
        "DATETIME",
        "TIME",
        "BIT",
        "BOOLEAN",
    }
)


def is_aggregate_function(name: str) -> bool:
    """Return True when *name* refers to an aggregate function."""
    return name.upper() in AGGREGATE_FUNCTIONS


def is_known_function(name: str) -> bool:
    """Return True when *name* is any known built-in or SDSS UDF."""
    upper = name.upper()
    if upper in AGGREGATE_FUNCTIONS or upper in SCALAR_FUNCTIONS:
        return True
    return name in SDSS_UDFS
