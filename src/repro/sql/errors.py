"""Exception hierarchy for the SQL substrate."""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all SQL substrate failures."""


class LexError(SqlError):
    """Raised when the lexer meets a character it cannot tokenize."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """Raised when the parser cannot derive a statement.

    Attributes:
        position: Character offset of the offending token.
        found: Text of the offending token (empty string at end of input).
    """

    def __init__(self, message: str, position: int = 0, found: str = "") -> None:
        super().__init__(f"{message} (at offset {position}, found {found!r})")
        self.position = position
        self.found = found


class RenderError(SqlError):
    """Raised when an AST cannot be rendered in the requested dialect."""


class SharedASTMutationError(SqlError):
    """Raised by the analysis cache's debug guard when a cached statement
    was mutated in place.

    Cached ASTs are shared values; mutating one corrupts every later
    consumer of the same query text.  The guard
    (``REPRO_DEBUG_SHARED_AST=1``) detects the corruption at the next
    cache read by recomparing the tree's structural hash against the one
    recorded when it was parsed.  The fix is always the same: call
    :func:`repro.sql.nodes.clone` before mutating.
    """


class AnalysisError(SqlError):
    """Raised for malformed analyzer inputs (not for detected violations)."""
