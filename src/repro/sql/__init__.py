"""SQL substrate: lexer, parser, AST, renderer and property extraction.

Hot paths should go through :mod:`repro.sql.analysis_cache`
(``tokenize_cached`` / ``try_parse_cached`` / ``analyze_cached``), which
memoizes per distinct query text; the raw ``tokenize`` / ``try_parse``
entry points always recompute.
"""

from repro.sql import nodes
from repro.sql.analysis_cache import (
    QueryAnalysis,
    analyze_cached,
    parse_cached,
    tokenize_cached,
    try_parse_cached,
)
from repro.sql.errors import LexError, ParseError, RenderError, SqlError
from repro.sql.lexer import char_count, tokenize, word_count
from repro.sql.parser import parse_query, parse_script, parse_statement, try_parse
from repro.sql.properties import (
    PROPERTY_NAMES,
    QueryProperties,
    extract_properties,
    extract_statement_properties,
)
from repro.sql.render import SQLITE, TSQL, render

__all__ = [
    "nodes",
    "LexError",
    "ParseError",
    "RenderError",
    "SqlError",
    "tokenize",
    "word_count",
    "char_count",
    "parse_query",
    "parse_script",
    "parse_statement",
    "try_parse",
    "QueryAnalysis",
    "analyze_cached",
    "parse_cached",
    "tokenize_cached",
    "try_parse_cached",
    "PROPERTY_NAMES",
    "QueryProperties",
    "extract_properties",
    "extract_statement_properties",
    "render",
    "TSQL",
    "SQLITE",
]
