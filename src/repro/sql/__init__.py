"""SQL substrate: lexer, parser, AST, renderer and property extraction."""

from repro.sql import nodes
from repro.sql.errors import LexError, ParseError, RenderError, SqlError
from repro.sql.lexer import char_count, tokenize, word_count
from repro.sql.parser import parse_query, parse_script, parse_statement, try_parse
from repro.sql.properties import (
    PROPERTY_NAMES,
    QueryProperties,
    extract_properties,
    extract_statement_properties,
)
from repro.sql.render import SQLITE, TSQL, render

__all__ = [
    "nodes",
    "LexError",
    "ParseError",
    "RenderError",
    "SqlError",
    "tokenize",
    "word_count",
    "char_count",
    "parse_query",
    "parse_script",
    "parse_statement",
    "try_parse",
    "PROPERTY_NAMES",
    "QueryProperties",
    "extract_properties",
    "extract_statement_properties",
    "render",
    "TSQL",
    "SQLITE",
]
