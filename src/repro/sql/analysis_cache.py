"""Process-wide memoized lexing, parsing and analysis.

The paper's grid reuses the *same* query texts across all five tasks and
every model, so the pipeline used to re-lex and re-parse each text once
per task x consumer (workload loading, property extraction, semantic
analysis, equivalence checking, explanation prompting...).  This module
makes parse work proportional to the number of *distinct* texts instead:

* :func:`tokenize_cached` — the token stream of a text, computed once;
* :func:`parse_cached` / :func:`try_parse_cached` — the parsed
  statement, computed once (parse/lex failures are memoized too, since
  corrupted texts are re-probed just as often as clean ones);
* :func:`analyze_cached` — a :class:`QueryAnalysis` bundling tokens,
  statement and structural properties, computed once.

All caches are bounded LRUs (:data:`LRU_CAPACITY` entries), safe for a
long-lived process.  Counters (:func:`counters`) expose how many *raw*
lexes/parses actually ran — the regression tests assert one parse per
distinct text for a mutation-free grid run.

**Sharing contract**: cached values are shared across every caller in
the process.  Token tuples and :class:`QueryAnalysis` are immutable;
statements (ASTs) are mutable dataclasses and MUST be treated as frozen
shared values — any transform that mutates must operate on a copy
(:func:`repro.sql.nodes.clone`), which is exactly what the corruption
injectors and equivalence transforms do.
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass
from typing import Optional

from repro.sql import nodes as n
from repro.sql.lexer import Lexer
from repro.sql.parser import Parser
from repro.sql.tokens import Token, TokenKind

#: Bound for each memo table.  Large enough to hold every distinct text
#: a full grid run touches (workload queries + corrupted variants +
#: rewrites), small enough that a pathological caller cannot exhaust
#: memory.
LRU_CAPACITY = 8192


@dataclass
class CacheCounters:
    """How much raw work ran vs how much the memo layer absorbed."""

    raw_tokenizes: int = 0
    raw_parses: int = 0
    tokenize_hits: int = 0
    tokenize_misses: int = 0
    parse_hits: int = 0
    parse_misses: int = 0
    analysis_hits: int = 0
    analysis_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


_raw = CacheCounters()
_lock = threading.Lock()


@dataclass(frozen=True)
class QueryAnalysis:
    """Everything the pipeline derives from one query text, computed once.

    ``tokens`` is None when the text does not lex; ``statement`` is None
    when it does not parse.  ``properties`` always holds a measurement
    (AST-based when parsed, token-scan fallback otherwise), matching
    :func:`repro.sql.properties.extract_properties`.
    """

    text: str
    tokens: Optional[tuple[Token, ...]]
    statement: Optional[n.Statement]
    properties: object  # QueryProperties; untyped to avoid an import cycle

    @property
    def parses(self) -> bool:
        return self.statement is not None


# ---------------------------------------------------------------------------
# Memo tables.  Failures are cached as values: corrupted texts (the
# miss_token corpus is unparseable by design) are re-probed as often as
# clean ones, so "this text does not parse" is as valuable to remember
# as a successful AST.
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=LRU_CAPACITY)
def _tokenize_entry(
    text: str,
) -> tuple[Optional[tuple[Token, ...]], Optional[Exception]]:
    with _lock:
        _raw.raw_tokenizes += 1
    try:
        return tuple(Lexer(text).tokenize()), None
    except Exception as error:
        return None, error


@functools.lru_cache(maxsize=LRU_CAPACITY)
def _parse_entry(
    text: str,
) -> tuple[Optional[n.Statement], Optional[Exception]]:
    with _lock:
        _raw.raw_parses += 1
    # Reuse the memoized token stream: a text that is both analyzed and
    # parsed is lexed exactly once per process.
    tokens, lex_error = _tokenize_entry(text)
    if lex_error is not None:
        return None, lex_error
    try:
        parser = Parser(text, tokens=tokens)
        statement = parser.parse_statement()
        parser._accept_punct(";")
        if parser.current.kind is not TokenKind.EOF:
            raise parser._error("unexpected trailing input")
        return statement, None
    except Exception as error:
        return None, error


@functools.lru_cache(maxsize=LRU_CAPACITY)
def _analysis_entry(text: str) -> QueryAnalysis:
    tokens, _ = _tokenize_entry(text)
    statement, _ = _parse_entry(text)
    # Imported lazily: properties sits on top of this module.
    from repro.sql.properties import (
        extract_statement_properties,
        properties_from_tokens,
    )

    if statement is not None:
        properties = extract_statement_properties(statement, text)
    else:
        properties = properties_from_tokens(text)
    return QueryAnalysis(
        text=text, tokens=tokens, statement=statement, properties=properties
    )


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def tokenize_cached(text: str) -> tuple[Token, ...]:
    """The memoized token stream of *text* (EOF-terminated, immutable).

    Raises the original :class:`~repro.sql.errors.LexError` for
    unlexable text, exactly like :func:`repro.sql.lexer.tokenize`.
    """
    tokens, error = _tokenize_entry(text)
    if error is not None:
        raise error
    return tokens


def parse_cached(text: str) -> n.Statement:
    """The memoized parsed statement of *text*.

    Raises the original parse/lex error for invalid text, exactly like
    :func:`repro.sql.parser.parse_statement`.  The returned AST is a
    **shared value**: callers that mutate must copy first
    (:func:`repro.sql.nodes.clone`).
    """
    statement, error = _parse_entry(text)
    if error is not None:
        raise error
    return statement


def try_parse_cached(text: str) -> Optional[n.Statement]:
    """Memoized :func:`repro.sql.parser.try_parse`: None on any failure.

    The returned AST is a **shared value**: callers that mutate must
    copy first (:func:`repro.sql.nodes.clone`).
    """
    statement, _ = _parse_entry(text)
    return statement


def analyze_cached(text: str) -> QueryAnalysis:
    """The full memoized analysis record for *text*."""
    return _analysis_entry(text)


def properties_cached(text: str):
    """Memoized structural properties of *text* (QueryProperties).

    Shared value — callers must not mutate the returned record.
    """
    return _analysis_entry(text).properties


def counters() -> CacheCounters:
    """A snapshot of raw-work and hit/miss counters for this process."""
    with _lock:
        snapshot = CacheCounters(**_raw.as_dict())
    tok = _tokenize_entry.cache_info()
    par = _parse_entry.cache_info()
    ana = _analysis_entry.cache_info()
    snapshot.tokenize_hits, snapshot.tokenize_misses = tok.hits, tok.misses
    snapshot.parse_hits, snapshot.parse_misses = par.hits, par.misses
    snapshot.analysis_hits, snapshot.analysis_misses = ana.hits, ana.misses
    return snapshot


def reset_caches() -> None:
    """Drop all memoized entries and zero the counters (test isolation)."""
    _analysis_entry.cache_clear()
    _parse_entry.cache_clear()
    _tokenize_entry.cache_clear()
    with _lock:
        _raw.raw_tokenizes = 0
        _raw.raw_parses = 0
