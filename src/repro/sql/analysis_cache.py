"""Process-wide memoized lexing, parsing and analysis.

The paper's grid reuses the *same* query texts across all five tasks and
every model, so the pipeline used to re-lex and re-parse each text once
per task x consumer (workload loading, property extraction, semantic
analysis, equivalence checking, explanation prompting...).  This module
makes parse work proportional to the number of *distinct* texts instead:

* :func:`tokenize_cached` — the token stream of a text, computed once;
* :func:`parse_cached` / :func:`try_parse_cached` — the parsed
  statement, computed once (parse/lex failures are memoized too, since
  corrupted texts are re-probed just as often as clean ones);
* :func:`analyze_cached` — a :class:`QueryAnalysis` bundling tokens,
  statement and structural properties, computed once.

The miss path is deliberately lean: a parse miss runs one scanner pass
feeding the parser directly (no Token objects, no nested lookup through
the tokenize memo), and counters are single atomic increments with no
lock.  The memo tables are bounded LRUs sized to the run —
:data:`LRU_CAPACITY` (8192) by default, grown by :func:`ensure_capacity`
when a workload declares more distinct texts (an 8k LRU *thrashes* at
n=1M: every entry is evicted before its first reuse, so the memo layer
pays its overhead without ever absorbing work).

**Sharing contract**: cached values are shared across every caller in
the process.  Token tuples and :class:`QueryAnalysis` are immutable;
statements (ASTs) are mutable dataclasses and MUST be treated as frozen
shared values — any transform that mutates must operate on a copy
(:func:`repro.sql.nodes.clone`), which is exactly what the corruption
injectors and equivalence transforms do.  Setting
``REPRO_DEBUG_SHARED_AST=1`` (or calling :func:`enable_mutation_guard`)
arms a debug guard that verifies each cached statement's structural
hash on read and raises
:class:`~repro.sql.errors.SharedASTMutationError` when a caller broke
the contract.
"""

from __future__ import annotations

import functools
import itertools
import os
from dataclasses import dataclass
from typing import Callable, Optional

from repro.sql import nodes as n
from repro.sql.errors import SharedASTMutationError
from repro.sql.lexer import tokenize
from repro.sql.nodes import structural_hash
from repro.sql.parser import Parser
from repro.sql.tokens import Token

#: Default (and minimum) bound for each memo table.  Large enough to
#: hold every distinct text a paper-scale grid run touches (workload
#: queries + corrupted variants + rewrites), small enough that a
#: pathological caller cannot exhaust memory.  Workload builders call
#: :func:`ensure_capacity` to grow it for larger runs.
LRU_CAPACITY = 8192

#: Growth headroom applied by :func:`ensure_capacity`: corrupted
#: variants and rewrites add distinct texts beyond the declared
#: instance count.
CAPACITY_HEADROOM = 1.25


class _AtomicCounter:
    """A lock-free thread-safe counter.

    ``itertools.count.__next__`` is a single C call and therefore atomic
    under the GIL, so increments from concurrent callers can never lose
    updates — without taking a lock on the cache miss path.  The value
    is read back from the iterator's repr (``count(42)``), which is also
    a single C call.
    """

    __slots__ = ("_count",)

    def __init__(self) -> None:
        self._count = itertools.count()

    def increment(self) -> None:
        next(self._count)

    def value(self) -> int:
        # repr is "count(N)"; step is always 1 so no ", step" suffix.
        return int(repr(self._count)[6:-1])

    def reset(self) -> None:
        self._count = itertools.count()


@dataclass
class CacheCounters:
    """How much raw work ran vs how much the memo layer absorbed."""

    raw_tokenizes: int = 0
    raw_parses: int = 0
    tokenize_hits: int = 0
    tokenize_misses: int = 0
    parse_hits: int = 0
    parse_misses: int = 0
    analysis_hits: int = 0
    analysis_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


_raw_tokenizes = _AtomicCounter()
_raw_parses = _AtomicCounter()

#: Hits/misses accumulated from memo tables that were since rebuilt by
#: :func:`ensure_capacity` (lru_cache statistics do not survive a
#: rebuild, but provenance must).
_retired = CacheCounters()

_MUTATION_GUARD_ENV = "REPRO_DEBUG_SHARED_AST"
_mutation_guard: bool = os.environ.get(_MUTATION_GUARD_ENV, "") not in ("", "0")


@dataclass(frozen=True)
class QueryAnalysis:
    """Everything the pipeline derives from one query text, computed once.

    ``tokens`` is None when the text does not lex; ``statement`` is None
    when it does not parse.  ``properties`` always holds a measurement
    (AST-based when parsed, token-scan fallback otherwise), matching
    :func:`repro.sql.properties.extract_properties`.
    """

    text: str
    tokens: Optional[tuple[Token, ...]]
    statement: Optional[n.Statement]
    properties: object  # QueryProperties; untyped to avoid an import cycle

    @property
    def parses(self) -> bool:
        return self.statement is not None


# ---------------------------------------------------------------------------
# Memo tables.  Failures are cached as values: corrupted texts (the
# miss_token corpus is unparseable by design) are re-probed as often as
# clean ones, so "this text does not parse" is as valuable to remember
# as a successful AST.
#
# The tables are built by _build_caches so ensure_capacity can rebuild
# them with a larger bound; everything else goes through the module
# globals, which always point at the current generation.
# ---------------------------------------------------------------------------


def _tokenize_uncached(
    text: str,
) -> tuple[Optional[tuple[Token, ...]], Optional[Exception]]:
    _raw_tokenizes.increment()
    try:
        return tuple(tokenize(text)), None
    except Exception as error:
        return None, error


def _parse_uncached(
    text: str,
) -> tuple[Optional[n.Statement], Optional[Exception]]:
    _raw_parses.increment()
    # One scanner pass feeding the parser directly: no Token objects and
    # no nested trip through the tokenize memo (texts that need both an
    # AST and a token stream pay one extra scan, which is far cheaper
    # than materialising Tokens on every parse).
    try:
        parser = Parser(text)
        statement = parser.parse_statement()
        parser.finish_statement()
    except Exception as error:
        return None, error
    if _mutation_guard:
        # Record the pristine shape; reads recompare against it.
        structural_hash(statement)
    return statement, None


def _analysis_uncached(text: str) -> QueryAnalysis:
    tokens, _ = _tokenize_entry(text)
    statement, _ = _parse_entry(text)
    # Imported lazily: properties sits on top of this module.
    from repro.sql.properties import (
        extract_statement_properties,
        properties_from_tokens,
    )

    if statement is not None:
        properties = extract_statement_properties(statement, text)
    else:
        properties = properties_from_tokens(text)
    return QueryAnalysis(
        text=text, tokens=tokens, statement=statement, properties=properties
    )


_capacity = LRU_CAPACITY
_tokenize_entry: Callable
_parse_entry: Callable
_analysis_entry: Callable


def _build_caches(capacity: int) -> None:
    global _tokenize_entry, _parse_entry, _analysis_entry
    _tokenize_entry = functools.lru_cache(maxsize=capacity)(_tokenize_uncached)
    _parse_entry = functools.lru_cache(maxsize=capacity)(_parse_uncached)
    _analysis_entry = functools.lru_cache(maxsize=capacity)(_analysis_uncached)


_build_caches(_capacity)


def capacity() -> int:
    """The current per-table memo capacity."""
    return _capacity


def ensure_capacity(distinct_texts: int) -> int:
    """Grow the memo tables to fit a run of *distinct_texts* texts.

    Sizing the LRU below the working set is worse than useless — at
    n=1M against an 8k table every entry is evicted before its first
    reuse, so the run pays the memo overhead with a ~0% hit rate.
    Workload builders call this before generating/loading texts; the
    bound becomes ``distinct_texts`` plus headroom for corrupted
    variants, never below :data:`LRU_CAPACITY`.  Growing rebuilds the
    tables (dropping entries, which at build start are none); hit/miss
    statistics carry over.  Capacity never shrinks mid-process.

    Returns the capacity now in effect.
    """
    global _capacity
    target = max(LRU_CAPACITY, int(distinct_texts * CAPACITY_HEADROOM))
    if target > _capacity:
        _retire_cache_stats()
        _capacity = target
        _build_caches(target)
    return _capacity


def _retire_cache_stats() -> None:
    """Fold the live tables' hit/miss stats into the retained baseline."""
    tok = _tokenize_entry.cache_info()
    par = _parse_entry.cache_info()
    ana = _analysis_entry.cache_info()
    _retired.tokenize_hits += tok.hits
    _retired.tokenize_misses += tok.misses
    _retired.parse_hits += par.hits
    _retired.parse_misses += par.misses
    _retired.analysis_hits += ana.hits
    _retired.analysis_misses += ana.misses


# ---------------------------------------------------------------------------
# Shared-AST mutation guard
# ---------------------------------------------------------------------------


def enable_mutation_guard(enabled: bool = True) -> None:
    """Arm (or disarm) the shared-AST mutation guard for this process.

    Equivalent to setting ``REPRO_DEBUG_SHARED_AST=1`` before import.
    Statements parsed while the guard is armed record their structural
    hash; every later cache read recomputes the hash and raises
    :class:`~repro.sql.errors.SharedASTMutationError` on mismatch.
    Intended for tests and debugging — the fresh recompute walks the
    tree on every read, which the production hot path must not pay.
    """
    global _mutation_guard
    _mutation_guard = enabled


def mutation_guard_enabled() -> bool:
    return _mutation_guard


def _check_unmutated(statement: Optional[n.Statement]) -> None:
    if statement is None:
        return
    try:
        recorded = statement._shash
    except AttributeError:
        # Parsed before the guard was armed; nothing recorded to check.
        return
    if structural_hash(statement, fresh=True) != recorded:
        raise SharedASTMutationError(
            "a cached statement was mutated in place; cached ASTs are "
            "shared values — clone() before mutating "
            "(repro.sql.nodes.clone)"
        )


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def tokenize_cached(text: str) -> tuple[Token, ...]:
    """The memoized token stream of *text* (EOF-terminated, immutable).

    Raises the original :class:`~repro.sql.errors.LexError` for
    unlexable text, exactly like :func:`repro.sql.lexer.tokenize`.
    """
    tokens, error = _tokenize_entry(text)
    if error is not None:
        raise error
    return tokens


def parse_cached(text: str) -> n.Statement:
    """The memoized parsed statement of *text*.

    Raises the original parse/lex error for invalid text, exactly like
    :func:`repro.sql.parser.parse_statement`.  The returned AST is a
    **shared value**: callers that mutate must copy first
    (:func:`repro.sql.nodes.clone`).
    """
    statement, error = _parse_entry(text)
    if error is not None:
        raise error
    if _mutation_guard:
        _check_unmutated(statement)
    return statement


def try_parse_cached(text: str) -> Optional[n.Statement]:
    """Memoized :func:`repro.sql.parser.try_parse`: None on any failure.

    The returned AST is a **shared value**: callers that mutate must
    copy first (:func:`repro.sql.nodes.clone`).
    """
    statement, _ = _parse_entry(text)
    if _mutation_guard:
        _check_unmutated(statement)
    return statement


def analyze_cached(text: str) -> QueryAnalysis:
    """The full memoized analysis record for *text*."""
    analysis = _analysis_entry(text)
    if _mutation_guard:
        _check_unmutated(analysis.statement)
    return analysis


def properties_cached(text: str):
    """Memoized structural properties of *text* (QueryProperties).

    Shared value — callers must not mutate the returned record.
    """
    return _analysis_entry(text).properties


def counters() -> CacheCounters:
    """A snapshot of raw-work and hit/miss counters for this process.

    Hit/miss statistics span capacity rebuilds; raw counts span the
    whole process (until :func:`clear_caches`).
    """
    snapshot = CacheCounters(
        raw_tokenizes=_raw_tokenizes.value(),
        raw_parses=_raw_parses.value(),
        **{
            key: value
            for key, value in _retired.as_dict().items()
            if key not in ("raw_tokenizes", "raw_parses")
        },
    )
    tok = _tokenize_entry.cache_info()
    par = _parse_entry.cache_info()
    ana = _analysis_entry.cache_info()
    snapshot.tokenize_hits += tok.hits
    snapshot.tokenize_misses += tok.misses
    snapshot.parse_hits += par.hits
    snapshot.parse_misses += par.misses
    snapshot.analysis_hits += ana.hits
    snapshot.analysis_misses += ana.misses
    return snapshot


def clear_caches() -> None:
    """Drop all memoized entries and zero every counter.

    This is the isolation primitive for benchmarks and tests: after a
    call, the next ``*_cached`` lookup is guaranteed to run raw work (so
    "raw" throughput numbers can never be silently served from memo),
    and :func:`counters` restarts from zero.
    """
    _analysis_entry.cache_clear()
    _parse_entry.cache_clear()
    _tokenize_entry.cache_clear()
    for name in vars(_retired):
        setattr(_retired, name, 0)
    _raw_tokenizes.reset()
    _raw_parses.reset()


#: Backwards-compatible alias (pre-PR-6 name).
reset_caches = clear_caches
