"""AST-to-SQL rendering.

``render(node)`` produces canonical single-line SQL.  A ``dialect``
argument selects between the T-SQL flavour the SDSS/SQLShare logs use
(``SELECT TOP n``, ``dbo.`` qualifiers, ``ISNULL``/``LEN``) and a
SQLite-executable flavour (``LIMIT n``, qualifiers stripped, functions
mapped) used by the execution-based equivalence checker.
"""

from __future__ import annotations

from repro.sql import nodes as n
from repro.sql.errors import RenderError

TSQL = "tsql"
SQLITE = "sqlite"

_SQLITE_FUNCTION_MAP = {
    "ISNULL": "IFNULL",
    "LEN": "LENGTH",
    "CEILING": "CEIL",
    "CHARINDEX": "INSTR",
    "GETDATE": "DATE",
    "SUBSTRING": "SUBSTR",
}

_NEEDS_PARENS_IN_BINARY = (n.Binary,)

#: Cap on node reprs embedded in error messages; a deep SELECT tree's
#: repr runs to kilobytes and would drown the useful part.
_REPR_LIMIT = 120


def _node_desc(node: object) -> str:
    """``TypeName: repr`` with the repr truncated for error messages."""
    text = repr(node)
    if len(text) > _REPR_LIMIT:
        text = text[: _REPR_LIMIT - 3] + "..."
    return f"{type(node).__name__}: {text}"


class Renderer:
    """Stateless SQL text producer for a fixed dialect."""

    def __init__(self, dialect: str = TSQL) -> None:
        if dialect not in (TSQL, SQLITE):
            raise RenderError(f"unknown dialect: {dialect!r}")
        self.dialect = dialect

    # -- statements ----------------------------------------------------------

    def render_statement(self, stmt: n.Statement) -> str:
        method = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if method is None:
            raise RenderError(f"cannot render statement {_node_desc(stmt)}")
        return method(stmt)

    def _stmt_SelectStatement(self, stmt: n.SelectStatement) -> str:
        return self.render_query(stmt.query)

    def _stmt_CreateTable(self, stmt: n.CreateTable) -> str:
        name = self._qualified(stmt.schema, stmt.name)
        if stmt.as_query is not None:
            return f"CREATE TABLE {name} AS {self.render_query(stmt.as_query)}"
        columns = ", ".join(self._column_def(col) for col in stmt.columns)
        return f"CREATE TABLE {name} ({columns})"

    def _column_def(self, column: n.ColumnDef) -> str:
        parts = [column.name, column.type_name]
        if column.not_null:
            parts.append("NOT NULL")
        if column.primary_key:
            parts.append("PRIMARY KEY")
        if column.default is not None:
            parts.append(f"DEFAULT {self.render_expr(column.default)}")
        return " ".join(parts)

    def _stmt_CreateView(self, stmt: n.CreateView) -> str:
        return f"CREATE VIEW {stmt.name} AS {self.render_query(stmt.query)}"

    def _stmt_Insert(self, stmt: n.Insert) -> str:
        parts = [f"INSERT INTO {stmt.table}"]
        if stmt.columns:
            parts.append("(" + ", ".join(stmt.columns) + ")")
        if stmt.query is not None:
            parts.append(self.render_query(stmt.query))
        else:
            rows = ", ".join(
                "(" + ", ".join(self.render_expr(v) for v in row) + ")"
                for row in stmt.rows
            )
            parts.append(f"VALUES {rows}")
        return " ".join(parts)

    def _stmt_Update(self, stmt: n.Update) -> str:
        assignments = ", ".join(
            f"{column} = {self.render_expr(expr)}"
            for column, expr in stmt.assignments
        )
        text = f"UPDATE {stmt.table} SET {assignments}"
        if stmt.where is not None:
            text += f" WHERE {self.render_expr(stmt.where)}"
        return text

    def _stmt_Delete(self, stmt: n.Delete) -> str:
        text = f"DELETE FROM {stmt.table}"
        if stmt.where is not None:
            text += f" WHERE {self.render_expr(stmt.where)}"
        return text

    def _stmt_DropTable(self, stmt: n.DropTable) -> str:
        clause = "IF EXISTS " if stmt.if_exists else ""
        return f"DROP TABLE {clause}{stmt.name}"

    def _stmt_Declare(self, stmt: n.Declare) -> str:
        return f"DECLARE {stmt.name} {stmt.type_name}"

    def _stmt_SetVariable(self, stmt: n.SetVariable) -> str:
        return f"SET {stmt.name} = {self.render_expr(stmt.value)}"

    def _stmt_ExecProcedure(self, stmt: n.ExecProcedure) -> str:
        name = self._qualified(stmt.schema, stmt.name)
        if not stmt.args:
            return f"EXEC {name}"
        args = ", ".join(self.render_expr(arg) for arg in stmt.args)
        return f"EXEC {name} {args}"

    def _stmt_Waitfor(self, stmt: n.Waitfor) -> str:
        return f"WAITFOR DELAY '{stmt.delay}'"

    # -- queries -------------------------------------------------------------

    def render_query(self, query: n.Query) -> str:
        parts = []
        if query.ctes:
            ctes = ", ".join(self._cte(cte) for cte in query.ctes)
            parts.append(f"WITH {ctes}")
        parts.append(self._body(query.body))
        return " ".join(parts)

    def _cte(self, cte: n.CommonTableExpr) -> str:
        columns = f" ({', '.join(cte.columns)})" if cte.columns else ""
        return f"{cte.name}{columns} AS ({self.render_query(cte.query)})"

    def _body(self, body: n.QueryBody) -> str:
        if isinstance(body, n.SelectCore):
            return self._select_core(body)
        if isinstance(body, n.Compound):
            op = body.op + (" ALL" if body.all else "")
            text = f"{self._body(body.left)} {op} {self._body(body.right)}"
            if body.order_by:
                items = ", ".join(self._order_item(i) for i in body.order_by)
                text += f" ORDER BY {items}"
            if body.limit is not None:
                text += f" LIMIT {body.limit}"
            return text
        raise RenderError(f"cannot render body {_node_desc(body)}")

    def _select_core(self, core: n.SelectCore) -> str:
        parts = ["SELECT"]
        if core.distinct:
            parts.append("DISTINCT")
        top, limit = core.top, core.limit
        if top is not None and self.dialect == SQLITE:
            # SQLite has no TOP; fold into LIMIT (TOP wins when both given).
            limit, top = top, None
        if top is not None:
            parts.append(f"TOP {top}")
        parts.append(", ".join(self._select_item(item) for item in core.items))
        if core.from_items:
            tables = ", ".join(self._table_ref(ref) for ref in core.from_items)
            parts.append(f"FROM {tables}")
        if core.where is not None:
            parts.append(f"WHERE {self.render_expr(core.where)}")
        if core.group_by:
            exprs = ", ".join(self.render_expr(e) for e in core.group_by)
            parts.append(f"GROUP BY {exprs}")
        if core.having is not None:
            parts.append(f"HAVING {self.render_expr(core.having)}")
        if core.order_by:
            items = ", ".join(self._order_item(item) for item in core.order_by)
            parts.append(f"ORDER BY {items}")
        if limit is not None:
            parts.append(f"LIMIT {limit}")
            if core.offset is not None:
                parts.append(f"OFFSET {core.offset}")
        return " ".join(parts)

    def _select_item(self, item: n.SelectItem) -> str:
        text = self.render_expr(item.expr)
        if item.alias:
            text += f" AS {item.alias}"
        return text

    def _order_item(self, item: n.OrderItem) -> str:
        text = self.render_expr(item.expr)
        if item.direction:
            text += f" {item.direction}"
        return text

    def _table_ref(self, ref: n.TableRef) -> str:
        if isinstance(ref, n.NamedTable):
            name = self._qualified(ref.schema, ref.name)
            return f"{name} AS {ref.alias}" if ref.alias else name
        if isinstance(ref, n.DerivedTable):
            return f"({self.render_query(ref.query)}) AS {ref.alias}"
        if isinstance(ref, n.Join):
            left = self._table_ref(ref.left)
            right = self._table_ref(ref.right)
            keyword = "JOIN" if ref.kind == "INNER" else f"{ref.kind} JOIN"
            text = f"{left} {keyword} {right}"
            if ref.condition is not None:
                text += f" ON {self.render_expr(ref.condition)}"
            return text
        raise RenderError(f"cannot render table ref {_node_desc(ref)}")

    def _qualified(self, schema: str | None, name: str) -> str:
        if schema and self.dialect == SQLITE:
            # SQLite has no schemas; drop dbo-style qualifiers.
            return name
        return f"{schema}.{name}" if schema else name

    # -- expressions ---------------------------------------------------------

    def render_expr(self, expr: n.Expr) -> str:
        method = getattr(self, f"_expr_{type(expr).__name__}", None)
        if method is None:
            raise RenderError(f"cannot render expression {_node_desc(expr)}")
        return method(expr)

    def _expr_Literal(self, expr: n.Literal) -> str:
        if expr.kind == "string":
            escaped = str(expr.value).replace("'", "''")
            return f"'{escaped}'"
        if expr.kind == "null":
            return "NULL"
        if expr.kind == "boolean":
            if self.dialect == SQLITE:
                return "1" if expr.value else "0"
            return "TRUE" if expr.value else "FALSE"
        return expr.text or str(expr.value)

    def _expr_ColumnRef(self, expr: n.ColumnRef) -> str:
        return f"{expr.table}.{expr.name}" if expr.table else expr.name

    def _expr_Star(self, expr: n.Star) -> str:
        return f"{expr.table}.*" if expr.table else "*"

    def _expr_Variable(self, expr: n.Variable) -> str:
        return expr.name

    def _expr_FuncCall(self, expr: n.FuncCall) -> str:
        name = expr.name
        if self.dialect == SQLITE:
            name = _SQLITE_FUNCTION_MAP.get(name.upper(), name)
            prefix = ""
        else:
            prefix = f"{expr.schema}." if expr.schema else ""
        inner = ", ".join(self.render_expr(arg) for arg in expr.args)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{prefix}{name}({inner})"

    def _expr_Unary(self, expr: n.Unary) -> str:
        operand = self.render_expr(expr.operand)
        if expr.op == "NOT":
            if isinstance(expr.operand, n.Binary):
                return f"NOT ({operand})"
            return f"NOT {operand}"
        if isinstance(expr.operand, n.Binary):
            return f"{expr.op}({operand})"
        return f"{expr.op}{operand}"

    def _expr_Binary(self, expr: n.Binary) -> str:
        left = self._operand(expr.left, expr.op, is_right=False)
        right = self._operand(expr.right, expr.op, is_right=True)
        return f"{left} {expr.op} {right}"

    def _operand(self, operand: n.Expr, parent_op: str, is_right: bool) -> str:
        text = self.render_expr(operand)
        if isinstance(operand, n.Binary) and _needs_parens(
            operand.op, parent_op, is_right
        ):
            return f"({text})"
        return text

    def _expr_Between(self, expr: n.Between) -> str:
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"{self.render_expr(expr.expr)} {keyword} "
            f"{self.render_expr(expr.low)} AND {self.render_expr(expr.high)}"
        )

    def _expr_InList(self, expr: n.InList) -> str:
        keyword = "NOT IN" if expr.negated else "IN"
        items = ", ".join(self.render_expr(item) for item in expr.items)
        return f"{self.render_expr(expr.expr)} {keyword} ({items})"

    def _expr_InSubquery(self, expr: n.InSubquery) -> str:
        keyword = "NOT IN" if expr.negated else "IN"
        return (
            f"{self.render_expr(expr.expr)} {keyword} "
            f"({self.render_query(expr.query)})"
        )

    def _expr_Exists(self, expr: n.Exists) -> str:
        keyword = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"{keyword} ({self.render_query(expr.query)})"

    def _expr_Like(self, expr: n.Like) -> str:
        keyword = "NOT LIKE" if expr.negated else "LIKE"
        return (
            f"{self.render_expr(expr.expr)} {keyword} "
            f"{self.render_expr(expr.pattern)}"
        )

    def _expr_IsNull(self, expr: n.IsNull) -> str:
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{self.render_expr(expr.expr)} {keyword}"

    def _expr_Case(self, expr: n.Case) -> str:
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(self.render_expr(expr.operand))
        for condition, result in expr.whens:
            parts.append(
                f"WHEN {self.render_expr(condition)} THEN {self.render_expr(result)}"
            )
        if expr.default is not None:
            parts.append(f"ELSE {self.render_expr(expr.default)}")
        parts.append("END")
        return " ".join(parts)

    def _expr_ScalarSubquery(self, expr: n.ScalarSubquery) -> str:
        return f"({self.render_query(expr.query)})"

    def _expr_Cast(self, expr: n.Cast) -> str:
        return f"CAST({self.render_expr(expr.expr)} AS {expr.type_name})"


_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 3,
    "<>": 3,
    "!=": 3,
    "<": 3,
    ">": 3,
    "<=": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "||": 4,
    "*": 5,
    "/": 5,
    "%": 5,
}


def _needs_parens(child_op: str, parent_op: str, is_right: bool) -> bool:
    """Decide whether a child binary expression must be parenthesised."""
    child = _PRECEDENCE.get(child_op, 6)
    parent = _PRECEDENCE.get(parent_op, 6)
    if child < parent:
        return True
    if child == parent:
        # Keep explicit grouping for mixed/equal precedence on the right
        # (subtraction/division are not associative) and for OR-under-AND
        # clarity.  Same-op AND/OR chains stay flat.
        if child_op in ("AND", "OR") and child_op == parent_op:
            return False
        return is_right or child_op in ("-", "/", "%")
    return False


def render(node: n.Node, dialect: str = TSQL) -> str:
    """Render a statement, query, table ref or expression to SQL text."""
    renderer = Renderer(dialect)
    if isinstance(node, n.Script):
        return "; ".join(
            renderer.render_statement(stmt) for stmt in node.statements
        )
    if isinstance(node, n.Statement):
        return renderer.render_statement(node)
    if isinstance(node, n.Query):
        return renderer.render_query(node)
    if isinstance(node, (n.SelectCore, n.Compound)):
        return renderer._body(node)
    if isinstance(node, n.TableRef):
        return renderer._table_ref(node)
    if isinstance(node, n.Expr):
        return renderer.render_expr(node)
    raise RenderError(f"cannot render node {_node_desc(node)}")
