"""The semantics-preserving rewrite catalog.

Nine transforms across eight families, each a mutation function over the
shared transform layer (:mod:`repro.sql.transform`): it receives an
already-cloned statement, mutates it in place, and returns a detail
string — or ``None`` when its structural precondition fails.  Every
transform preserves the result bag on all generated database instances
(the row generator is NULL-free by construction, which is what licenses
``= NULL`` → ``IS NULL``), and the property suite verifies exactly that
by execution on seeded SQLite instances per family.

Transforms keep output ASTs in parser normal form, so
``parse(render(t(ast))) == t(ast)`` holds exactly — the same invariant
the synthetic generator upholds — and chains of transforms compose
without drift.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.schema.model import Schema
from repro.sql import nodes as n
from repro.sql.keywords import AGGREGATE_FUNCTIONS
from repro.sql.render import render
from repro.sql.transform import (
    and_leaves,
    apply_typed_transform,
    named_tables,
    outer_core,
    qualify_core_refs,
    rebuild_and,
    replace_expr,
    sample_order,
    select_cores,
    walk,
)

# -- family names ------------------------------------------------------------

OR_IN = "or-in"
NULL_NORMALIZE = "null-normalize"
STAR_EXPANSION = "star-expansion"
SUBQUERY_CTE = "subquery-cte"
SETOP_EXISTS = "setop-exists"
PUSHDOWN = "pushdown"
DISTINCT_ELIM = "distinct-elim"
CONST_FOLD = "const-fold"


@dataclass(frozen=True)
class RewriteTransform:
    """One catalog entry: a named, family-tagged mutation function."""

    name: str
    family: str
    description: str
    fn: Callable[
        [n.Statement, Optional[Schema], random.Random], Optional[str]
    ] = field(compare=False)


@dataclass(frozen=True)
class RewriteStep:
    """One applied chain step (for provenance and per-family reporting)."""

    name: str
    family: str
    detail: str


@dataclass
class RewriteChain:
    """A multi-step rewrite: original text, final text, and the steps.

    ``statement`` is the AST ``text`` was rendered from, so downstream
    consumers (the execution checker, the cost model) never re-parse.
    """

    text: str
    original_text: str
    steps: tuple[RewriteStep, ...]
    statement: n.Statement

    @property
    def families(self) -> tuple[str, ...]:
        return tuple(step.family for step in self.steps)

    @property
    def chain_label(self) -> str:
        """The per-family reporting key: families joined in step order."""
        return "+".join(step.family for step in self.steps)


# ---------------------------------------------------------------------------
# Transform implementations
# ---------------------------------------------------------------------------


def _or_leaves(expr: n.Expr) -> list[n.Expr]:
    if isinstance(expr, n.Binary) and expr.op == "OR":
        return _or_leaves(expr.left) + _or_leaves(expr.right)
    return [expr]


def _maximal_or_roots(statement: n.Statement) -> list[n.Binary]:
    """OR nodes that are not themselves a branch of a larger OR tree."""
    ors = [
        node
        for node in walk(statement)
        if isinstance(node, n.Binary) and node.op == "OR"
    ]
    branch_ids = set()
    for node in ors:
        for side in (node.left, node.right):
            if isinstance(side, n.Binary) and side.op == "OR":
                branch_ids.add(id(side))
    return [node for node in ors if id(node) not in branch_ids]


def _common_eq_column(leaves: list[n.Expr]) -> Optional[n.ColumnRef]:
    """The shared left-hand column when every leaf is ``col = literal``."""
    key: Optional[tuple[str, str]] = None
    first: Optional[n.ColumnRef] = None
    for leaf in leaves:
        if not (
            isinstance(leaf, n.Binary)
            and leaf.op == "="
            and isinstance(leaf.left, n.ColumnRef)
            and isinstance(leaf.right, n.Literal)
            and leaf.right.kind in ("number", "string")
        ):
            return None
        leaf_key = (leaf.left.name.lower(), (leaf.left.table or "").lower())
        if key is None:
            key, first = leaf_key, leaf.left
        elif leaf_key != key:
            return None
    return first


def _t_or_chain_to_in(
    statement: n.Statement, schema: Optional[Schema], rng: random.Random
) -> Optional[str]:
    """``c = v1 OR c = v2 [OR ...]`` → ``c IN (v1, v2, ...)``."""
    candidates = []
    for root in _maximal_or_roots(statement):
        leaves = _or_leaves(root)
        if len(leaves) >= 2 and _common_eq_column(leaves) is not None:
            candidates.append((root, leaves))
    if not candidates:
        return None
    root, leaves = rng.choice(candidates)
    column = _common_eq_column(leaves)
    in_list = n.InList(
        expr=column, items=[leaf.right for leaf in leaves]
    )
    replace_expr(statement, root, in_list)
    return f"OR chain of {len(leaves)} equalities on {column.name} collapsed to IN"


def _t_eq_null_to_is_null(
    statement: n.Statement, schema: Optional[Schema], rng: random.Random
) -> Optional[str]:
    """``expr = NULL`` → ``expr IS NULL``.

    ``= NULL`` never matches (the comparison yields NULL); ``IS NULL``
    matches exactly the NULL rows — and generated instances are NULL-free
    by construction (:mod:`repro.data.generator`), so both predicates are
    constant-false on every instance the checker executes.  Only ``=`` is
    rewritten: ``<> NULL`` → ``IS NOT NULL`` would flip from empty to
    everything.
    """
    candidates = []
    for node in walk(statement):
        if isinstance(node, n.Binary) and node.op == "=":
            if isinstance(node.right, n.Literal) and node.right.kind == "null":
                candidates.append((node, node.left))
            elif isinstance(node.left, n.Literal) and node.left.kind == "null":
                candidates.append((node, node.right))
    if not candidates:
        return None
    target, operand = rng.choice(candidates)
    replace_expr(statement, target, n.IsNull(expr=operand))
    return "comparison with NULL normalised to IS NULL"


def _t_select_star_expand(
    statement: n.Statement, schema: Optional[Schema], rng: random.Random
) -> Optional[str]:
    """``SELECT *`` / ``SELECT t.*`` → the explicit schema column list."""
    if schema is None:
        return None
    core = outer_core(statement)
    if core is None:
        return None
    if any(isinstance(node, n.DerivedTable) for ref in core.from_items for node in walk(ref)):
        return None  # schema does not know derived-table output columns
    sources = [
        (table.alias or table.name, schema.table(table.name))
        for table in named_tables(core)
    ]
    if not sources or any(table is None for _, table in sources):
        return None
    star_items = [
        (index, item)
        for index, item in enumerate(core.items)
        if isinstance(item.expr, n.Star)
    ]
    if not star_items:
        return None
    index, item = rng.choice(star_items)
    star = item.expr
    qualify = len(sources) > 1
    if star.table is not None:
        matches = [
            (label, table)
            for label, table in sources
            if label.lower() == star.table.lower()
        ]
        if not matches:
            return None
        label, table = matches[0]
        expansion = [
            n.SelectItem(expr=n.ColumnRef(name=column.name, table=label))
            for column in table.columns
        ]
    else:
        expansion = [
            n.SelectItem(
                expr=n.ColumnRef(
                    name=column.name, table=label if qualify else None
                )
            )
            for label, table in sources
            for column in table.columns
        ]
    core.items[index : index + 1] = expansion
    return f"* expanded to {len(expansion)} explicit columns"


def _hoistable(query: n.Query) -> bool:
    """Uncorrelated single-core subquery safe to hoist into a CTE."""
    if query.ctes:
        return False
    if not isinstance(query.body, n.SelectCore):
        return False
    if len(query.body.items) != 1 or isinstance(query.body.items[0].expr, n.Star):
        return False
    inner_labels = {
        (table.alias or table.name).lower()
        for table in walk(query)
        if isinstance(table, n.NamedTable)
    }
    for ref in walk(query):
        if isinstance(ref, n.ColumnRef) and ref.table is not None:
            if ref.table.lower() not in inner_labels:
                return False  # correlated: references an outer alias
    return True


def _t_in_subquery_to_cte(
    statement: n.Statement, schema: Optional[Schema], rng: random.Random
) -> Optional[str]:
    """Hoist one uncorrelated IN-subquery into a named CTE."""
    if not isinstance(statement, n.SelectStatement):
        return None
    candidates = [
        node
        for node in walk(statement)
        if isinstance(node, n.InSubquery) and _hoistable(node.query)
    ]
    if not candidates:
        return None
    target = rng.choice(candidates)
    taken = {cte.name.lower() for cte in statement.query.ctes}
    taken |= {
        table.name.lower()
        for table in walk(statement)
        if isinstance(table, n.NamedTable)
    }
    if schema is not None:
        taken |= {name.lower() for name in schema.table_names}
    name, counter = "rewrite_cte", 0
    while name.lower() in taken:
        counter += 1
        name = f"rewrite_cte_{counter}"
    column = "member_value"
    statement.query.ctes.append(
        n.CommonTableExpr(name=name, query=target.query, columns=[column])
    )
    target.query = n.Query(
        body=n.SelectCore(
            items=[n.SelectItem(expr=n.ColumnRef(name=column))],
            from_items=[n.NamedTable(name=name)],
        )
    )
    return f"IN-subquery hoisted into CTE {name!r}"


def _plain_single_table_core(core: n.SelectCore) -> Optional[n.NamedTable]:
    """The core's sole named table when the core is set-op-branch simple."""
    if core.group_by or core.having is not None or core.order_by:
        return None
    if core.distinct or core.top is not None or core.limit is not None:
        return None
    if len(core.from_items) != 1 or not isinstance(core.from_items[0], n.NamedTable):
        return None
    if any(not isinstance(item.expr, n.ColumnRef) for item in core.items):
        return None
    if any(
        isinstance(node, n.FuncCall)
        and node.name.upper() in AGGREGATE_FUNCTIONS
        for node in walk(core)
    ):
        return None
    return core.from_items[0]


def _fresh_label(base: str, taken: set[str]) -> str:
    label, counter = base, 0
    while label.lower() in taken:
        counter += 1
        label = f"{base}{counter}"
    taken.add(label.lower())
    return label


def _setop_to_exists(statement: n.Statement, rng: random.Random, op: str) -> Optional[str]:
    """INTERSECT → EXISTS / EXCEPT → NOT EXISTS over matching simple cores.

    ``L op R`` with set semantics equals ``SELECT DISTINCT cols FROM L
    WHERE [NOT] EXISTS (matching R row)`` — row matching is plain ``=``
    per column, sound on the NULL-free generated instances.
    """
    if not isinstance(statement, n.SelectStatement):
        return None
    body = statement.query.body
    if not isinstance(body, n.Compound) or body.op != op or body.all:
        return None
    if body.order_by or body.limit is not None:
        return None
    left, right = body.left, body.right
    if not isinstance(left, n.SelectCore) or not isinstance(right, n.SelectCore):
        return None
    left_table = _plain_single_table_core(left)
    right_table = _plain_single_table_core(right)
    if left_table is None or right_table is None:
        return None
    if len(left.items) != len(right.items):
        return None
    taken = {
        (table.alias or table.name).lower()
        for table in walk(statement)
        if isinstance(table, n.NamedTable)
    }
    left_label = left_table.alias or _fresh_label("lhs", taken)
    right_label = right_table.alias or _fresh_label("rhs", taken)
    left_table.alias = left_label
    right_table.alias = right_label
    qualify_core_refs(left, left_label)
    qualify_core_refs(right, right_label)
    correlations: list[n.Expr] = [
        n.Binary(
            op="=",
            left=n.clone(right_item.expr),
            right=n.clone(left_item.expr),
        )
        for left_item, right_item in zip(left.items, right.items)
    ]
    inner_leaves = ([right.where] if right.where is not None else []) + correlations
    inner_core = n.SelectCore(
        items=[n.SelectItem(expr=n.Literal(value=1, kind="number", text="1"))],
        from_items=[right_table],
        where=rebuild_and(inner_leaves),
    )
    # Parser normal form for "NOT EXISTS" is a NOT-unary over a plain
    # EXISTS (the renderer emits the same text for Exists(negated=True),
    # but reparsing would not reproduce that tree).
    exists: n.Expr = n.Exists(query=n.Query(body=inner_core))
    if op == "EXCEPT":
        exists = n.Unary(op="NOT", operand=exists)
    left.where = (
        exists
        if left.where is None
        else n.Binary(op="AND", left=left.where, right=exists)
    )
    left.distinct = True
    statement.query.body = left
    keyword = "NOT EXISTS" if op == "EXCEPT" else "EXISTS"
    return f"{op} branch folded into a correlated {keyword} predicate"


def _t_intersect_to_exists(
    statement: n.Statement, schema: Optional[Schema], rng: random.Random
) -> Optional[str]:
    return _setop_to_exists(statement, rng, "INTERSECT")


def _t_except_to_not_exists(
    statement: n.Statement, schema: Optional[Schema], rng: random.Random
) -> Optional[str]:
    return _setop_to_exists(statement, rng, "EXCEPT")


def _pushable(leaf: n.Expr, group_keys: set[tuple[str, str]]) -> bool:
    """A HAVING conjunct that only constrains grouping columns."""
    refs = 0
    for node in walk(leaf):
        if isinstance(node, (n.FuncCall, n.InSubquery, n.Exists, n.ScalarSubquery)):
            return False
        if isinstance(node, n.ColumnRef):
            refs += 1
            key = (node.name.lower(), (node.table or "").lower())
            if key not in group_keys:
                return False
    return refs > 0


def _t_having_pushdown(
    statement: n.Statement, schema: Optional[Schema], rng: random.Random
) -> Optional[str]:
    """Move a grouping-column HAVING conjunct into WHERE.

    Rows in a group share the group key by definition, so filtering
    groups on a key predicate equals filtering rows before aggregation.
    """
    candidates = []
    for core in select_cores(statement):
        if not core.group_by or core.having is None:
            continue
        group_keys = {
            (expr.name.lower(), (expr.table or "").lower())
            for expr in core.group_by
            if isinstance(expr, n.ColumnRef)
        }
        leaves = and_leaves(core.having)
        movable = [leaf for leaf in leaves if _pushable(leaf, group_keys)]
        if movable:
            candidates.append((core, leaves, movable))
    if not candidates:
        return None
    core, leaves, movable = rng.choice(candidates)
    victim = rng.choice(movable)
    core.having = rebuild_and([leaf for leaf in leaves if leaf is not victim])
    core.where = (
        victim
        if core.where is None
        else n.Binary(op="AND", left=core.where, right=victim)
    )
    return f"HAVING predicate {render(victim)!r} pushed down into WHERE"


def _t_subquery_distinct_elim(
    statement: n.Statement, schema: Optional[Schema], rng: random.Random
) -> Optional[str]:
    """Drop DISTINCT inside IN/EXISTS subqueries (membership is set-based)."""
    candidates = []
    for node in walk(statement):
        if isinstance(node, (n.InSubquery, n.Exists)):
            body = node.query.body
            if (
                isinstance(body, n.SelectCore)
                and body.distinct
                and body.top is None
                and body.limit is None
            ):
                candidates.append(body)
    if not candidates:
        return None
    rng.choice(candidates).distinct = False
    return "redundant DISTINCT dropped from a membership subquery"


_FOLDS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


def _t_fold_constant_arith(
    statement: n.Statement, schema: Optional[Schema], rng: random.Random
) -> Optional[str]:
    """Fold integer literal arithmetic: ``10 + 5`` → ``15``.

    Restricted to non-negative integer results so the folded literal
    stays in parser normal form (negative literals parse as unary minus).
    """
    folded = []
    for node in walk(statement):
        if (
            isinstance(node, n.Binary)
            and node.op in _FOLDS
            and isinstance(node.left, n.Literal)
            and node.left.kind == "number"
            and isinstance(node.left.value, int)
            and isinstance(node.right, n.Literal)
            and node.right.kind == "number"
            and isinstance(node.right.value, int)
        ):
            value = _FOLDS[node.op](node.left.value, node.right.value)
            if value >= 0:
                folded.append((node, value))
    if not folded:
        return None
    target, value = rng.choice(folded)
    original = f"{target.left.text} {target.op} {target.right.text}"
    replace_expr(
        statement, target, n.Literal(value=value, kind="number", text=str(value))
    )
    return f"constant expression {original} folded to {value}"


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------

#: The catalog, in presentation order.  Every entry is validated by
#: execution in the property suite (tests/rewrite/).
CATALOG: tuple[RewriteTransform, ...] = (
    RewriteTransform(
        "or-chain-to-in",
        OR_IN,
        "Collapse an OR chain of equalities on one column into IN",
        _t_or_chain_to_in,
    ),
    RewriteTransform(
        "eq-null-to-is-null",
        NULL_NORMALIZE,
        "Normalise = NULL comparisons to IS NULL",
        _t_eq_null_to_is_null,
    ),
    RewriteTransform(
        "select-star-expand",
        STAR_EXPANSION,
        "Expand SELECT * to the explicit schema column list",
        _t_select_star_expand,
    ),
    RewriteTransform(
        "in-subquery-to-cte",
        SUBQUERY_CTE,
        "Hoist an uncorrelated IN-subquery into a named CTE",
        _t_in_subquery_to_cte,
    ),
    RewriteTransform(
        "intersect-to-exists",
        SETOP_EXISTS,
        "Fold INTERSECT into a correlated EXISTS over the left branch",
        _t_intersect_to_exists,
    ),
    RewriteTransform(
        "except-to-not-exists",
        SETOP_EXISTS,
        "Fold EXCEPT into a correlated NOT EXISTS over the left branch",
        _t_except_to_not_exists,
    ),
    RewriteTransform(
        "having-pushdown",
        PUSHDOWN,
        "Push a grouping-column HAVING predicate down into WHERE",
        _t_having_pushdown,
    ),
    RewriteTransform(
        "subquery-distinct-elim",
        DISTINCT_ELIM,
        "Drop redundant DISTINCT inside IN/EXISTS subqueries",
        _t_subquery_distinct_elim,
    ),
    RewriteTransform(
        "fold-constant-arith",
        CONST_FOLD,
        "Fold integer literal arithmetic into a single literal",
        _t_fold_constant_arith,
    ),
)

_BY_NAME: dict[str, RewriteTransform] = {t.name: t for t in CATALOG}

#: Families in catalog order (deduplicated; setop-exists has two entries).
REWRITE_FAMILIES: tuple[str, ...] = tuple(dict.fromkeys(t.family for t in CATALOG))


def transform(name: str) -> RewriteTransform:
    """Look up one catalog entry by name (KeyError on unknown names)."""
    entry = _BY_NAME.get(name)
    if entry is None:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown rewrite transform {name!r} (have: {known})")
    return entry


def transforms_for(
    families: Optional[Sequence[str]] = None,
) -> tuple[RewriteTransform, ...]:
    """Catalog entries restricted to *families* (all when None/empty)."""
    if not families:
        return CATALOG
    wanted = set(families)
    unknown = wanted - set(REWRITE_FAMILIES)
    if unknown:
        known = ", ".join(REWRITE_FAMILIES)
        raise ValueError(
            f"unknown rewrite families {sorted(unknown)!r} (have: {known})"
        )
    return tuple(t for t in CATALOG if t.family in wanted)


def catalog_fingerprint(families: Optional[Sequence[str]] = None) -> str:
    """Deterministic identity of the (selected) catalog for provenance.

    Hashed into engine cache keys and recorded on RunRecords so that a
    changed catalog can never silently reuse stale rewrite datasets.
    """
    lines = [
        f"{t.name}|{t.family}|{t.description}" for t in transforms_for(families)
    ]
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def apply_rewrite(
    statement: n.Statement,
    schema: Optional[Schema],
    rng: random.Random,
    name: Optional[str] = None,
    families: Optional[Sequence[str]] = None,
    original_text: Optional[str] = None,
):
    """Apply one catalog transform to a copy of *statement*.

    With *name* the specific transform is tried; otherwise all (family-
    filtered) transforms are tried in seeded random order.  Returns the
    :class:`~repro.sql.transform.AppliedTransform` or None.
    """
    selected = transforms_for(families)
    registry = {t.name: t.fn for t in selected}
    if name is not None:
        if name not in _BY_NAME:
            transform(name)  # raises with the known-names message
        order = [name]
        registry = {name: _BY_NAME[name].fn}
    else:
        order = sample_order(rng, [t.name for t in selected])
    return apply_typed_transform(
        statement,
        schema,
        rng,
        registry,
        order,
        original_text=original_text,
        kind="rewrite",
    )


def apply_rewrite_chain(
    statement: n.Statement,
    schema: Optional[Schema],
    rng: random.Random,
    max_steps: int = 2,
    families: Optional[Sequence[str]] = None,
    original_text: Optional[str] = None,
) -> Optional[RewriteChain]:
    """Chain up to *max_steps* catalog transforms on a copy of *statement*.

    Each step applies to the previous step's output tree, so the chain's
    final text is a genuine multi-step rewrite of the original — the
    "hard positive" the rewrite_equivalence task feeds to models.
    Returns None when no transform applies at all.
    """
    if original_text is None:
        original_text = render(statement)
    current = statement
    current_text = original_text
    steps: list[RewriteStep] = []
    for _ in range(max(1, max_steps)):
        applied = apply_rewrite(
            current, schema, rng, families=families, original_text=current_text
        )
        if applied is None:
            break
        assert applied.statement is not None  # catalog fns always mutate the tree
        steps.append(
            RewriteStep(
                name=applied.name,
                family=_BY_NAME[applied.name].family,
                detail=applied.detail,
            )
        )
        current = applied.statement
        current_text = applied.text
    if not steps:
        return None
    return RewriteChain(
        text=current_text,
        original_text=original_text,
        steps=tuple(steps),
        statement=current,
    )
