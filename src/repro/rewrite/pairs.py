"""Labeled rewrite-pair generation for the rewrite tasks.

Positives are **multi-step rewrite chains** from the catalog
(:mod:`repro.rewrite.catalog`) — hard positives, since each chain
composes several structural changes while preserving semantics.
Negatives reuse the counter-transform pool, so the two classes stay
superficially similar.  Both polarities are execution-verified on
generated SQLite instances before being labeled, exactly like the
query_equiv pair generator.

Because the synthetic grammar never emits some rewritable constructs
(``= NULL``, OR chains of equalities, literal arithmetic, ``SELECT *``),
an *opportunity seeding* pass first plants such constructs into a copy
of the base query — seeded, type-correct against the schema, and part of
the pair's ``first_text`` — so every catalog family gets exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.equivalence.checker import EquivalenceChecker
from repro.equivalence.counter_transforms import apply_non_equivalence_transform
from repro.equivalence.pairs import (
    CHECKER_SETTINGS,
    SOUND_BY_CONSTRUCTION,
    eligible_for_pairing,
)
from repro.rewrite.catalog import (
    CONST_FOLD,
    DISTINCT_ELIM,
    NULL_NORMALIZE,
    OR_IN,
    PUSHDOWN,
    STAR_EXPANSION,
    apply_rewrite_chain,
    transforms_for,
)
from repro.schema.model import ColType, Schema, Table
from repro.sql import nodes as n
from repro.sql.render import render
from repro.sql.transform import (
    clone,
    named_tables,
    sample_order,
    select_cores,
    walk,
)
from repro.util import derive_rng
from repro.workloads.base import Workload


@dataclass
class RewritePair:
    """A labeled (original, rewritten) query pair with chain provenance."""

    pair_id: str
    workload: str
    schema_name: str
    source_query_id: str
    first_text: str
    second_text: str
    equivalent: bool
    pair_type: str  # "+"-joined families for chains, counter type otherwise
    transforms: tuple[str, ...] = ()
    families: tuple[str, ...] = ()
    seeded: tuple[str, ...] = ()
    detail: str = ""


# ---------------------------------------------------------------------------
# Opportunity seeding
# ---------------------------------------------------------------------------


def _base_core(statement: n.Statement) -> Optional[n.SelectCore]:
    """The core seeders extend: the outer core, or a compound's left arm."""
    if not isinstance(statement, n.SelectStatement):
        return None
    body = statement.query.body
    if isinstance(body, n.SelectCore):
        return body
    if isinstance(body, n.Compound) and isinstance(body.left, n.SelectCore):
        return body.left
    return None


def _core_sources(
    core: n.SelectCore, schema: Schema
) -> list[tuple[str, Table]]:
    """``(label, schema table)`` pairs for the core's resolvable sources."""
    sources = []
    for table in named_tables(core):
        resolved = schema.table(table.name)
        if resolved is not None:
            sources.append((table.alias or table.name, resolved))
    return sources


def _append_where(core: n.SelectCore, predicate: n.Expr) -> None:
    core.where = (
        predicate
        if core.where is None
        else n.Binary(op="AND", left=core.where, right=predicate)
    )


def _ref(label: str, column: str, qualify: bool) -> n.ColumnRef:
    return n.ColumnRef(name=column, table=label if qualify else None)


def _int_literal(value: int) -> n.Literal:
    return n.Literal(value=value, kind="number", text=str(value))


def _number_literal(value) -> n.Expr:
    """A number literal in parser normal form.

    The parser derives ``-27.07`` as unary minus over a positive
    literal, so seeded negative values (SDSS declination ranges below
    zero) must be built the same way or ``parse(render(ast)) == ast``
    breaks for every statement they end up in.
    """
    if value < 0:
        positive = -value
        return n.Unary(
            op="-",
            operand=n.Literal(
                value=positive, kind="number", text=str(positive)
            ),
        )
    return n.Literal(value=value, kind="number", text=str(value))


def _seed_or_chain(
    statement: n.Statement, schema: Schema, rng: random.Random
) -> bool:
    """Plant ``(c = v1 OR c = v2 [OR c = v3])`` for the or-in family."""
    core = _base_core(statement)
    if core is None:
        return False
    sources = _core_sources(core, schema)
    if not sources:
        return False
    qualify = len(sources) > 1
    label, table = rng.choice(sources)
    texts = [
        c for c in table.text_columns() if c.spec and len(c.spec.choices) >= 2
    ]
    if texts:
        column = rng.choice(texts)
        count = min(len(column.spec.choices), rng.choice((2, 3)))
        values: list[n.Literal] = [
            n.Literal(value=v, kind="string", text=v)
            for v in rng.sample(column.spec.choices, k=count)
        ]
    else:
        def _span(column):
            spec = column.spec
            low, high = (int(spec.low), int(spec.high)) if spec else (0, 1000)
            return low, high

        ints = [
            c
            for c in table.numeric_columns()
            if c.col_type is ColType.INT and _span(c)[1] - _span(c)[0] >= 1
        ]
        if not ints:
            return False
        column = rng.choice(ints)
        low, high = _span(column)
        values = [
            _int_literal(v)
            for v in sorted(rng.sample(range(low, high + 1), 2))
        ]
    chain: n.Expr = n.Binary(
        op="=", left=_ref(label, column.name, qualify), right=values[0]
    )
    for literal in values[1:]:
        chain = n.Binary(
            op="OR",
            left=chain,
            right=n.Binary(
                op="=", left=_ref(label, column.name, qualify), right=literal
            ),
        )
    _append_where(core, chain)
    return True


def _seed_null_eq(
    statement: n.Statement, schema: Schema, rng: random.Random
) -> bool:
    """Plant a ``c = NULL`` conjunct for the null-normalize family."""
    core = _base_core(statement)
    if core is None:
        return False
    sources = _core_sources(core, schema)
    if not sources:
        return False
    qualify = len(sources) > 1
    label, table = rng.choice(sources)
    column = rng.choice(table.columns)
    _append_where(
        core,
        n.Binary(
            op="=",
            left=_ref(label, column.name, qualify),
            right=n.Literal(value=None, kind="null", text="NULL"),
        ),
    )
    return True


def _seed_const_arith(
    statement: n.Statement, schema: Schema, rng: random.Random
) -> bool:
    """Plant ``c <= lo + delta`` literal arithmetic for const-fold."""
    core = _base_core(statement)
    if core is None:
        return False
    sources = _core_sources(core, schema)
    if not sources:
        return False
    qualify = len(sources) > 1
    label, table = rng.choice(sources)
    ints = [c for c in table.numeric_columns() if c.col_type is ColType.INT]
    if not ints:
        return False
    column = rng.choice(ints)
    spec = column.spec
    low, high = (int(spec.low), int(spec.high)) if spec else (0, 1000)
    base = rng.randint(low, max(low, high - 9))
    delta = rng.randint(1, 9)
    _append_where(
        core,
        n.Binary(
            op=rng.choice((">=", "<=", ">", "<")),
            left=_ref(label, column.name, qualify),
            right=n.Binary(
                op="+", left=_int_literal(base), right=_int_literal(delta)
            ),
        ),
    )
    return True


def _seed_star(
    statement: n.Statement, schema: Schema, rng: random.Random
) -> bool:
    """Replace the select list with ``*`` for the star-expansion family."""
    if not isinstance(statement, n.SelectStatement):
        return False
    body = statement.query.body
    if not isinstance(body, n.SelectCore):
        return False  # set-op branches must keep matching shapes
    if body.group_by or body.having is not None or body.distinct:
        return False
    if any(
        isinstance(node, n.FuncCall)
        for item in body.items
        for node in walk(item.expr)
    ):
        return False
    sources = _core_sources(body, schema)
    if not sources or len(sources) != len(named_tables(body)):
        return False
    if any(isinstance(ref, n.DerivedTable) for ref in body.from_items):
        return False
    body.items = [n.SelectItem(expr=n.Star())]
    return True


def _seed_subquery_distinct(
    statement: n.Statement, schema: Schema, rng: random.Random
) -> bool:
    """Turn on DISTINCT inside a membership subquery (a semantic no-op)."""
    candidates = []
    for node in walk(statement):
        if isinstance(node, (n.InSubquery, n.Exists)):
            body = node.query.body
            if (
                isinstance(body, n.SelectCore)
                and not body.distinct
                and body.top is None
                and body.limit is None
            ):
                candidates.append(body)
    if not candidates:
        return False
    rng.choice(candidates).distinct = True
    return True


def _seed_having_group_pred(
    statement: n.Statement, schema: Schema, rng: random.Random
) -> bool:
    """AND a grouping-column predicate onto HAVING for the pushdown family."""
    candidates = []
    for core in select_cores(statement):
        if not core.group_by:
            continue
        sources = _core_sources(core, schema)
        for expr in core.group_by:
            if not isinstance(expr, n.ColumnRef):
                continue
            for label, table in sources:
                if expr.table is not None and expr.table.lower() != label.lower():
                    continue
                column = table.column(expr.name)
                if column is not None:
                    candidates.append((core, expr, column))
    if not candidates:
        return False
    core, group_ref, column = rng.choice(candidates)
    spec = column.spec
    if spec is not None and spec.choices:
        value = rng.choice(spec.choices)
        literal: n.Expr = n.Literal(value=value, kind="string", text=value)
        op = rng.choice(("=", "<>"))
    elif column.col_type in (ColType.INT, ColType.FLOAT):
        low, high = (spec.low, spec.high) if spec else (0, 1000)
        if column.col_type is ColType.INT:
            literal = _number_literal(rng.randint(int(low), int(high)))
        else:
            literal = _number_literal(round(rng.uniform(low, high), 3))
        op = rng.choice((">", ">=", "<", "<="))
    else:
        return False
    predicate = n.Binary(
        op=op,
        left=n.ColumnRef(name=group_ref.name, table=group_ref.table),
        right=literal,
    )
    core.having = (
        predicate
        if core.having is None
        else n.Binary(op="AND", left=core.having, right=predicate)
    )
    return True


#: Seeders keyed by the catalog family they create opportunities for.
#: Families absent here (subquery-cte, setop-exists) are covered by the
#: rewrite profile's strata directly.
_SEEDERS = {
    OR_IN: _seed_or_chain,
    NULL_NORMALIZE: _seed_null_eq,
    CONST_FOLD: _seed_const_arith,
    STAR_EXPANSION: _seed_star,
    DISTINCT_ELIM: _seed_subquery_distinct,
    PUSHDOWN: _seed_having_group_pred,
}


def seed_rewrite_sites(
    statement: n.Statement,
    schema: Schema,
    rng: random.Random,
    families: Optional[Sequence[str]] = None,
) -> tuple[str, ...]:
    """Plant up to two rewritable constructs into *statement* in place.

    Only seeds opportunities for the selected *families* (all when
    None).  Returns the family names that were actually seeded.
    """
    eligible = [
        family
        for family in _SEEDERS
        if not families or family in families
    ]
    if not eligible:
        return ()
    budget = 1 + (rng.random() < 0.5)
    seeded: list[str] = []
    for family in sample_order(rng, eligible):
        if len(seeded) >= budget:
            break
        if _SEEDERS[family](statement, schema, rng):
            seeded.append(family)
    return tuple(seeded)


# ---------------------------------------------------------------------------
# Pair generation
# ---------------------------------------------------------------------------


def iter_rewrite_pairs(
    source,
    seed: int = 0,
    max_pairs: Optional[int] = None,
    verify: bool = True,
    families: Optional[Sequence[str]] = None,
    max_chain_steps: int = 3,
    rows_per_table: int = 80,
    dangling_fraction: float = 0.08,
):
    """Yield verified rewrite pairs lazily from eligible SELECT queries.

    Mirrors :func:`repro.equivalence.pairs.iter_equivalence_pairs`:
    sequential by construction (one rng and the alternating polarity
    carry across accepted pairs), so the materialised and streaming
    paths share this generator and stay byte-identical.
    """
    transforms_for(families)  # validate family names up front
    rng = derive_rng("rewrite-pairs", source.name, seed)
    overrides = CHECKER_SETTINGS.get(source.name, {})
    rows_per_table = int(overrides.get("rows_per_table", rows_per_table))
    dangling_fraction = float(
        overrides.get("dangling_fraction", dangling_fraction)
    )
    checkers: dict[str, EquivalenceChecker] = {}
    try:
        produced = 0
        want_equivalent = True
        for query in source:
            if max_pairs is not None and produced >= max_pairs:
                break
            if query.properties.query_type not in ("SELECT", "WITH"):
                continue
            if not eligible_for_pairing(query):
                continue
            schema = source.schema_for(query)
            if verify and query.schema_name not in checkers:
                checkers[query.schema_name] = EquivalenceChecker(
                    schema,
                    rows_per_table=rows_per_table,
                    dangling_fraction=dangling_fraction,
                )
            checker = checkers.get(query.schema_name) if verify else None
            base = clone(query.statement)
            seeded = seed_rewrite_sites(base, schema, rng, families=families)
            base_text = render(base)
            pair = _build_rewrite_pair(
                query.query_id,
                source.name,
                query.schema_name,
                base,
                base_text,
                seeded,
                schema,
                checker,
                rng,
                want_equivalent,
                families,
                max_chain_steps,
            )
            if pair is None:  # try the other polarity before giving up
                pair = _build_rewrite_pair(
                    query.query_id,
                    source.name,
                    query.schema_name,
                    base,
                    base_text,
                    seeded,
                    schema,
                    checker,
                    rng,
                    not want_equivalent,
                    families,
                    max_chain_steps,
                )
            if pair is None:
                continue
            yield pair
            produced += 1
            want_equivalent = not want_equivalent
    finally:
        for checker in checkers.values():
            checker.close()


def generate_rewrite_pairs(
    workload: Workload,
    seed: int = 0,
    max_pairs: Optional[int] = None,
    verify: bool = True,
    families: Optional[Sequence[str]] = None,
    max_chain_steps: int = 3,
) -> list[RewritePair]:
    """Materialise :func:`iter_rewrite_pairs` for a workload."""
    return list(
        iter_rewrite_pairs(
            workload,
            seed=seed,
            max_pairs=max_pairs,
            verify=verify,
            families=families,
            max_chain_steps=max_chain_steps,
        )
    )


def _build_rewrite_pair(
    query_id: str,
    workload_name: str,
    schema_name: str,
    base: n.Statement,
    base_text: str,
    seeded: tuple[str, ...],
    schema: Schema,
    checker: Optional[EquivalenceChecker],
    rng: random.Random,
    equivalent: bool,
    families: Optional[Sequence[str]],
    max_chain_steps: int,
) -> Optional[RewritePair]:
    for _ in range(3):
        if equivalent:
            steps = 1 + rng.randrange(max(1, max_chain_steps))
            chain = apply_rewrite_chain(
                base,
                schema,
                rng,
                max_steps=steps,
                families=families,
                original_text=base_text,
            )
            if chain is None:
                return None  # no catalog transform applies at all
            if checker is not None:
                verdict = checker.verdict(
                    base_text,
                    chain.text,
                    first_statement=base,
                    second_statement=chain.statement,
                )
                if verdict is not True:
                    continue
            return RewritePair(
                pair_id=f"{query_id}-rwpair",
                workload=workload_name,
                schema_name=schema_name,
                source_query_id=query_id,
                first_text=base_text,
                second_text=chain.text,
                equivalent=True,
                pair_type=chain.chain_label,
                transforms=tuple(step.name for step in chain.steps),
                families=chain.families,
                seeded=seeded,
                detail="; ".join(step.detail for step in chain.steps),
            )
        rewrite = apply_non_equivalence_transform(
            base, schema, rng, original_text=base_text
        )
        if rewrite is None:
            return None
        if checker is not None:
            verdict = checker.verdict(
                base_text,
                rewrite.text,
                first_statement=base,
                second_statement=rewrite.statement,
            )
            if verdict is not False and rewrite.pair_type not in SOUND_BY_CONSTRUCTION:
                continue
        return RewritePair(
            pair_id=f"{query_id}-rwpair",
            workload=workload_name,
            schema_name=schema_name,
            source_query_id=query_id,
            first_text=base_text,
            second_text=rewrite.text,
            equivalent=False,
            pair_type=rewrite.pair_type,
            transforms=(rewrite.pair_type,),
            families=(),
            seeded=seeded,
            detail=rewrite.detail,
        )
    return None
