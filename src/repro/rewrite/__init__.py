"""Semantics-preserving rewrite layer (tentpole of the rewrite tasks).

``repro.rewrite.catalog`` holds the transform catalog — eight families
of execution-validated, semantics-preserving rewrites built on the
generic :mod:`repro.sql.transform` primitives — and
``repro.rewrite.pairs`` turns workload queries into labeled
original/rewritten pairs (multi-step chains as hard positives,
counter-transforms as hard negatives) for the ``rewrite_equivalence``
and ``rewrite_speedup`` tasks.
"""

from repro.rewrite.catalog import (
    CATALOG,
    REWRITE_FAMILIES,
    RewriteChain,
    RewriteStep,
    RewriteTransform,
    apply_rewrite,
    apply_rewrite_chain,
    catalog_fingerprint,
    transforms_for,
)
from repro.rewrite.pairs import (
    RewritePair,
    generate_rewrite_pairs,
    iter_rewrite_pairs,
)

__all__ = [
    "CATALOG",
    "REWRITE_FAMILIES",
    "RewriteChain",
    "RewritePair",
    "RewriteStep",
    "RewriteTransform",
    "apply_rewrite",
    "apply_rewrite_chain",
    "catalog_fingerprint",
    "generate_rewrite_pairs",
    "iter_rewrite_pairs",
    "transforms_for",
]
