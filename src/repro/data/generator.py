"""Seeded synthetic row generation for any :class:`~repro.schema.model.Schema`.

Rows respect foreign keys (child values are sampled from generated parent
keys) so that joins over generated instances produce non-empty,
deterministic results — a prerequisite for execution-based equivalence
checking (the non-equivalence transforms must *observably* change query
results).
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field

from repro.schema.model import ColType, Column, Schema, Table, ValueSpec
from repro.util import derive_rng

_WORDS = (
    "alpha", "bravo", "comet", "delta", "ember", "falcon", "gale",
    "harbor", "iris", "jasper", "kelp", "lumen", "meadow", "nadir",
    "onyx", "prism", "quarry", "raven", "sable", "tundra",
)


@dataclass
class GeneratedInstance:
    """Rows for every table of one schema."""

    schema: Schema
    rows: dict[str, list[tuple]] = field(default_factory=dict)

    def table_rows(self, table_name: str) -> list[tuple]:
        return self.rows.get(table_name.lower(), [])


class RowGenerator:
    """Generates value-spec-aware synthetic rows with FK consistency."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def generate(
        self,
        schema: Schema,
        rows_per_table: int = 60,
        dangling_fraction: float = 0.0,
    ) -> GeneratedInstance:
        """Generate *rows_per_table* rows for every table in *schema*.

        Tables are processed in dependency order (parents before children)
        so foreign-key columns can sample real parent keys.  Lookup-style
        tables (serial primary key with a small range) get exactly one row
        per key value.

        ``dangling_fraction`` makes that share of FK values point at no
        parent row.  The equivalence checker uses it so that INNER vs
        LEFT/semi-join differences are observable on generated instances.
        """
        rng = derive_rng(self.seed, schema.name, round(dangling_fraction, 4))
        instance = GeneratedInstance(schema=schema)
        key_pools: dict[tuple[str, str], list] = {}
        for table in _dependency_order(schema):
            count = self._row_count(table, rows_per_table)
            rows = []
            serials = _serial_start(table, rng)
            for row_index in range(count):
                row = []
                for column in table.columns:
                    fk = _foreign_key_for(table, column.name)
                    if fk is not None:
                        pool = key_pools.get(
                            (fk.ref_table.lower(), fk.ref_column.lower())
                        )
                        if pool:
                            if (
                                dangling_fraction > 0
                                and not column.primary_key
                                and rng.random() < dangling_fraction
                            ):
                                row.append(max(pool) + rng.randint(10, 10_000))
                            else:
                                row.append(rng.choice(pool))
                            continue
                    row.append(self._value(column, row_index, serials, rng))
                rows.append(tuple(row))
            instance.rows[table.name.lower()] = rows
            for position, column in enumerate(table.columns):
                values = [row[position] for row in rows]
                key_pools[(table.name.lower(), column.name.lower())] = values
        return instance

    def _row_count(self, table: Table, default: int) -> int:
        for column in table.columns:
            spec = column.spec
            if (
                column.primary_key
                and spec is not None
                and spec.high - spec.low < default
            ):
                return int(spec.high - spec.low) + 1
        return default

    def _value(
        self,
        column: Column,
        row_index: int,
        serials: dict[str, int],
        rng: random.Random,
    ):
        spec = column.spec or _default_spec(column)
        if column.primary_key or spec.kind == "serial":
            base = serials.setdefault(column.name, int(spec.low))
            return base + row_index
        if spec.kind == "int_range":
            return rng.randint(int(spec.low), int(spec.high))
        if spec.kind == "float_range":
            return round(rng.uniform(spec.low, spec.high), 4)
        if spec.kind == "choice":
            return rng.choice(spec.choices)
        if spec.kind == "date_range":
            year = rng.randint(int(spec.low), int(spec.high))
            month = rng.randint(1, 12)
            day = rng.randint(1, 28)
            return f"{year:04d}-{month:02d}-{day:02d}"
        if spec.kind == "text":
            word = rng.choice(_WORDS)
            suffix = "".join(rng.choices(string.ascii_lowercase, k=3))
            return f"{word}_{suffix}"
        raise ValueError(f"unknown value spec kind: {spec.kind!r}")


def _default_spec(column: Column) -> ValueSpec:
    if column.col_type is ColType.INT:
        return ValueSpec("int_range", 0, 1000)
    if column.col_type is ColType.FLOAT:
        return ValueSpec("float_range", 0, 1000)
    if column.col_type is ColType.DATE:
        return ValueSpec("date_range", 2000, 2024)
    if column.col_type is ColType.BOOL:
        return ValueSpec("int_range", 0, 1)
    return ValueSpec("text")


def _serial_start(table: Table, rng: random.Random) -> dict[str, int]:
    starts: dict[str, int] = {}
    for column in table.columns:
        if column.primary_key and column.spec is not None:
            starts[column.name] = int(column.spec.low)
    return starts


def _foreign_key_for(table: Table, column_name: str):
    for fk in table.foreign_keys:
        if fk.column.lower() == column_name.lower():
            return fk
    return None


def _dependency_order(schema: Schema) -> list[Table]:
    """Topologically sort tables so FK parents come first.

    Cycles (e.g. self-references) are broken arbitrarily; the generator
    then falls back to spec-based values for unresolvable keys.
    """
    ordered: list[Table] = []
    placed: set[str] = set()
    remaining = list(schema.tables)
    while remaining:
        progressed = False
        for table in list(remaining):
            deps = {
                fk.ref_table.lower()
                for fk in table.foreign_keys
                if fk.ref_table.lower() != table.name.lower()
            }
            if deps <= placed | {t.name.lower() for t in ordered}:
                ordered.append(table)
                placed.add(table.name.lower())
                remaining.remove(table)
                progressed = True
        if not progressed:  # cycle: emit the rest in declaration order
            ordered.extend(remaining)
            break
    return ordered
