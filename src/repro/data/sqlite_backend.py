"""SQLite materialisation and query execution.

``SqliteDatabase`` turns a schema + generated rows into a live in-memory
SQLite database and executes queries rendered in the SQLITE dialect.
``ResultComparison`` provides the multiset semantics the equivalence
checker needs (SQL results are bags; order only matters under ORDER BY).
"""

from __future__ import annotations

import math
import sqlite3
from collections import Counter
from dataclasses import dataclass

from repro.data.generator import GeneratedInstance, RowGenerator
from repro.schema.model import Schema
from repro.sql import nodes
from repro.sql.render import SQLITE, render


class ExecutionError(Exception):
    """Raised when SQLite rejects a query."""


@dataclass
class QueryResult:
    """Rows plus column names from one execution."""

    columns: list[str]
    rows: list[tuple]

    @property
    def row_count(self) -> int:
        return len(self.rows)


class SqliteDatabase:
    """An in-memory SQLite instance for one schema.

    ``step_budget`` bounds the number of VM-progress callbacks a single
    query may consume (the handler fires every ~100k instructions); a
    query exceeding it raises :class:`ExecutionError`.  This guards the
    equivalence checker against join queries that explode combinatorially
    on synthetic data.
    """

    PROGRESS_INTERVAL = 100_000

    def __init__(
        self,
        schema: Schema,
        instance: GeneratedInstance,
        step_budget: int = 200,
    ) -> None:
        self.schema = schema
        self.step_budget = step_budget
        self.connection = sqlite3.connect(":memory:")
        self.connection.create_function("POWER", 2, _power)
        self.connection.create_function("SQRT", 1, _sqrt)
        self.connection.create_function("LOG", 1, _log)
        self.connection.create_function("RADIANS", 1, math.radians)
        self.connection.create_function("DEGREES", 1, math.degrees)
        self._load(instance)

    @classmethod
    def from_schema(
        cls,
        schema: Schema,
        seed: int = 0,
        rows_per_table: int = 60,
        dangling_fraction: float = 0.0,
        step_budget: int = 200,
    ) -> "SqliteDatabase":
        """Build a database with freshly generated synthetic rows."""
        instance = RowGenerator(seed).generate(
            schema, rows_per_table, dangling_fraction=dangling_fraction
        )
        return cls(schema, instance, step_budget=step_budget)

    def _load(self, instance: GeneratedInstance) -> None:
        cursor = self.connection.cursor()
        for table in self.schema.tables:
            columns = ", ".join(
                f'"{column.name}" {column.col_type.sqlite_affinity}'
                for column in table.columns
            )
            cursor.execute(f'CREATE TABLE "{table.name}" ({columns})')
            rows = instance.table_rows(table.name)
            if rows:
                placeholders = ", ".join("?" for _ in table.columns)
                cursor.executemany(
                    f'INSERT INTO "{table.name}" VALUES ({placeholders})', rows
                )
        self.connection.commit()

    def execute(self, sql: str) -> QueryResult:
        """Run raw SQL text and fetch all rows (bounded by step_budget)."""
        remaining = [self.step_budget]

        def guard() -> int:
            remaining[0] -= 1
            return 1 if remaining[0] < 0 else 0

        self.connection.set_progress_handler(guard, self.PROGRESS_INTERVAL)
        try:
            cursor = self.connection.execute(sql)
            rows = cursor.fetchall()
        except sqlite3.Error as exc:
            raise ExecutionError(f"{exc} -- in query: {sql[:200]}") from exc
        finally:
            self.connection.set_progress_handler(None, 0)
        columns = (
            [description[0] for description in cursor.description]
            if cursor.description
            else []
        )
        return QueryResult(columns=columns, rows=rows)

    def execute_statement(self, statement: nodes.Statement) -> QueryResult:
        """Render *statement* in the SQLite dialect and run it."""
        return self.execute(render(statement, SQLITE))

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SqliteDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _power(base, exponent):
    if base is None or exponent is None:
        return None
    return float(base) ** float(exponent)


def _sqrt(value):
    if value is None or value < 0:
        return None
    return math.sqrt(value)


def _log(value):
    if value is None or value <= 0:
        return None
    return math.log10(value)


def _normalise_cell(cell):
    """Quantise floats so equivalent arithmetic compares equal.

    Rounding to a fixed *absolute* number of decimals breaks down at
    large magnitudes: ``1234567.0499997`` and ``1234567.0500001`` differ
    only by 4e-7 yet ``round(_, 6)`` keeps them apart, flipping an
    equivalence verdict.  Instead the retained decimal places shrink
    with the integer magnitude (a relative tolerance of roughly six
    significant digits), while sub-ten magnitudes keep the original six
    decimal places.
    """
    if isinstance(cell, float):
        if not math.isfinite(cell) or cell == 0.0:
            return cell
        magnitude = math.floor(math.log10(abs(cell)))
        return round(cell, 6 - max(magnitude, 0))
    return cell


def results_equal(
    first: QueryResult, second: QueryResult, ordered: bool = False
) -> bool:
    """Compare results under bag semantics (or list semantics if *ordered*).

    Column *names* are ignored — equivalence is about the returned data,
    and rewrites such as CTE extraction can rename output columns.
    """
    if len(first.columns) != len(second.columns):
        return False
    first_rows = [tuple(_normalise_cell(c) for c in row) for row in first.rows]
    second_rows = [tuple(_normalise_cell(c) for c in row) for row in second.rows]
    if ordered:
        return first_rows == second_rows
    return Counter(first_rows) == Counter(second_rows)
