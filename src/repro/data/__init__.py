"""Synthetic data generation and SQLite-backed execution."""

from repro.data.generator import GeneratedInstance, RowGenerator
from repro.data.sqlite_backend import (
    ExecutionError,
    QueryResult,
    SqliteDatabase,
    results_equal,
)

__all__ = [
    "GeneratedInstance",
    "RowGenerator",
    "ExecutionError",
    "QueryResult",
    "SqliteDatabase",
    "results_equal",
]
