"""One experiment function per paper artifact (tables 1-7, figures 1-12,
section 4.5 case study).

Every function takes an :class:`~repro.evalfw.runner.ExperimentRunner`
(so datasets/workloads are shared and cached, and grid evaluation goes
through the runner's :class:`~repro.engine.ExperimentEngine` — sharded
across worker processes and served from the on-disk result cache when
the runner is configured that way) and returns an
:class:`ExperimentResult` whose ``text`` prints the same rows/series the
paper reports, with paper reference values alongside where available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.corrupt.missing_tokens import TOKEN_TYPES
from repro.corrupt.syntax_errors import ERROR_TYPES
from repro.evalfw.failure_analysis import property_breakdown, type_failure_profile
from repro.evalfw.report import (
    render_breakdown,
    render_histogram,
    render_matrix,
    render_table,
)
from repro.evalfw.runner import CellResult, ExperimentRunner, metrics_table
from repro.experiments import paper_values as paper
from repro.llm.profiles import MODEL_PROFILES
from repro.tasks.explanation import explanation_overlap_f1
from repro.tasks.skills import render_skill_table
from repro.workloads import (
    CASE_STUDY_QUERIES,
    correlation_matrix,
    figure_histograms,
    workload_stats,
)
from repro.workloads.base import DISPLAY_NAMES, ORIGINAL_SIZES
from repro.workloads.statistics import Histogram


@dataclass
class ExperimentResult:
    """Output of one artifact reproduction."""

    artifact: str
    title: str
    text: str
    data: dict = field(default_factory=dict)


def _paper_triplet(reference, key) -> str:
    triple = reference.get(key)
    if triple is None:
        return "-"
    return "/".join(f"{value:.2f}" for value in triple)


def _grid_rows_with_paper(
    grid: dict[tuple[str, str], CellResult],
    kind: str,
    reference: dict[tuple[str, str], tuple],
) -> list[dict[str, object]]:
    rows = metrics_table(grid, kind)
    workloads = sorted({workload for _, workload in grid})
    for row in rows:
        display = str(row["Model"])
        for workload in workloads:
            row[f"{workload}.paper(P/R/F1)"] = _paper_triplet(
                reference, (display, workload)
            )
    return rows


# ---------------------------------------------------------------------------
# Table 1 and workload statistics (Table 2, Figures 1-5)
# ---------------------------------------------------------------------------


def table1_skill_map(runner: ExperimentRunner) -> ExperimentResult:
    rows = render_skill_table()
    return ExperimentResult(
        artifact="table1",
        title="Table 1: skill-to-SQL-task mapping",
        text=render_table(rows, "Table 1: Skill-to-SQL task mapping"),
        data={"rows": rows},
    )


def table2_workload_stats(runner: ExperimentRunner) -> ExperimentResult:
    rows = []
    for name in ("sdss", "sqlshare", "join_order", "spider"):
        stats = workload_stats(runner.workload(name))
        row = stats.as_row()
        row["original"] = ORIGINAL_SIZES[name]
        reference = paper.PAPER_TABLE2.get(DISPLAY_NAMES[name], {})
        row["paper.agg_yes"] = reference.get("agg_yes", "-")
        rows.append(row)
    return ExperimentResult(
        artifact="table2",
        title="Table 2: workload statistics overview",
        text=render_table(rows, "Table 2: Workload statistics overview"),
        data={"rows": rows},
    )


def _figure_stats(runner: ExperimentRunner, name: str, artifact: str) -> ExperimentResult:
    workload = runner.workload(name)
    histograms = figure_histograms(workload)
    blocks = [
        render_histogram(hist, f"{DISPLAY_NAMES[name]} {prop}")
        for prop, hist in histograms.items()
    ]
    return ExperimentResult(
        artifact=artifact,
        title=f"{artifact}: {DISPLAY_NAMES[name]} statistics",
        text="\n\n".join(blocks),
        data={prop: hist.as_dict() for prop, hist in histograms.items()},
    )


def fig1_sdss_stats(runner: ExperimentRunner) -> ExperimentResult:
    return _figure_stats(runner, "sdss", "fig1")


def fig2_sqlshare_stats(runner: ExperimentRunner) -> ExperimentResult:
    return _figure_stats(runner, "sqlshare", "fig2")


def fig3_joinorder_stats(runner: ExperimentRunner) -> ExperimentResult:
    return _figure_stats(runner, "join_order", "fig3")


def fig4_correlations(runner: ExperimentRunner) -> ExperimentResult:
    blocks = []
    data = {}
    for name in ("sdss", "sqlshare", "join_order"):
        matrix = correlation_matrix(runner.workload(name))
        blocks.append(
            render_matrix(matrix, f"Figure 4 ({DISPLAY_NAMES[name]}): Pearson correlations")
        )
        strong = matrix.strong_pairs(0.7)
        blocks.append(
            "strong pairs (|r| >= 0.7): "
            + (
                ", ".join(f"{a}~{b}: {v:.2f}" for a, b, v in strong)
                or "(none)"
            )
        )
        data[name] = {"matrix": matrix.values, "strong": strong}
    return ExperimentResult(
        artifact="fig4",
        title="Figure 4: pairwise property correlations",
        text="\n\n".join(blocks),
        data=data,
    )


def fig5_elapsed_time(runner: ExperimentRunner) -> ExperimentResult:
    workload = runner.workload("sdss")
    buckets = [
        ("0-100", 0, 100),
        ("100-200", 100, 200),
        ("200-300", 200, 300),
        ("300-400", 300, 400),
        ("400-500", 400, 500),
        ("500+", 500, math.inf),
    ]
    counts = {label: 0 for label, _, _ in buckets}
    for query in workload:
        for label, low, high in buckets:
            if low <= query.elapsed_ms < high:
                counts[label] += 1
                break
    hist = Histogram(
        property_name="elapsed_ms",
        labels=[label for label, _, _ in buckets],
        counts=[counts[label] for label, _, _ in buckets],
    )
    text = render_histogram(hist, "Figure 5: elapsed time of sampled SDSS queries (ms)")
    text += "\npaper:      " + "  ".join(
        f"{k}={v}" for k, v in paper.PAPER_FIG5.items()
    )
    return ExperimentResult(
        artifact="fig5",
        title="Figure 5: SDSS elapsed-time distribution",
        text=text,
        data={"histogram": hist.as_dict(), "paper": paper.PAPER_FIG5},
    )


# ---------------------------------------------------------------------------
# Model evaluation tables (3-7)
# ---------------------------------------------------------------------------


def table3_syntax_error(runner: ExperimentRunner) -> ExperimentResult:
    grid = runner.run_task("syntax_error")
    binary_rows = _grid_rows_with_paper(grid, "binary", paper.PAPER_TABLE3_BINARY)
    typed_rows = _grid_rows_with_paper(grid, "typed", paper.PAPER_TABLE3_TYPED)
    text = (
        render_table(binary_rows, "Table 3 (top): syntax_error")
        + "\n\n"
        + render_table(typed_rows, "Table 3 (bottom): syntax_error_type")
    )
    return ExperimentResult(
        artifact="table3",
        title="Table 3: syntax error detection",
        text=text,
        data={"binary": binary_rows, "typed": typed_rows, "grid": grid},
    )


def fig6_syntax_wordcount(runner: ExperimentRunner) -> ExperimentResult:
    grid = runner.run_task("syntax_error", workloads=("sdss",))
    blocks = []
    data = {}
    for model in ("llama3", "gemini"):
        cell = grid[(model, "sdss")]
        breakdown = property_breakdown(
            cell.dataset.instances, cell.answers, "word_count"
        )
        blocks.append(
            render_breakdown(
                breakdown,
                f"Figure 6: word_count vs outcome — {cell.model} on SDSS",
            )
        )
        data[model] = {
            cell_name: (stats.average, stats.median, stats.count)
            for cell_name, stats in breakdown.cells.items()
        }
    return ExperimentResult(
        artifact="fig6",
        title="Figure 6: word_count and syntax_error failures",
        text="\n\n".join(blocks),
        data=data,
    )


def fig7_syntax_type_fn(runner: ExperimentRunner) -> ExperimentResult:
    blocks = []
    shares: dict[str, dict[str, float]] = {}
    miss_rates: dict[str, dict[str, float]] = {}
    for workload in ("sdss", "sqlshare", "join_order"):
        grid = runner.run_task("syntax_error", workloads=(workload,))
        rows = []
        for profile in MODEL_PROFILES:
            cell = grid[(profile.name, workload)]
            failure = type_failure_profile(
                cell.dataset.instances, cell.answers, ERROR_TYPES
            )
            row = {"Model": profile.display_name}
            row.update(failure.fn_share)
            rows.append(row)
            key = f"{profile.name}/{workload}"
            shares[key] = failure.fn_share
            miss_rates[key] = failure.miss_rate
        blocks.append(
            render_table(
                rows, f"Figure 7 ({DISPLAY_NAMES[workload]}): FN share by error type"
            )
        )
    return ExperimentResult(
        artifact="fig7",
        title="Figure 7: FN composition by syntax-error type",
        text="\n\n".join(blocks),
        data={"shares": shares, "miss_rates": miss_rates},
    )


def table4_miss_token(runner: ExperimentRunner) -> ExperimentResult:
    grid = runner.run_task("miss_token")
    binary_rows = _grid_rows_with_paper(grid, "binary", paper.PAPER_TABLE4_BINARY)
    typed_rows = _grid_rows_with_paper(grid, "typed", paper.PAPER_TABLE4_TYPED)
    text = (
        render_table(binary_rows, "Table 4 (top): miss_token")
        + "\n\n"
        + render_table(typed_rows, "Table 4 (bottom): miss_token_type")
    )
    return ExperimentResult(
        artifact="table4",
        title="Table 4: missing token detection",
        text=text,
        data={"binary": binary_rows, "typed": typed_rows, "grid": grid},
    )


def fig8_miss_token_failures(runner: ExperimentRunner) -> ExperimentResult:
    grid = runner.run_task("miss_token", workloads=("sqlshare",))
    panels = (
        ("gpt35", "word_count"),
        ("gemini", "predicate_count"),
        ("gemini", "nestedness"),
        ("mistral", "table_count"),
    )
    blocks = []
    data = {}
    for model, prop in panels:
        cell = grid[(model, "sqlshare")]
        breakdown = property_breakdown(cell.dataset.instances, cell.answers, prop)
        blocks.append(
            render_breakdown(
                breakdown, f"Figure 8: {prop} vs outcome — {model} on SQLShare"
            )
        )
        data[f"{model}/{prop}"] = {
            cell_name: (stats.average, stats.count)
            for cell_name, stats in breakdown.cells.items()
        }
    return ExperimentResult(
        artifact="fig8",
        title="Figure 8: miss_token failures vs syntactic properties",
        text="\n\n".join(blocks),
        data=data,
    )


def fig9_token_type_fn(runner: ExperimentRunner) -> ExperimentResult:
    blocks = []
    data = {}
    for workload in ("sdss", "sqlshare", "join_order"):
        grid = runner.run_task("miss_token", workloads=(workload,))
        rows = []
        for profile in MODEL_PROFILES:
            cell = grid[(profile.name, workload)]
            failure = type_failure_profile(
                cell.dataset.instances, cell.answers, TOKEN_TYPES
            )
            row = {"Model": profile.display_name}
            row.update(failure.fn_share)
            rows.append(row)
            data[f"{profile.name}/{workload}"] = failure.fn_share
        blocks.append(
            render_table(
                rows,
                f"Figure 9 ({DISPLAY_NAMES[workload]}): FN share by token type",
            )
        )
    return ExperimentResult(
        artifact="fig9",
        title="Figure 9: FN composition by missing-token type",
        text="\n\n".join(blocks),
        data={"shares": data},
    )


def table5_token_loc(runner: ExperimentRunner) -> ExperimentResult:
    grid = runner.run_task("miss_token")
    rows = metrics_table(grid, "location")
    for row in rows:
        display = str(row["Model"])
        for workload in ("sdss", "sqlshare", "join_order"):
            reference = paper.PAPER_TABLE5_LOCATION.get((display, workload))
            row[f"{workload}.paper(MAE/HR)"] = (
                f"{reference[0]:.2f}/{reference[1]:.2f}" if reference else "-"
            )
    return ExperimentResult(
        artifact="table5",
        title="Table 5: missing-token location (MAE / hit rate)",
        text=render_table(rows, "Table 5: miss_token_loc"),
        data={"rows": rows, "grid": grid},
    )


def table6_performance(runner: ExperimentRunner) -> ExperimentResult:
    grid = runner.run_task("performance_pred")
    rows = metrics_table(grid, "binary")
    for row in rows:
        reference = paper.PAPER_TABLE6.get(str(row["Model"]))
        row["paper(P/R/F1)"] = (
            "/".join(f"{v:.2f}" for v in reference) if reference else "-"
        )
    return ExperimentResult(
        artifact="table6",
        title="Table 6: query performance prediction",
        text=render_table(rows, "Table 6: performance_pred (SDSS)"),
        data={"rows": rows, "grid": grid},
    )


def fig10_perf_failures(runner: ExperimentRunner) -> ExperimentResult:
    grid = runner.run_task("performance_pred")
    cell = grid[("mistral", "sdss")]
    blocks = []
    data = {}
    for prop in ("word_count", "column_count"):
        breakdown = property_breakdown(cell.dataset.instances, cell.answers, prop)
        blocks.append(
            render_breakdown(
                breakdown, f"Figure 10: {prop} vs outcome — MistralAI performance_pred"
            )
        )
        data[prop] = {
            cell_name: (stats.average, stats.count)
            for cell_name, stats in breakdown.cells.items()
        }
    return ExperimentResult(
        artifact="fig10",
        title="Figure 10: MistralAI performance_pred failures",
        text="\n\n".join(blocks),
        data=data,
    )


def table7_query_equiv(runner: ExperimentRunner) -> ExperimentResult:
    grid = runner.run_task("query_equiv")
    binary_rows = _grid_rows_with_paper(grid, "binary", paper.PAPER_TABLE7_BINARY)
    typed_rows = _grid_rows_with_paper(grid, "typed", paper.PAPER_TABLE7_TYPED)
    text = (
        render_table(binary_rows, "Table 7 (top): query_equiv")
        + "\n\n"
        + render_table(typed_rows, "Table 7 (bottom): query_equiv_type")
    )
    return ExperimentResult(
        artifact="table7",
        title="Table 7: query equivalence",
        text=text,
        data={"binary": binary_rows, "typed": typed_rows, "grid": grid},
    )


def fig11_equiv_wordcount(runner: ExperimentRunner) -> ExperimentResult:
    panels = (("gpt35", "sdss"), ("llama3", "join_order"))
    blocks = []
    data = {}
    for model, workload in panels:
        grid = runner.run_task("query_equiv", workloads=(workload,))
        cell = grid[(model, workload)]
        breakdown = property_breakdown(
            cell.dataset.instances, cell.answers, "word_count"
        )
        blocks.append(
            render_breakdown(
                breakdown,
                f"Figure 11: word_count vs outcome — {model} on {DISPLAY_NAMES[workload]}",
            )
        )
        data[f"{model}/{workload}"] = {
            cell_name: (stats.average, stats.count)
            for cell_name, stats in breakdown.cells.items()
        }
    return ExperimentResult(
        artifact="fig11",
        title="Figure 11: word_count and query_equiv failures",
        text="\n\n".join(blocks),
        data=data,
    )


def fig12_equiv_predicates(runner: ExperimentRunner) -> ExperimentResult:
    panels = (("gemini", "sdss"), ("mistral", "join_order"))
    blocks = []
    data = {}
    for model, workload in panels:
        grid = runner.run_task("query_equiv", workloads=(workload,))
        cell = grid[(model, workload)]
        breakdown = property_breakdown(
            cell.dataset.instances, cell.answers, "predicate_count"
        )
        blocks.append(
            render_breakdown(
                breakdown,
                f"Figure 12: predicate_count vs outcome — {model} on "
                f"{DISPLAY_NAMES[workload]}",
            )
        )
        data[f"{model}/{workload}"] = {
            cell_name: (stats.average, stats.count)
            for cell_name, stats in breakdown.cells.items()
        }
    return ExperimentResult(
        artifact="fig12",
        title="Figure 12: predicate_count and query_equiv failures",
        text="\n\n".join(blocks),
        data=data,
    )


# ---------------------------------------------------------------------------
# Section 4.5 case study
# ---------------------------------------------------------------------------


def case_query_explanation(runner: ExperimentRunner) -> ExperimentResult:
    grid = runner.run_task("query_exp")
    blocks = []
    summary_rows = []
    data: dict[str, object] = {}
    # Aggregate explanation fidelity per model.
    for profile in MODEL_PROFILES:
        cell = grid[(profile.name, "spider")]
        scores = [
            explanation_overlap_f1(instance.gold_text, answer.explanation)
            for instance, answer in zip(cell.dataset.instances, cell.answers)
        ]
        flawed = sum(1 for answer in cell.answers if answer.flaws)
        summary_rows.append(
            {
                "Model": profile.display_name,
                "overlapF1": round(sum(scores) / len(scores), 3),
                "flawed%": round(100 * flawed / len(cell.answers), 1),
            }
        )
    blocks.append(
        render_table(summary_rows, "query_exp: explanation fidelity per model")
    )
    # The Q15-Q18 case study, verbatim queries.
    case_texts = {sql for _, sql, _ in CASE_STUDY_QUERIES}
    case_blocks = []
    for profile in MODEL_PROFILES:
        cell = grid[(profile.name, "spider")]
        for instance, answer in zip(cell.dataset.instances, cell.answers):
            if instance.payload["query"] in case_texts and answer.flaws:
                case_blocks.append(
                    f"[{profile.display_name}] {instance.payload['query'][:70]}...\n"
                    f"  gold : {instance.gold_text}\n"
                    f"  model: {answer.explanation}\n"
                    f"  flaws: {', '.join(answer.flaws)}"
                )
    if case_blocks:
        blocks.append("Section 4.5 case-study failures:\n" + "\n\n".join(case_blocks))
    data["summary"] = summary_rows
    return ExperimentResult(
        artifact="case45",
        title="Section 4.5: query explanation case study",
        text="\n\n".join(blocks),
        data=data,
    )
