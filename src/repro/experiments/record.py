"""EXPERIMENTS.md generation: the paper-vs-measured record.

``build_experiments_markdown`` runs every artifact with a shared runner
and renders a markdown report comparing our measured metrics against the
paper's published values.  The repository's EXPERIMENTS.md is produced by
``python -m repro.experiments.record``.
"""

from __future__ import annotations

from pathlib import Path

from repro.evalfw.runner import ExperimentRunner
from repro.experiments import paper_values as paper
from repro.experiments.registry import run_all

_HEADER = """\
# EXPERIMENTS — paper vs measured

Every table and figure of *Evaluating SQL Understanding in Large
Language Models* (EDBT 2025), reproduced by this repository.  "Paper"
columns quote the published values; "ours" columns are measured by
running the simulated pipeline end-to-end (seed 0).  Absolute agreement
is calibrated (the models are simulated, see DESIGN.md section 4); the
claims to check are the *shapes*: who wins, the precision/recall
asymmetries, which workloads and types are hard, and where failures
concentrate.

Regenerate any artifact with ``python -m repro run <artifact>`` or the
whole file with ``python -m repro.experiments.record``.
"""


def _metric_block(
    title: str,
    rows: list[dict[str, object]],
    reference: dict[tuple[str, str], tuple[float, float, float]],
    workloads: tuple[str, ...],
) -> list[str]:
    lines = [f"### {title}", ""]
    header = "| Model |" + "".join(
        f" {w} ours P/R/F1 | {w} paper P/R/F1 |" for w in workloads
    )
    divider = "|---|" + "---|---|" * len(workloads)
    lines.append(header)
    lines.append(divider)
    for row in rows:
        model = str(row["Model"])
        cells = [f"| {model} |"]
        for workload in workloads:
            ours = (
                f"{row[f'{workload}.Prec']:.2f}/"
                f"{row[f'{workload}.Rec']:.2f}/{row[f'{workload}.F1']:.2f}"
            )
            ref = reference.get((model, workload))
            ref_text = "/".join(f"{v:.2f}" for v in ref) if ref else "-"
            cells.append(f" {ours} | {ref_text} |")
        lines.append("".join(cells))
    lines.append("")
    return lines


def build_experiments_markdown(seed: int = 0) -> str:
    runner = ExperimentRunner(seed=seed)
    results = run_all(runner)
    lines: list[str] = [_HEADER]

    lines.append("## Workload statistics (Table 2, Figures 1-5)\n")
    lines.append(
        "Matched exactly by construction: sampled sizes (285/250/157/200), "
        "query-type mixes, aggregate splits (21/59/119/96) and nestedness "
        "profiles; word/table/predicate histograms land within a few "
        "queries per bucket of Figures 1-3.  Figure 4's universal strong "
        "correlations (char~word, table~join) and SDSS's nestedness~join "
        "coupling hold; Figure 5's bimodal runtime histogram is "
        "reproduced by the cost model (fast mode <100 ms, heavy tail "
        "500+ ms, near-empty valley)."
    )
    lines.append("")
    fig5 = results["fig5"].data["histogram"]
    lines.append("| elapsed bucket | ours | paper |")
    lines.append("|---|---|---|")
    for bucket, count in fig5.items():
        lines.append(f"| {bucket} ms | {count} | {paper.PAPER_FIG5[bucket]} |")
    lines.append("")

    lines.append("## Model evaluation tables\n")
    workloads3 = ("sdss", "sqlshare", "join_order")
    lines += _metric_block(
        "Table 3 (top): syntax_error",
        results["table3"].data["binary"],
        paper.PAPER_TABLE3_BINARY,
        workloads3,
    )
    lines += _metric_block(
        "Table 3 (bottom): syntax_error_type (weighted)",
        results["table3"].data["typed"],
        paper.PAPER_TABLE3_TYPED,
        workloads3,
    )
    lines += _metric_block(
        "Table 4 (top): miss_token",
        results["table4"].data["binary"],
        paper.PAPER_TABLE4_BINARY,
        workloads3,
    )
    lines += _metric_block(
        "Table 4 (bottom): miss_token_type (weighted)",
        results["table4"].data["typed"],
        paper.PAPER_TABLE4_TYPED,
        workloads3,
    )

    lines.append("### Table 5: miss_token_loc (MAE / hit rate)\n")
    lines.append(
        "| Model |"
        + "".join(f" {w} ours MAE/HR | {w} paper MAE/HR |" for w in workloads3)
    )
    lines.append("|---|" + "---|---|" * 3)
    for row in results["table5"].data["rows"]:
        model = str(row["Model"])
        cells = [f"| {model} |"]
        for workload in workloads3:
            ours = f"{row[f'{workload}.MAE']:.2f}/{row[f'{workload}.HR']:.2f}"
            ref = paper.PAPER_TABLE5_LOCATION.get((model, workload))
            ref_text = f"{ref[0]:.2f}/{ref[1]:.2f}" if ref else "-"
            cells.append(f" {ours} | {ref_text} |")
        lines.append("".join(cells))
    lines.append("")

    lines.append("### Table 6: performance_pred (SDSS)\n")
    lines.append("| Model | ours P/R/F1 | paper P/R/F1 |")
    lines.append("|---|---|---|")
    for row in results["table6"].data["rows"]:
        model = str(row["Model"])
        ours = f"{row['sdss.Prec']:.2f}/{row['sdss.Rec']:.2f}/{row['sdss.F1']:.2f}"
        ref = paper.PAPER_TABLE6.get(model)
        ref_text = "/".join(f"{v:.2f}" for v in ref) if ref else "-"
        lines.append(f"| {model} | {ours} | {ref_text} |")
    lines.append("")

    lines += _metric_block(
        "Table 7 (top): query_equiv",
        results["table7"].data["binary"],
        paper.PAPER_TABLE7_BINARY,
        workloads3,
    )
    lines += _metric_block(
        "Table 7 (bottom): query_equiv_type (weighted)",
        results["table7"].data["typed"],
        paper.PAPER_TABLE7_TYPED,
        workloads3,
    )

    lines.append("## Failure-analysis figures (6-12)\n")
    fig6 = results["fig6"].data
    for model in ("llama3", "gemini"):
        tp = fig6[model]["TP"]
        fn = fig6[model]["FN"]
        lines.append(
            f"* **Figure 6 ({model}, SDSS)**: FN queries average "
            f"{fn[0]:.0f} words vs {tp[0]:.0f} for TP (counts {fn[2]} vs "
            f"{tp[2]}) — missed errors concentrate in long queries, as in "
            "the paper."
        )
    shares = results["fig7"].data["miss_rates"]
    sdss_rate = shares["gpt35/sdss"]
    lines.append(
        "* **Figure 7**: SDSS miss rates peak on type mismatches "
        f"(nested {sdss_rate['nested-mismatch']:.2f}, condition "
        f"{sdss_rate['condition-mismatch']:.2f}); SQLShare peaks on "
        "alias-ambiguous; Join-Order on nested-mismatch — the paper's "
        "per-workload ordering."
    )
    fig10 = results["fig10"].data["word_count"]
    lines.append(
        f"* **Figure 10 (MistralAI, performance_pred)**: FP queries average "
        f"{fig10['FP'][0]:.0f} words vs {fig10['TN'][0]:.0f} for TN — long "
        "cheap queries get falsely flagged as slow."
    )
    fig11 = results["fig11"].data["gpt35/sdss"]
    lines.append(
        f"* **Figure 11 (GPT3.5, SDSS query_equiv)**: FP pairs average "
        f"{fig11['FP'][0]:.0f} words vs {fig11['TP'][0]:.0f} for TP."
    )
    fig12 = results["fig12"].data["mistral/join_order"]
    lines.append(
        f"* **Figure 12 (MistralAI, Join-Order query_equiv)**: FP pairs "
        f"average {fig12['FP'][0]:.0f} predicates — failures concentrate "
        "in predicate-heavy queries."
    )
    lines.append("")

    lines.append("## Section 4.5: query explanation case study\n")
    lines.append("| Model | overlap F1 | flawed responses |")
    lines.append("|---|---|---|")
    for row in results["case45"].data["summary"]:
        lines.append(
            f"| {row['Model']} | {row['overlapF1']:.3f} | {row['flawed%']}% |"
        )
    lines.append("")
    lines.append(
        "The Q15-Q18 failures reproduce the paper's modes: context loss "
        "(reducing Q15/Q16 to bare counts), detail dropping (Q17's "
        "selected attributes) and superlative inversion (Q18's "
        "slowest-vs-fastest misreading)."
    )
    lines.append("")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - exercised via CLI
    path = Path(__file__).resolve().parents[3] / "EXPERIMENTS.md"
    path.write_text(build_experiments_markdown())
    print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
