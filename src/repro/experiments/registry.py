"""Registry mapping artifact ids to experiment functions.

Every experiment function takes an :class:`ExperimentRunner`, so the
whole paper grid inherits the runner's engine configuration — pass a
runner built with ``workers=N`` / ``cache_dir=...`` (or use the same
flags on :func:`run_all`) and all tables/figures evaluate through the
parallel sharded engine and its result cache.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional

from repro.evalfw.runner import ExperimentRunner
from repro.experiments import artifacts
from repro.experiments.artifacts import ExperimentResult

#: artifact id -> (description, function).
EXPERIMENTS: dict[str, tuple[str, Callable[[ExperimentRunner], ExperimentResult]]] = {
    "table1": ("Skill-to-task mapping", artifacts.table1_skill_map),
    "table2": ("Workload statistics overview", artifacts.table2_workload_stats),
    "fig1": ("SDSS statistics histograms", artifacts.fig1_sdss_stats),
    "fig2": ("SQLShare statistics histograms", artifacts.fig2_sqlshare_stats),
    "fig3": ("Join-Order statistics histograms", artifacts.fig3_joinorder_stats),
    "fig4": ("Pairwise property correlations", artifacts.fig4_correlations),
    "fig5": ("SDSS elapsed-time distribution", artifacts.fig5_elapsed_time),
    "table3": ("syntax_error accuracy", artifacts.table3_syntax_error),
    "fig6": ("word_count vs syntax_error failures", artifacts.fig6_syntax_wordcount),
    "fig7": ("FN share by syntax-error type", artifacts.fig7_syntax_type_fn),
    "table4": ("miss_token accuracy", artifacts.table4_miss_token),
    "fig8": ("miss_token failures vs properties", artifacts.fig8_miss_token_failures),
    "fig9": ("FN share by missing-token type", artifacts.fig9_token_type_fn),
    "table5": ("miss_token_loc MAE and hit rate", artifacts.table5_token_loc),
    "table6": ("performance_pred accuracy", artifacts.table6_performance),
    "fig10": ("MistralAI performance_pred failures", artifacts.fig10_perf_failures),
    "table7": ("query_equiv accuracy", artifacts.table7_query_equiv),
    "fig11": ("word_count vs query_equiv failures", artifacts.fig11_equiv_wordcount),
    "fig12": (
        "predicate_count vs query_equiv failures",
        artifacts.fig12_equiv_predicates,
    ),
    "case45": ("Query-explanation case study", artifacts.case_query_explanation),
}

ARTIFACT_IDS: tuple[str, ...] = tuple(EXPERIMENTS)


def run_experiment(
    artifact: str, runner: ExperimentRunner | None = None
) -> ExperimentResult:
    """Run one artifact reproduction (fresh runner if none is shared)."""
    try:
        _, function = EXPERIMENTS[artifact]
    except KeyError:
        raise KeyError(
            f"unknown artifact {artifact!r}; expected one of {sorted(EXPERIMENTS)}"
        ) from None
    return function(runner or ExperimentRunner())


def run_all(
    runner: ExperimentRunner | None = None,
    workers: int = 1,
    cache_dir: Optional[Path] = None,
) -> dict[str, ExperimentResult]:
    """Run every artifact with a shared runner (datasets cached once).

    When no runner is supplied, ``workers``/``cache_dir`` configure the
    engine the fresh runner evaluates through.
    """
    shared = runner or ExperimentRunner(workers=workers, cache_dir=cache_dir)
    try:
        return {
            artifact: function(shared)
            for artifact, (_, function) in EXPERIMENTS.items()
        }
    finally:
        if runner is None:
            shared.close()
