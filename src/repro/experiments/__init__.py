"""Experiment registry: one entry per paper table and figure."""

from repro.experiments.artifacts import ExperimentResult
from repro.experiments.registry import (
    ARTIFACT_IDS,
    EXPERIMENTS,
    run_all,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "ARTIFACT_IDS",
    "run_experiment",
    "run_all",
]
