"""Reference values transcribed from the paper's tables.

Used by the benchmark harness and EXPERIMENTS.md generator to print
paper-vs-measured comparisons.  Keys: (model display name, workload) ->
(precision, recall, f1); Table 5 carries (MAE, hit rate).
"""

from __future__ import annotations

#: Table 3 (top): syntax_error.
PAPER_TABLE3_BINARY: dict[tuple[str, str], tuple[float, float, float]] = {
    ("GPT4", "sdss"): (0.98, 0.95, 0.97),
    ("GPT4", "sqlshare"): (0.94, 0.93, 0.93),
    ("GPT4", "join_order"): (0.95, 0.91, 0.93),
    ("GPT3.5", "sdss"): (0.94, 0.85, 0.89),
    ("GPT3.5", "sqlshare"): (0.91, 0.86, 0.89),
    ("GPT3.5", "join_order"): (0.93, 0.81, 0.86),
    ("Llama3", "sdss"): (0.95, 0.76, 0.84),
    ("Llama3", "sqlshare"): (0.92, 0.81, 0.86),
    ("Llama3", "join_order"): (0.95, 0.65, 0.77),
    ("MistralAI", "sdss"): (0.93, 0.91, 0.92),
    ("MistralAI", "sqlshare"): (0.92, 0.91, 0.92),
    ("MistralAI", "join_order"): (0.85, 0.94, 0.89),
    ("Gemini", "sdss"): (0.94, 0.70, 0.80),
    ("Gemini", "sqlshare"): (0.97, 0.53, 0.68),
    ("Gemini", "join_order"): (0.84, 0.61, 0.70),
}

#: Table 3 (bottom): syntax_error_type (weighted).
PAPER_TABLE3_TYPED: dict[tuple[str, str], tuple[float, float, float]] = {
    ("GPT4", "sdss"): (0.96, 0.95, 0.95),
    ("GPT4", "sqlshare"): (0.89, 0.88, 0.88),
    ("GPT4", "join_order"): (0.90, 0.89, 0.89),
    ("GPT3.5", "sdss"): (0.87, 0.85, 0.85),
    ("GPT3.5", "sqlshare"): (0.85, 0.82, 0.83),
    ("GPT3.5", "join_order"): (0.83, 0.78, 0.78),
    ("Llama3", "sdss"): (0.83, 0.79, 0.79),
    ("Llama3", "sqlshare"): (0.79, 0.76, 0.76),
    ("Llama3", "join_order"): (0.78, 0.67, 0.64),
    ("MistralAI", "sdss"): (0.90, 0.88, 0.89),
    ("MistralAI", "sqlshare"): (0.81, 0.80, 0.79),
    ("MistralAI", "join_order"): (0.86, 0.81, 0.82),
    ("Gemini", "sdss"): (0.81, 0.74, 0.73),
    ("Gemini", "sqlshare"): (0.73, 0.60, 0.58),
    ("Gemini", "join_order"): (0.68, 0.53, 0.52),
}

#: Table 4 (top): miss_token.
PAPER_TABLE4_BINARY: dict[tuple[str, str], tuple[float, float, float]] = {
    ("GPT4", "sdss"): (0.99, 0.97, 0.98),
    ("GPT4", "sqlshare"): (0.98, 0.96, 0.97),
    ("GPT4", "join_order"): (1.00, 0.97, 0.99),
    ("GPT3.5", "sdss"): (0.92, 0.92, 0.92),
    ("GPT3.5", "sqlshare"): (0.97, 0.88, 0.93),
    ("GPT3.5", "join_order"): (0.98, 0.94, 0.96),
    ("Llama3", "sdss"): (0.96, 0.94, 0.95),
    ("Llama3", "sqlshare"): (0.91, 0.92, 0.91),
    ("Llama3", "join_order"): (0.97, 0.94, 0.96),
    ("MistralAI", "sdss"): (0.99, 0.86, 0.92),
    ("MistralAI", "sqlshare"): (0.96, 0.87, 0.91),
    ("MistralAI", "join_order"): (1.00, 0.94, 0.97),
    ("Gemini", "sdss"): (0.99, 0.76, 0.86),
    ("Gemini", "sqlshare"): (0.98, 0.68, 0.80),
    ("Gemini", "join_order"): (0.97, 0.69, 0.81),
}

#: Table 4 (bottom): miss_token_type (weighted).
PAPER_TABLE4_TYPED: dict[tuple[str, str], tuple[float, float, float]] = {
    ("GPT4", "sdss"): (0.94, 0.94, 0.94),
    ("GPT4", "sqlshare"): (0.91, 0.89, 0.90),
    ("GPT4", "join_order"): (0.98, 0.97, 0.98),
    ("GPT3.5", "sdss"): (0.76, 0.75, 0.75),
    ("GPT3.5", "sqlshare"): (0.75, 0.71, 0.73),
    ("GPT3.5", "join_order"): (0.84, 0.82, 0.82),
    ("Llama3", "sdss"): (0.88, 0.85, 0.86),
    ("Llama3", "sqlshare"): (0.78, 0.69, 0.72),
    ("Llama3", "join_order"): (0.87, 0.82, 0.84),
    ("MistralAI", "sdss"): (0.89, 0.85, 0.86),
    ("MistralAI", "sqlshare"): (0.82, 0.75, 0.78),
    ("MistralAI", "join_order"): (0.93, 0.88, 0.90),
    ("Gemini", "sdss"): (0.63, 0.63, 0.54),
    ("Gemini", "sqlshare"): (0.75, 0.53, 0.57),
    ("Gemini", "join_order"): (0.44, 0.60, 0.39),
}

#: Table 5: miss_token_loc — (MAE, hit rate).
PAPER_TABLE5_LOCATION: dict[tuple[str, str], tuple[float, float]] = {
    ("GPT4", "sdss"): (4.69, 0.56),
    ("GPT4", "sqlshare"): (3.96, 0.63),
    ("GPT4", "join_order"): (3.45, 0.57),
    ("GPT3.5", "sdss"): (17.71, 0.25),
    ("GPT3.5", "sqlshare"): (7.71, 0.42),
    ("GPT3.5", "join_order"): (14.31, 0.39),
    ("Llama3", "sdss"): (15.60, 0.33),
    ("Llama3", "sqlshare"): (7.57, 0.40),
    ("Llama3", "join_order"): (13.11, 0.39),
    ("MistralAI", "sdss"): (18.09, 0.36),
    ("MistralAI", "sqlshare"): (8.58, 0.42),
    ("MistralAI", "join_order"): (9.92, 0.40),
    ("Gemini", "sdss"): (19.78, 0.34),
    ("Gemini", "sqlshare"): (9.79, 0.38),
    ("Gemini", "join_order"): (20.22, 0.32),
}

#: Table 6: performance_pred (SDSS).
PAPER_TABLE6: dict[str, tuple[float, float, float]] = {
    "GPT4": (0.88, 0.93, 0.90),
    "GPT3.5": (0.81, 0.83, 0.85),
    "Llama3": (0.76, 0.90, 0.82),
    "MistralAI": (0.47, 0.90, 0.62),
    "Gemini": (0.71, 0.73, 0.72),
}

#: Table 7 (top): query_equiv.
PAPER_TABLE7_BINARY: dict[tuple[str, str], tuple[float, float, float]] = {
    ("GPT4", "sdss"): (0.98, 1.00, 0.99),
    ("GPT4", "sqlshare"): (0.97, 1.00, 0.99),
    ("GPT4", "join_order"): (0.91, 1.00, 0.95),
    ("GPT3.5", "sdss"): (0.87, 0.99, 0.93),
    ("GPT3.5", "sqlshare"): (0.96, 1.00, 0.98),
    ("GPT3.5", "join_order"): (0.83, 0.99, 0.90),
    ("Llama3", "sdss"): (0.88, 1.00, 0.93),
    ("Llama3", "sqlshare"): (0.94, 0.98, 0.96),
    ("Llama3", "join_order"): (0.87, 0.99, 0.93),
    ("MistralAI", "sdss"): (0.95, 0.95, 0.95),
    ("MistralAI", "sqlshare"): (0.95, 0.93, 0.94),
    ("MistralAI", "join_order"): (0.86, 0.89, 0.88),
    ("Gemini", "sdss"): (0.84, 0.97, 0.90),
    ("Gemini", "sqlshare"): (0.92, 0.99, 0.95),
    ("Gemini", "join_order"): (0.85, 0.96, 0.90),
}

#: Table 7 (bottom): query_equiv_type (weighted).
PAPER_TABLE7_TYPED: dict[tuple[str, str], tuple[float, float, float]] = {
    ("GPT4", "sdss"): (0.99, 0.99, 0.99),
    ("GPT4", "sqlshare"): (0.98, 0.98, 0.98),
    ("GPT4", "join_order"): (0.95, 0.85, 0.83),
    ("GPT3.5", "sdss"): (0.97, 0.91, 0.91),
    ("GPT3.5", "sqlshare"): (0.96, 0.92, 0.94),
    ("GPT3.5", "join_order"): (0.90, 0.78, 0.77),
    ("Llama3", "sdss"): (0.97, 0.85, 0.86),
    ("Llama3", "sqlshare"): (0.93, 0.88, 0.89),
    ("Llama3", "join_order"): (0.93, 0.81, 0.80),
    ("MistralAI", "sdss"): (0.85, 0.76, 0.80),
    ("MistralAI", "sqlshare"): (0.92, 0.88, 0.89),
    ("MistralAI", "join_order"): (0.84, 0.68, 0.68),
    ("Gemini", "sdss"): (0.86, 0.72, 0.71),
    ("Gemini", "sqlshare"): (0.91, 0.85, 0.87),
    ("Gemini", "join_order"): (0.87, 0.77, 0.75),
}

#: Table 2 reference rows (subset the reproduction matches exactly).
PAPER_TABLE2: dict[str, dict[str, int]] = {
    "SDSS": {"sampled": 285, "agg_yes": 21, "agg_no": 264},
    "SQLShare": {"sampled": 250, "agg_yes": 59, "agg_no": 192},
    "Join-Order": {
        "sampled": 157,
        "SELECT": 113,
        "CREATE": 44,
        "agg_yes": 119,
        "agg_no": 38,
    },
    "Spider": {"sampled": 200, "SELECT": 200, "agg_yes": 96, "agg_no": 104},
}

#: Figure 5 reference: elapsed-time histogram (ms buckets).
PAPER_FIG5: dict[str, int] = {
    "0-100": 244,
    "100-200": 0,
    "200-300": 0,
    "300-400": 0,
    "400-500": 0,
    "500+": 41,
}
