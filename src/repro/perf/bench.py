"""Hot-path performance benchmark (``repro bench``).

Measures the three hot paths the engine's wall time is made of and
writes the numbers to ``benchmarks/BENCH_hotpaths.json`` so a reviewer
can see what a change shipped with:

* **lexer / parser throughput** — raw (uncached) tokenize and parse
  rates over the combined query corpus of the three SQL-log workloads,
  plus the memoized rates when the analysis cache is available;
* **rewrite throughput** — catalog transform chains (clone, seed,
  apply, render) per second over a fixed synthetic corpus, the hot
  path of the rewrite-pair generator;
* **dataset build** — serial construction of every (task, workload)
  dataset of the paper grid;
* **grid wall time** — the full grid (all models x all tasks x their
  workloads) cold in-process, cold through a worker pool with an empty
  cache, and warm from the on-disk cache; parallel answers are checked
  byte-identical to the serial ones.

The JSON keeps a ``before`` and an ``after`` section (``--phase``)
so a perf change records its own speedup.  ``--quick`` caps the grid
for CI smoke use; ``--check`` fails loudly when a quick run regresses
past generous (3x) thresholds — a guard against silent hot-path
regressions that stays robust to CI hardware noise.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional

#: Grid evaluated by the benchmark: every primary task over its
#: paper workloads (imported lazily to keep module import cheap).
BENCH_TASKS: tuple[str, ...] = (
    "syntax_error",
    "miss_token",
    "query_equiv",
    "performance_pred",
    "query_exp",
)

#: The three SQL-log workloads whose queries form the lexer/parser corpus.
CORPUS_WORKLOADS: tuple[str, ...] = ("sdss", "sqlshare", "join_order")

#: Instance cap used by ``--quick`` (CI smoke mode).
QUICK_MAX_INSTANCES = 25

#: Fixed-size corpus for the rewrite-throughput measurement.  Like the
#: lexer/parser corpus it does not scale with ``--quick``, so a quick
#: CI run stays comparable to the committed full-run baseline.
REWRITE_CORPUS_WORKLOAD = "synthetic:rewrite:n=40"

#: Chain depth used by the rewrite measurement (the hard-positive
#: depth the pair generator uses).
REWRITE_CHAIN_STEPS = 3

#: ``--check`` thresholds for quick mode.  Values are ~3x worse than
#: what a cold CI container measures with the shipped code, so they trip
#: on real hot-path regressions (an accidentally quadratic lexer, a
#: cache that stopped hitting) but not on hardware noise.
QUICK_MAX_WARM_GRID_S = 6.0
QUICK_MIN_PARSE_TEXTS_PER_S = 150.0


def _default_out() -> Path:
    return Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_hotpaths.json"


def _reset_process_caches() -> None:
    """Drop memoized parse/analysis state so each phase measures cold.

    On code bases without the analysis cache this is a no-op, which
    keeps the benchmark runnable on a pre-cache checkout for ``before``
    numbers.
    """
    try:
        from repro.sql import analysis_cache
    except ImportError:
        return
    analysis_cache.reset_caches()


def _verify_raw_work(texts: list[str]) -> Optional[bool]:
    """Prove "raw" numbers cannot be silently served from the memo layer.

    After a full cache clear, one sweep through the cached entry points
    must advance the raw-work counters by at least one unit per
    *distinct* text (real corpora repeat texts; repeats are legitimate
    memo hits) — if it does not, the clear is broken (or the counters
    are), and every "raw" throughput number in this file would be a
    lie.  Returns None on code bases without the analysis cache.
    """
    try:
        from repro.sql import analysis_cache
    except ImportError:
        return None
    distinct = len(set(texts))
    analysis_cache.clear_caches()
    for text in texts:
        analysis_cache.tokenize_cached(text)
        analysis_cache.try_parse_cached(text)
    counts = analysis_cache.counters()
    return counts.raw_tokenizes >= distinct and counts.raw_parses >= distinct


def _corpus(seed: int) -> list[str]:
    from repro.workloads import load_workload

    texts: list[str] = []
    for name in CORPUS_WORKLOADS:
        texts.extend(q.text for q in load_workload(name, seed).queries)
    return texts


def _best_of(repeats: int, fn, setup=None) -> float:
    """Best wall time of *repeats* runs; *setup* runs untimed before each.

    Raw (cold) measurements pass ``setup=_reset_process_caches`` so that
    every repetition starts from an empty memo layer — without it, any
    delegation from the "raw" functions into the process-wide caches
    would silently turn repetitions 2..n into warm-path measurements.
    """
    best = float("inf")
    for _ in range(repeats):
        if setup is not None:
            setup()
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _warm_loops(corpus_size: int, target_lookups: int = 300_000) -> int:
    """How many corpus sweeps a warm-path timing needs to be measurable.

    One memoized sweep of the ~700-text corpus finishes in under 100µs —
    timer-granularity territory, where a single scheduler hiccup swings
    the "measured" throughput several-fold (and with it, any baseline
    ratio computed from it).  Looping to ~300k lookups puts the timed
    region in the tens of milliseconds, where the number is stable even
    on a loaded single-CPU container.
    """
    return max(1, round(target_lookups / max(1, corpus_size)))


#: Repetitions for the warm (memoized) timings.  The timed region is
#: tens of milliseconds, so extra best-of repetitions are nearly free
#: and squeeze scheduler hiccups out of the baseline-gated numbers.
WARM_REPEATS = 5


def measure_lexer(texts: list[str], repeats: int = 3) -> dict:
    """Raw tokenize throughput (and memoized, when the cache exists)."""
    from repro.sql.lexer import tokenize

    total_tokens = sum(len(tokenize(text)) for text in texts)
    total_chars = sum(len(text) for text in texts)
    seconds = _best_of(
        repeats,
        lambda: [tokenize(text) for text in texts],
        setup=_reset_process_caches,
    )
    result = {
        "texts": len(texts),
        "tokens": total_tokens,
        "chars": total_chars,
        "raw_s": round(seconds, 4),
        "raw_tokens_per_s": round(total_tokens / seconds) if seconds else None,
        "raw_texts_per_s": round(len(texts) / seconds, 1) if seconds else None,
    }
    verified = _verify_raw_work(texts)
    if verified is not None:
        result["raw_counters_advance"] = verified
    try:
        from repro.sql.analysis_cache import tokenize_cached
    except ImportError:
        return result
    _reset_process_caches()
    for text in texts:  # populate
        tokenize_cached(text)
    loops = _warm_loops(len(texts))
    warm = _best_of(
        max(repeats, WARM_REPEATS),
        lambda: [tokenize_cached(text) for _ in range(loops) for text in texts],
    )
    result["cached_s"] = round(warm / loops, 6)
    result["cached_texts_per_s"] = (
        round(len(texts) * loops / warm, 1) if warm else None
    )
    return result


def measure_parser(texts: list[str], repeats: int = 3) -> dict:
    """Raw try_parse throughput (and memoized, when the cache exists)."""
    from repro.sql.parser import try_parse

    parsed = sum(1 for text in texts if try_parse(text) is not None)
    seconds = _best_of(
        repeats,
        lambda: [try_parse(text) for text in texts],
        setup=_reset_process_caches,
    )
    result = {
        "texts": len(texts),
        "parsed": parsed,
        "raw_s": round(seconds, 4),
        "raw_texts_per_s": round(len(texts) / seconds, 1) if seconds else None,
    }
    verified = _verify_raw_work(texts)
    if verified is not None:
        result["raw_counters_advance"] = verified
    try:
        from repro.sql.analysis_cache import try_parse_cached
    except ImportError:
        return result
    _reset_process_caches()
    for text in texts:
        try_parse_cached(text)
    loops = _warm_loops(len(texts))
    warm = _best_of(
        max(repeats, WARM_REPEATS),
        lambda: [try_parse_cached(text) for _ in range(loops) for text in texts],
    )
    result["cached_s"] = round(warm / loops, 6)
    result["cached_texts_per_s"] = (
        round(len(texts) * loops / warm, 1) if warm else None
    )
    return result


def measure_rewrite(seed: int, repeats: int = 3) -> dict:
    """Catalog transform throughput: rewrite chains applied per second.

    Times the full per-query pipeline the rewrite-pair generator runs —
    clone, opportunity seeding, chain application, rendering — so the
    number tracks what producing one rewritten query costs end to end.
    The per-query RNG is re-seeded deterministically, so every timed
    repetition performs identical work.
    """
    import random

    from repro.rewrite.catalog import apply_rewrite_chain
    from repro.rewrite.pairs import seed_rewrite_sites
    from repro.sql.nodes import clone
    from repro.workloads import load_workload

    workload = load_workload(REWRITE_CORPUS_WORKLOAD, seed)
    corpus = [(q, workload.schema_for(q)) for q in workload.select_queries()]

    def sweep() -> tuple[int, int]:
        chains = steps = 0
        for index, (query, schema) in enumerate(corpus):
            rng = random.Random(seed * 10_007 + index)
            base = clone(query.statement)
            seed_rewrite_sites(base, schema, rng)
            chain = apply_rewrite_chain(
                base, schema, rng, max_steps=REWRITE_CHAIN_STEPS
            )
            if chain is not None:
                chains += 1
                steps += len(chain.steps)
        return chains, steps

    chains, steps = sweep()
    seconds = _best_of(repeats, sweep)
    return {
        "queries": len(corpus),
        "chains": chains,
        "steps": steps,
        "raw_s": round(seconds, 4),
        "chains_per_s": round(chains / seconds, 1) if seconds else None,
        "rewrites_per_s": round(steps / seconds, 1) if seconds else None,
    }


def _grid_answers(grids: dict) -> dict:
    """Flatten grids to {(task, model, workload): answers} for identity checks."""
    return {
        (task, model, workload): cell.answers
        for task, grid in grids.items()
        for (model, workload), cell in grid.items()
    }


def _run_grid(runner, tasks: tuple[str, ...]) -> dict:
    return {task: runner.run_task(task) for task in tasks}


def measure_grid(
    workers: int,
    max_instances: Optional[int],
    seed: int,
    tasks: tuple[str, ...] = BENCH_TASKS,
) -> dict:
    """Serial cold vs parallel cold (empty cache) vs warm cache wall time."""
    import shutil
    import tempfile

    from repro.evalfw.runner import ExperimentRunner

    result: dict = {"tasks": list(tasks)}

    # Dataset build, measured on its own: the dominant cost of a cold run.
    _reset_process_caches()
    build_runner = ExperimentRunner(seed=seed, max_instances=max_instances)
    from repro.tasks.registry import TASK_WORKLOADS

    started = time.perf_counter()
    for task in tasks:
        for workload in TASK_WORKLOADS[task]:
            build_runner.dataset(task, workload)
    result["dataset_build_s"] = round(time.perf_counter() - started, 3)
    # Evaluation on the already-built datasets (the other half of "cold").
    started = time.perf_counter()
    serial_grids = _run_grid(build_runner, tasks)
    result["serial_eval_s"] = round(time.perf_counter() - started, 3)
    result["serial_cold_s"] = round(
        result["dataset_build_s"] + result["serial_eval_s"], 3
    )
    result["cells"] = sum(len(grid) for grid in serial_grids.values())
    result["instances"] = sum(
        len(cell.dataset)
        for grid in serial_grids.values()
        for cell in grid.values()
    )
    build_runner.close()
    reference = _grid_answers(serial_grids)

    # Cold parallel: worker pool + empty on-disk cache, like a first
    # `repro run all --workers N` on a fresh checkout.
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-bench-hotpaths-"))
    try:
        _reset_process_caches()
        cold = ExperimentRunner(
            seed=seed,
            max_instances=max_instances,
            workers=workers,
            cache_dir=cache_dir,
        )
        try:
            started = time.perf_counter()
            parallel_grids = _run_grid(cold, tasks)
            result["parallel_cold_s"] = round(time.perf_counter() - started, 3)
        finally:
            cold.close()
        result["identical"] = _grid_answers(parallel_grids) == reference

        # Warm: every cell served from the cache, no model calls at all.
        _reset_process_caches()
        warm = ExperimentRunner(
            seed=seed,
            max_instances=max_instances,
            cache_dir=cache_dir,
        )
        try:
            started = time.perf_counter()
            warm_grids = _run_grid(warm, tasks)
            result["warm_s"] = round(time.perf_counter() - started, 4)
        finally:
            warm.close()
        result["warm_identical"] = _grid_answers(warm_grids) == reference
        result["warm_cached_cells"] = warm.engine.cached_cells
        result["warm_computed_cells"] = warm.engine.computed_cells
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return result


def measure(
    workers: int = 4,
    max_instances: Optional[int] = None,
    seed: int = 0,
    tasks: tuple[str, ...] = BENCH_TASKS,
) -> dict:
    """Run the full hot-path measurement suite for one phase."""
    texts = _corpus(seed)
    measurements = {
        "lexer": measure_lexer(texts),
        "parser": measure_parser(texts),
        "rewrite": measure_rewrite(seed),
        "grid": measure_grid(workers, max_instances, seed, tasks),
    }
    return measurements


def _speedups(before: dict, after: dict) -> dict:
    """Before/after ratios for the headline numbers (higher = faster)."""

    def ratio(path: tuple[str, ...], invert: bool = False) -> Optional[float]:
        b, a = before, after
        for key in path:
            if not isinstance(b, dict) or not isinstance(a, dict):
                return None
            b, a = b.get(key), a.get(key)
        if not isinstance(b, (int, float)) or not isinstance(a, (int, float)):
            return None
        if invert:
            b, a = a, b
        return round(b / a, 2) if a else None

    return {
        "dataset_build": ratio(("grid", "dataset_build_s")),
        "serial_cold": ratio(("grid", "serial_cold_s")),
        "parallel_cold": ratio(("grid", "parallel_cold_s")),
        "warm": ratio(("grid", "warm_s")),
        "lexer_raw_throughput": ratio(
            ("lexer", "raw_tokens_per_s"), invert=True
        ),
        "parser_raw_throughput": ratio(
            ("parser", "raw_texts_per_s"), invert=True
        ),
        "rewrite_throughput": ratio(
            ("rewrite", "rewrites_per_s"), invert=True
        ),
    }


#: Metrics compared by :func:`check_against_baseline`.  Only corpus
#: throughput rates qualify: they are independent of ``--quick``'s grid
#: scaling (the lex/parse corpus is always the full three SQL-log
#: workloads, the rewrite corpus a fixed synthetic workload), so a
#: quick CI run is comparable to the committed full-run baseline.
BASELINE_METRICS: tuple[tuple[str, str], ...] = (
    ("lexer", "raw_tokens_per_s"),
    ("lexer", "cached_texts_per_s"),
    ("parser", "raw_texts_per_s"),
    ("parser", "cached_texts_per_s"),
    ("rewrite", "rewrites_per_s"),
)

#: Allowed per-metric regression vs the baseline, after normalizing out
#: overall runner speed (see :func:`check_against_baseline`).
BASELINE_TOLERANCE = 0.2


def check_against_baseline(
    measurements: dict, baseline: dict, tolerance: float = BASELINE_TOLERANCE
) -> list[str]:
    """Ratio-based regression check vs a committed baseline measurement.

    CI runners are not the machine that recorded the baseline, so
    absolute comparisons are meaningless.  Instead, each throughput
    metric's now/baseline ratio is divided by the *median* ratio across
    all metrics: a uniformly slower (or faster) machine moves every
    ratio equally, normalizing to ~1.0, while a regression in one hot
    path drags only its own normalized ratio down.  A metric fails when
    its normalized ratio drops below ``1 - tolerance``.

    Returns a list of human-readable failure strings (empty = pass).
    """
    from statistics import median

    ratios: dict[str, float] = {}
    for section, key in BASELINE_METRICS:
        now = measurements.get(section, {}).get(key)
        base = baseline.get(section, {}).get(key)
        if (
            isinstance(now, (int, float))
            and isinstance(base, (int, float))
            and base > 0
        ):
            ratios[f"{section}.{key}"] = now / base
    if not ratios:
        return ["baseline holds no comparable throughput metrics"]
    speed = median(ratios.values())
    if speed <= 0:
        return [f"degenerate baseline ratios: {ratios}"]
    failures = []
    floor = 1.0 - tolerance
    for name, ratio in sorted(ratios.items()):
        normalized = ratio / speed
        if normalized < floor:
            failures.append(
                f"{name}: {ratio:.2f}x of baseline "
                f"({normalized:.2f}x after normalizing out runner speed "
                f"{speed:.2f}x; floor {floor:.2f})"
            )
    return failures


def run_bench(
    phase: str = "after",
    workers: int = 4,
    max_instances: Optional[int] = None,
    seed: int = 0,
    out: Optional[Path] = None,
    quick: bool = False,
    check: bool = False,
    check_baseline: bool = False,
) -> int:
    """Measure one phase, merge into the BENCH JSON, optionally check.

    Returns a process exit code (0 = ok, 1 = identity or threshold
    failure).
    """
    out = Path(out) if out is not None else _default_out()
    if quick and max_instances is None:
        max_instances = QUICK_MAX_INSTANCES

    payload: dict = {}
    if out.exists():
        try:
            payload = json.loads(out.read_text())
        except ValueError:
            payload = {}
    # The committed "after" section is the baseline for --check-baseline;
    # capture it before this run's measurements overwrite the phase.
    baseline = payload.get("after", {})

    measurements = measure(workers, max_instances, seed)
    try:
        cpus_available: Optional[int] = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        cpus_available = None
    payload.update(
        {
            "workers": workers,
            "max_instances": max_instances,
            "seed": seed,
            "cpu_count": os.cpu_count(),
            "cpus_available": cpus_available,
        }
    )
    payload[phase] = measurements
    if "before" in payload and "after" in payload:
        payload["speedup"] = _speedups(payload["before"], payload["after"])
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    grid = measurements["grid"]
    print(f"corpus          : {measurements['lexer']['texts']} texts, "
          f"{measurements['lexer']['tokens']} tokens")
    print(f"lexer raw       : {measurements['lexer']['raw_s']:.3f}s "
          f"({measurements['lexer']['raw_tokens_per_s']} tokens/s)")
    print(f"parser raw      : {measurements['parser']['raw_s']:.3f}s "
          f"({measurements['parser']['raw_texts_per_s']} texts/s)")
    rewrite = measurements["rewrite"]
    print(f"rewrite chains  : {rewrite['raw_s']:.3f}s "
          f"({rewrite['rewrites_per_s']} rewrites/s over "
          f"{rewrite['queries']} queries)")
    print(f"dataset build   : {grid['dataset_build_s']:.3f}s")
    print(f"serial cold     : {grid['serial_cold_s']:.3f}s "
          f"({grid['cells']} cells, {grid['instances']} instances)")
    print(f"parallel cold   : {grid['parallel_cold_s']:.3f}s "
          f"(workers={workers}, identical={grid['identical']})")
    print(f"warm cache      : {grid['warm_s']:.4f}s "
          f"({grid['warm_cached_cells']} cached, "
          f"{grid['warm_computed_cells']} computed)")
    if "speedup" in payload:
        print(f"speedup         : {json.dumps(payload['speedup'])}")
    print(f"wrote {out}")

    code = 0
    if not grid["identical"] or not grid["warm_identical"]:
        print("FAIL: parallel/cached answers differ from serial", flush=True)
        code = 1
    for section in ("lexer", "parser"):
        if measurements[section].get("raw_counters_advance") is False:
            print(
                f"FAIL: {section} raw counters did not advance after "
                "clear_caches() — raw numbers may be cache-served"
            )
            code = 1
    if not measurements["rewrite"]["chains"]:
        print(
            "FAIL: rewrite benchmark applied no chains — the corpus or "
            "the opportunity seeders are broken"
        )
        code = 1
    if check_baseline:
        failures = check_against_baseline(measurements, baseline)
        if failures:
            for failure in failures:
                print(f"FAIL: baseline regression — {failure}")
            code = 1
        else:
            print(
                f"baseline check  : ok ({len(BASELINE_METRICS)} throughput "
                f"metrics within {BASELINE_TOLERANCE:.0%} after speed "
                "normalization)"
            )
    if check:
        parse_rate = measurements["parser"]["raw_texts_per_s"] or 0.0
        if grid["warm_s"] > QUICK_MAX_WARM_GRID_S:
            print(
                f"FAIL: warm-cache grid took {grid['warm_s']:.2f}s "
                f"(threshold {QUICK_MAX_WARM_GRID_S}s)"
            )
            code = 1
        if parse_rate < QUICK_MIN_PARSE_TEXTS_PER_S:
            print(
                f"FAIL: raw parse throughput {parse_rate:.0f} texts/s "
                f"(threshold {QUICK_MIN_PARSE_TEXTS_PER_S})"
            )
            code = 1
        if code == 0:
            print("check           : ok (thresholds are ~3x headroom)")
    return code
