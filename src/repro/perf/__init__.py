"""Performance substrate: SDSS runtime simulation and cost labeling."""

from repro.perf.cost_model import (
    HIGH_COST_THRESHOLD_MS,
    PAPER_COSTLY_FRACTION,
    base_cost_ms,
    is_high_cost,
    simulate_elapsed_ms,
)

__all__ = [
    "HIGH_COST_THRESHOLD_MS",
    "PAPER_COSTLY_FRACTION",
    "base_cost_ms",
    "is_high_cost",
    "simulate_elapsed_ms",
]
