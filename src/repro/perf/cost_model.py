"""Analytical runtime cost model for SDSS queries.

The paper's performance_pred task uses ground-truth elapsed times from the
SDSS query log; Figure 5 shows a strongly bimodal distribution — 244 of
285 sampled queries finish under 100 ms and 41 take 500+ ms — and the
paper labels queries above 200 ms as "high cost".

Without the proprietary log we synthesise elapsed times with a cost model
whose drivers match the paper's observations: joins, nesting, predicate
volume and scanned-table width push queries over the knee, with a heavy
tail for the expensive class and measurement noise everywhere.  The model
reproduces the Figure 5 histogram shape and gives performance_pred a
learnable-but-imperfect signal, exactly the role the real log played.
"""

from __future__ import annotations

import math
import random

from repro.sql.properties import QueryProperties

#: The paper's cost threshold (section 3.2): > 200 ms means high cost.
HIGH_COST_THRESHOLD_MS = 200.0

#: Target share of costly queries in the SDSS sample (41 / 285, Figure 5).
PAPER_COSTLY_FRACTION = 41 / 285


def base_cost_ms(props: QueryProperties) -> float:
    """Deterministic part of the cost model (milliseconds).

    Cheap queries (single table, few predicates) land well under 100 ms.
    The exponential join/nesting terms create the bimodal gap: queries
    combining several joins with deep nesting or very wide scans jump
    past 500 ms, mirroring Figure 5's empty 100-500 ms valley.
    """
    cost = 4.0
    cost += 0.05 * props.word_count
    cost += 5.0 * props.table_count
    cost += 2.0 * props.predicate_count
    cost += 1.0 * props.column_count
    cost += 1.0 * props.function_count
    # Joins and nesting interact multiplicatively — the expensive class.
    join_pressure = props.join_count + 1.6 * props.nestedness
    if join_pressure >= 3:
        cost += 90.0 * math.pow(1.9, min(join_pressure - 2, 5))
    if props.aggregate and props.table_count >= 2:
        cost += 60.0
    return cost


def simulate_elapsed_ms(props: QueryProperties, rng: random.Random) -> float:
    """Base cost perturbed by multiplicative log-normal noise."""
    noise = math.exp(rng.gauss(0.0, 0.28))
    elapsed = base_cost_ms(props) * noise
    # Occasional server-side hiccups give even cheap queries a thin tail.
    if rng.random() < 0.012:
        elapsed += rng.uniform(300.0, 900.0)
    return round(elapsed, 2)


def is_high_cost(elapsed_ms: float) -> bool:
    """The paper's labeling rule: > 200 ms is the positive (costly) class."""
    return elapsed_ms > HIGH_COST_THRESHOLD_MS
