"""Structural corruption: AST-level perturbations beyond the paper's six.

The paper's error types are *semantic* (the text still parses); the
classes here break queries at the structural level instead, which only
becomes tractable once queries are held as ASTs (the synthetic workload
family generates ASTs directly):

* ``clause-order`` — two top-level SELECT clauses rendered in swapped
  order (``GROUP BY`` before ``WHERE``, or ``ORDER BY`` before
  ``WHERE``), the classic write-from-memory mistake;
* ``dangling-alias`` — a table's alias definition is dropped from FROM
  while alias-qualified references stay behind, leaving them resolving
  nowhere;
* ``paren-imbalance`` — a subquery loses its closing parenthesis (the
  off-by-one every hand-edited nested query risks), making the text
  unparseable.

Each injector runs through the shared transform layer
(:mod:`repro.sql.transform`): it receives a clone, mutates or
re-renders, and returns corrupted *text* plus labels, mirroring
:mod:`repro.corrupt.syntax_errors`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.schema.model import Schema
from repro.sql import nodes as n
from repro.sql.render import Renderer, render
from repro.sql.transform import (
    applicable_types,
    apply_typed_transform,
    outer_core,
    sample_order,
)

CLAUSE_ORDER = "clause-order"
DANGLING_ALIAS = "dangling-alias"
PAREN_IMBALANCE = "paren-imbalance"

#: The structural error types, in presentation order.
STRUCTURAL_TYPES: tuple[str, ...] = (CLAUSE_ORDER, DANGLING_ALIAS, PAREN_IMBALANCE)


@dataclass
class StructuralCorruption:
    """A structurally corrupted query and the label it carries."""

    text: str
    error_type: str
    detail: str
    original_text: str


def _corrupt_clause_order(
    statement: n.Statement, schema: Optional[Schema], rng: random.Random
) -> Optional[tuple[str, str]]:
    """Render the outer core with two clauses swapped."""
    core = outer_core(statement)
    if core is None or not core.from_items:
        return None
    renderer = Renderer()
    clauses: list[tuple[str, str]] = [
        (
            "SELECT",
            "SELECT "
            + ("DISTINCT " if core.distinct else "")
            + ", ".join(renderer._select_item(item) for item in core.items),
        ),
        (
            "FROM",
            "FROM " + ", ".join(renderer._table_ref(ref) for ref in core.from_items),
        ),
    ]
    if core.where is not None:
        clauses.append(("WHERE", f"WHERE {renderer.render_expr(core.where)}"))
    if core.group_by:
        clauses.append(
            (
                "GROUP BY",
                "GROUP BY " + ", ".join(renderer.render_expr(e) for e in core.group_by),
            )
        )
    if core.having is not None:
        clauses.append(("HAVING", f"HAVING {renderer.render_expr(core.having)}"))
    if core.order_by:
        clauses.append(
            (
                "ORDER BY",
                "ORDER BY " + ", ".join(renderer._order_item(i) for i in core.order_by),
            )
        )
    # Swappable pairs that genuinely misorder SQL (never SELECT itself
    # leading, which would merely be the original).
    candidates = [
        (i, j)
        for i in range(1, len(clauses))
        for j in range(i + 1, len(clauses))
    ]
    if not candidates:
        return None
    first, second = rng.choice(candidates)
    swapped = f"{clauses[first][0]}/{clauses[second][0]}"
    clauses[first], clauses[second] = clauses[second], clauses[first]
    return " ".join(text for _, text in clauses), f"clauses {swapped} swapped"


def _corrupt_dangling_alias(
    statement: n.Statement, schema: Optional[Schema], rng: random.Random
) -> Optional[tuple[str, str]]:
    """Drop one alias definition whose qualified references remain."""
    used_aliases = {
        node.table.lower()
        for node in n.walk(statement)
        if isinstance(node, n.ColumnRef) and node.table is not None
    }
    candidates = [
        node
        for node in n.walk(statement)
        if isinstance(node, n.NamedTable)
        and node.alias is not None
        and node.alias.lower() in used_aliases
        and node.alias.lower() != node.name.lower()
    ]
    if not candidates:
        return None
    target = rng.choice(candidates)
    alias = target.alias
    target.alias = None
    return (
        render(statement),
        f"alias {alias!r} definition dropped; its references dangle",
    )


def _corrupt_paren_imbalance(
    statement: n.Statement, schema: Optional[Schema], rng: random.Random
) -> Optional[tuple[str, str]]:
    """Remove the closing parenthesis of one subquery."""
    has_subquery = any(
        isinstance(node, (n.InSubquery, n.ScalarSubquery, n.Exists, n.DerivedTable))
        for node in n.walk(statement)
    )
    if not has_subquery:
        return None
    text = render(statement)
    openers = [
        index
        for index in range(len(text))
        if text.startswith("(SELECT ", index) or text.startswith("(WITH ", index)
    ]
    if not openers:
        return None
    start = rng.choice(openers)
    depth = 0
    for index in range(start, len(text)):
        if text[index] == "(":
            depth += 1
        elif text[index] == ")":
            depth -= 1
            if depth == 0:
                corrupted = text[:index] + text[index + 1 :]
                return (
                    corrupted.replace("  ", " ").strip(),
                    "subquery closing parenthesis dropped",
                )
    return None


_INJECTORS: dict[
    str,
    Callable[
        [n.Statement, Optional[Schema], random.Random], Optional[tuple[str, str]]
    ],
] = {
    CLAUSE_ORDER: _corrupt_clause_order,
    DANGLING_ALIAS: _corrupt_dangling_alias,
    PAREN_IMBALANCE: _corrupt_paren_imbalance,
}


def applicable_structural_types(
    statement: n.Statement, rng: random.Random
) -> list[str]:
    """Structural types whose injector succeeds on (a copy of) this statement."""
    return applicable_types(statement, None, rng, _INJECTORS, STRUCTURAL_TYPES)


def inject_structural_error(
    statement: n.Statement,
    rng: random.Random,
    error_type: Optional[str] = None,
) -> Optional[StructuralCorruption]:
    """Inject one structural error into a copy of *statement*.

    When *error_type* is None a random applicable type is used; returns
    None when no injector applies (e.g. a flat query has no subquery to
    unbalance and no alias to dangle).
    """
    order = (
        [error_type]
        if error_type is not None
        else sample_order(rng, STRUCTURAL_TYPES)
    )
    applied = apply_typed_transform(
        statement,
        None,
        rng,
        _INJECTORS,
        order,
        kind="structural error",
    )
    if applied is None:
        return None
    return StructuralCorruption(
        text=applied.text,
        error_type=applied.name,
        detail=applied.detail,
        original_text=applied.original_text,
    )
