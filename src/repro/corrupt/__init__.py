"""Corruption engine: syntax-error injection and missing-token removal."""

from repro.corrupt.missing_tokens import (
    ALIAS,
    COLUMN,
    COMPARISON,
    KEYWORD,
    TABLE,
    TOKEN_TYPES,
    VALUE,
    TokenRemoval,
    applicable_token_types,
    remove_token,
)
from repro.corrupt.syntax_errors import (
    ERROR_TYPES,
    SyntaxCorruption,
    applicable_error_types,
    inject_syntax_error,
)

__all__ = [
    "ERROR_TYPES",
    "SyntaxCorruption",
    "applicable_error_types",
    "inject_syntax_error",
    "TOKEN_TYPES",
    "KEYWORD",
    "TABLE",
    "COLUMN",
    "VALUE",
    "ALIAS",
    "COMPARISON",
    "TokenRemoval",
    "applicable_token_types",
    "remove_token",
]
