"""Corruption engine: labeled query perturbation for the detection tasks.

Three families:

* :mod:`repro.corrupt.syntax_errors` — the paper's six semantic error
  types, injected into parsed queries that still parse afterwards;
* :mod:`repro.corrupt.missing_tokens` — removal of exactly one token of
  a chosen type from the query *text* (the miss_token family);
* :mod:`repro.corrupt.structural` — AST-level structural breakage
  (clause-order swaps, dangling aliases, unbalanced subquery parens)
  unlocked by the synthetic workload family's direct AST generation.
"""

from repro.corrupt.structural import (
    STRUCTURAL_TYPES,
    StructuralCorruption,
    applicable_structural_types,
    inject_structural_error,
)
from repro.corrupt.missing_tokens import (
    ALIAS,
    COLUMN,
    COMPARISON,
    KEYWORD,
    TABLE,
    TOKEN_TYPES,
    VALUE,
    TokenRemoval,
    applicable_token_types,
    remove_token,
)
from repro.corrupt.syntax_errors import (
    ERROR_TYPES,
    SyntaxCorruption,
    applicable_error_types,
    inject_syntax_error,
)

__all__ = [
    "ERROR_TYPES",
    "SyntaxCorruption",
    "applicable_error_types",
    "inject_syntax_error",
    "TOKEN_TYPES",
    "KEYWORD",
    "TABLE",
    "COLUMN",
    "VALUE",
    "ALIAS",
    "COMPARISON",
    "TokenRemoval",
    "applicable_token_types",
    "remove_token",
    "STRUCTURAL_TYPES",
    "StructuralCorruption",
    "applicable_structural_types",
    "inject_structural_error",
]
