"""Syntax-error injection (paper section 3.2, Listing 1).

Six injectors, one per paper error type, each transforming a *clean*
parsed query into a semantically broken one that still parses.  The test
suite enforces the contract end-to-end: for every injection the semantic
analyzer must report the intended violation code on the corrupted text.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.semantics import (
    AGGR_ATTR,
    AGGR_HAVING,
    ALIAS_AMBIGUOUS,
    ALIAS_UNDEFINED,
    CONDITION_MISMATCH,
    NESTED_MISMATCH,
    PAPER_ERROR_TYPES,
)
from repro.schema.model import ColType, Schema
from repro.sql import nodes as n
from repro.sql.keywords import AGGREGATE_FUNCTIONS
from repro.sql.transform import (
    applicable_types,
    apply_typed_transform,
    named_tables,
    replace_expr,
    select_cores,
)

#: Error-type labels, re-exported in the paper's order.
ERROR_TYPES: tuple[str, ...] = PAPER_ERROR_TYPES


@dataclass
class SyntaxCorruption:
    """A corrupted query and the label it carries."""

    text: str
    error_type: str
    detail: str
    original_text: str


def _source_label(table: n.NamedTable) -> str:
    return table.alias or table.name


def _pick_core_with_tables(
    statement: n.Statement, schema: Schema, rng: random.Random
) -> Optional[tuple[n.SelectCore, list[n.NamedTable]]]:
    candidates = []
    for core in select_cores(statement):
        tables = [t for t in named_tables(core) if schema.has_table(t.name)]
        if tables:
            candidates.append((core, tables))
    if not candidates:
        return None
    return rng.choice(candidates)


# ---------------------------------------------------------------------------
# Individual injectors.  Each mutates a deep copy and returns detail text,
# or None when the transformation does not apply to this query.
# ---------------------------------------------------------------------------


def _inject_aggr_attr(
    statement: n.Statement, schema: Schema, rng: random.Random
) -> Optional[str]:
    picked = _pick_core_with_tables(statement, schema, rng)
    if picked is None:
        return None
    core, tables = picked
    group_names = {
        g.name.lower() for g in core.group_by if isinstance(g, n.ColumnRef)
    }
    has_aggregate = any(
        isinstance(node, n.FuncCall) and node.name.upper() in AGGREGATE_FUNCTIONS
        for item in core.items
        for node in n.walk(item.expr)
    )
    table = rng.choice(tables)
    schema_table = schema.table(table.name)
    candidates = [
        c for c in schema_table.columns if c.name.lower() not in group_names
    ]
    if not candidates:
        return None
    column = rng.choice(candidates)
    qualifier = _source_label(table) if len(tables) > 1 else None
    bare = n.ColumnRef(name=column.name, table=qualifier)
    if has_aggregate or core.group_by:
        # Add an ungrouped bare column next to the aggregates.
        core.items.insert(
            rng.randrange(len(core.items) + 1), n.SelectItem(expr=bare)
        )
    else:
        # Add an aggregate next to existing bare columns (Q1 style).
        if not any(
            isinstance(item.expr, (n.ColumnRef, n.Star)) for item in core.items
        ):
            core.items.insert(0, n.SelectItem(expr=bare))
        core.items.append(
            n.SelectItem(expr=n.FuncCall(name="COUNT", args=[n.Star()]))
        )
    return f"ungrouped column {column.name!r} mixed with aggregates"


def _inject_aggr_having(
    statement: n.Statement, schema: Schema, rng: random.Random
) -> Optional[str]:
    picked = _pick_core_with_tables(statement, schema, rng)
    if picked is None:
        return None
    core, tables = picked
    group_names = {
        g.name.lower() for g in core.group_by if isinstance(g, n.ColumnRef)
    }
    table = rng.choice(tables)
    schema_table = schema.table(table.name)
    numeric = [
        c
        for c in schema_table.numeric_columns()
        if c.name.lower() not in group_names
    ]
    if not numeric:
        return None
    column = rng.choice(numeric)
    qualifier = _source_label(table) if len(tables) > 1 else None
    spec = column.spec
    if column.col_type is ColType.INT:
        value = rng.randint(int(spec.low if spec else 0), int(spec.high if spec else 100))
        literal = n.Literal(value=value, kind="number", text=str(value))
    else:
        value = round(rng.uniform(spec.low if spec else 0, spec.high if spec else 100), 2)
        literal = n.Literal(value=value, kind="number", text=str(value))
    condition = n.Binary(
        op=rng.choice([">", "<", ">="]),
        left=n.ColumnRef(name=column.name, table=qualifier),
        right=literal,
    )
    if core.having is None:
        core.having = condition
    else:
        core.having = n.Binary(op="AND", left=core.having, right=condition)
    return f"HAVING filters bare column {column.name!r} (should be WHERE)"


def _inject_nested_mismatch(
    statement: n.Statement, schema: Schema, rng: random.Random
) -> Optional[str]:
    # Preferred: degrade an existing IN-subquery to scalar '=' (Q3 style).
    memberships = [
        node
        for node in n.walk(statement)
        if isinstance(node, n.InSubquery) and not node.negated
    ]
    if memberships:
        target = rng.choice(memberships)
        multi_row = _make_multi_row(target.query)
        replacement = n.Binary(
            op="=", left=target.expr, right=n.ScalarSubquery(query=target.query)
        )
        if multi_row and replace_expr(statement, target, replacement):
            return "IN-subquery degraded to scalar '=' comparison"
    # Fallback: append `key = (SELECT key FROM other)` to a core's WHERE.
    picked = _pick_core_with_tables(statement, schema, rng)
    if picked is None:
        return None
    core, tables = picked
    table = rng.choice(tables)
    schema_table = schema.table(table.name)
    numeric = schema_table.numeric_columns()
    if not numeric:
        return None
    column = rng.choice(numeric)
    other = rng.choice(schema.tables)
    other_numeric = other.numeric_columns()
    if not other_numeric:
        return None
    other_column = rng.choice(other_numeric)
    qualifier = _source_label(table) if len(tables) > 1 else None
    subquery = n.Query(
        body=n.SelectCore(
            items=[n.SelectItem(expr=n.ColumnRef(name=other_column.name))],
            from_items=[n.NamedTable(name=other.name)],
        )
    )
    condition = n.Binary(
        op="=",
        left=n.ColumnRef(name=column.name, table=qualifier),
        right=n.ScalarSubquery(query=subquery),
    )
    if core.where is None:
        core.where = condition
    else:
        core.where = n.Binary(op="AND", left=core.where, right=condition)
    return f"scalar comparison against multi-row subquery on {other.name!r}"


def _make_multi_row(query: n.Query) -> bool:
    """Ensure the subquery may return several rows; True when successful."""
    body = query.body
    if not isinstance(body, n.SelectCore):
        return True
    changed = False
    if body.top == 1:
        body.top = None
        changed = True
    if body.limit == 1:
        body.limit = None
        changed = True
    has_aggregate = all(
        any(
            isinstance(node, n.FuncCall)
            and node.name.upper() in AGGREGATE_FUNCTIONS
            for node in n.walk(item.expr)
        )
        for item in body.items
    )
    return not has_aggregate or changed or bool(body.group_by)


def _inject_condition_mismatch(
    statement: n.Statement, schema: Schema, rng: random.Random
) -> Optional[str]:
    # Preferred: retype an existing numeric comparison literal (Q4 style).
    comparisons = [
        node
        for node in n.walk(statement)
        if isinstance(node, n.Binary)
        and node.op in ("=", "<>", "<", ">", "<=", ">=")
        and isinstance(node.right, n.Literal)
        and node.right.kind == "number"
        and isinstance(node.left, n.ColumnRef)
    ]
    if comparisons:
        target = rng.choice(comparisons)
        word = rng.choice(["high", "low", "bright", "recent", "large"])
        target.right = n.Literal(value=word, kind="string", text=word)
        return f"numeric column compared with string {word!r}"
    picked = _pick_core_with_tables(statement, schema, rng)
    if picked is None:
        return None
    core, tables = picked
    table = rng.choice(tables)
    schema_table = schema.table(table.name)
    numeric = schema_table.numeric_columns()
    if not numeric:
        return None
    column = rng.choice(numeric)
    qualifier = _source_label(table) if len(tables) > 1 else None
    word = rng.choice(["high", "low", "unknown"])
    condition = n.Binary(
        op="=",
        left=n.ColumnRef(name=column.name, table=qualifier),
        right=n.Literal(value=word, kind="string", text=word),
    )
    if core.where is None:
        core.where = condition
    else:
        core.where = n.Binary(op="AND", left=core.where, right=condition)
    return f"appended type-mismatched condition on {column.name!r}"


def _defined_labels(statement: n.Statement) -> set[str]:
    """Every name a qualifier could legally resolve to, lower-cased."""
    labels: set[str] = set()
    for node in n.walk(statement):
        if isinstance(node, n.NamedTable):
            labels.add((node.alias or node.name).lower())
            labels.add(node.name.lower())
        elif isinstance(node, n.DerivedTable):
            labels.add(node.alias.lower())
        elif isinstance(node, n.CommonTableExpr):
            labels.add(node.name.lower())
    return labels


def _fresh_undefined_label(
    statement: n.Statement, rng: random.Random, seed_from: str
) -> str:
    """A qualifier guaranteed to resolve nowhere in the statement."""
    taken = _defined_labels(statement)
    candidates = ["q", "obj", "tbl0", seed_from + "x", seed_from + "2"]
    rng.shuffle(candidates)
    for candidate in candidates:
        if candidate.lower() not in taken:
            return candidate
    suffix = 0
    while f"q{suffix}" in taken:
        suffix += 1
    return f"q{suffix}"


def _inject_alias_undefined(
    statement: n.Statement, schema: Schema, rng: random.Random
) -> Optional[str]:
    refs = [
        node
        for node in n.walk(statement)
        if isinstance(node, n.ColumnRef) and node.table is not None
    ]
    if refs:
        target = rng.choice(refs)
        # Q5 style: swap the alias for a never-defined name.
        replacement = _fresh_undefined_label(statement, rng, target.table)
        target.table = replacement
        return f"qualifier rewritten to undefined alias {replacement!r}"
    # No qualified refs: qualify some column with an undefined alias.
    picked = _pick_core_with_tables(statement, schema, rng)
    if picked is None:
        return None
    core, _ = picked
    replacement = _fresh_undefined_label(statement, rng, "q")
    for item in core.items:
        if isinstance(item.expr, n.ColumnRef) and item.expr.table is None:
            item.expr.table = replacement
            return (
                f"select column qualified with undefined alias {replacement!r}"
            )
    return None


def _inject_alias_ambiguous(
    statement: n.Statement, schema: Schema, rng: random.Random
) -> Optional[str]:
    shared = set(schema.shared_column_names())
    if not shared:
        return None
    for core in select_cores(statement):
        tables = [t for t in named_tables(core) if schema.has_table(t.name)]
        if len(tables) < 2:
            continue
        # Column names shared by at least two sources of this core.
        per_table = [
            {c.name.lower() for c in schema.table(t.name).columns} for t in tables
        ]
        counts: dict[str, int] = {}
        for names in per_table:
            for name in names:
                counts[name] = counts.get(name, 0) + 1
        local_shared = [name for name, count in counts.items() if count > 1]
        if not local_shared:
            continue
        # Prefer stripping the qualifier from an existing reference (Q6).
        refs = [
            node
            for node in n.walk(core)
            if isinstance(node, n.ColumnRef)
            and node.table is not None
            and node.name.lower() in local_shared
        ]
        join_refs = _join_condition_refs(core)
        droppable = [r for r in refs if id(r) not in join_refs]
        if droppable:
            target = rng.choice(droppable)
            target.table = None
            return f"qualifier dropped from shared column {target.name!r}"
        column_name = rng.choice(sorted(local_shared))
        core.items.append(n.SelectItem(expr=n.ColumnRef(name=column_name)))
        return f"unqualified shared column {column_name!r} added to select list"
    return None


def _join_condition_refs(core: n.SelectCore) -> set[int]:
    """Identity set of column refs inside join ON conditions.

    Stripping a qualifier inside an ON clause would often leave the join
    unparseable for humans; the paper's examples strip qualifiers in
    SELECT/WHERE, so we avoid ON clauses.
    """
    refs: set[int] = set()

    def visit(ref: n.TableRef) -> None:
        if isinstance(ref, n.Join):
            visit(ref.left)
            visit(ref.right)
            if ref.condition is not None:
                for node in n.walk(ref.condition):
                    if isinstance(node, n.ColumnRef):
                        refs.add(id(node))

    for item in core.from_items:
        visit(item)
    return {id_ for id_ in refs}


_INJECTORS: dict[str, Callable] = {
    AGGR_ATTR: _inject_aggr_attr,
    AGGR_HAVING: _inject_aggr_having,
    NESTED_MISMATCH: _inject_nested_mismatch,
    CONDITION_MISMATCH: _inject_condition_mismatch,
    ALIAS_UNDEFINED: _inject_alias_undefined,
    ALIAS_AMBIGUOUS: _inject_alias_ambiguous,
}


def applicable_error_types(
    statement: n.Statement, schema: Schema, rng: random.Random
) -> list[str]:
    """Error types whose injector succeeds on (a copy of) this statement."""
    return applicable_types(statement, schema, rng, _INJECTORS, ERROR_TYPES)


def _weighted_order(
    rng: random.Random, weights: Optional[dict[str, float]]
) -> list[str]:
    """Sample all error types without replacement, biased by *weights*.

    Weights model how often each error class occurs in a workload's
    realistic usage (e.g. ambiguous aliases are endemic to SQLShare's
    multi-schema queries, paper section 4.1).
    """
    remaining = list(ERROR_TYPES)
    order: list[str] = []
    while remaining:
        total = sum((weights or {}).get(t, 1.0) for t in remaining)
        point = rng.random() * total
        for candidate in remaining:
            point -= (weights or {}).get(candidate, 1.0)
            if point <= 0:
                order.append(candidate)
                remaining.remove(candidate)
                break
        else:  # floating-point tail
            order.append(remaining.pop())
    return order


def inject_syntax_error(
    statement: n.Statement,
    schema: Schema,
    rng: random.Random,
    error_type: Optional[str] = None,
    type_weights: Optional[dict[str, float]] = None,
) -> Optional[SyntaxCorruption]:
    """Inject one error into a copy of *statement*.

    When *error_type* is None, a (optionally weighted) random applicable
    type is used.  Returns None when no injector applies (e.g. DECLARE
    statements).
    """
    order = (
        [error_type]
        if error_type is not None
        else _weighted_order(rng, type_weights)
    )
    applied = apply_typed_transform(
        statement,
        schema,
        rng,
        _INJECTORS,
        order,
        require_change=False,
        kind="error",
    )
    if applied is None:
        return None
    return SyntaxCorruption(
        text=applied.text,
        error_type=applied.name,
        detail=applied.detail,
        original_text=applied.original_text,
    )
