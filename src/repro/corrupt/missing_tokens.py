"""Missing-token injection (paper section 3.1: miss_token family).

Removes exactly one token of a chosen type — keyword, table, column,
value, alias or comparison — from a query's *text*, recording the removed
word, its type and its word position (the label of miss_token_loc).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.sql.analysis_cache import tokenize_cached
from repro.sql.tokens import Token, TokenKind

KEYWORD = "keyword"
TABLE = "table"
COLUMN = "column"
VALUE = "value"
ALIAS = "alias"
COMPARISON = "comparison"

#: The six token types of the miss_token tasks, in the paper's order.
TOKEN_TYPES: tuple[str, ...] = (KEYWORD, TABLE, COLUMN, VALUE, ALIAS, COMPARISON)

#: Keywords worth removing — their absence is visible but not trivially so.
_REMOVABLE_KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "JOIN",
    "ON",
    "AND",
    "OR",
    "IN",
    "BETWEEN",
    "LIKE",
    "AS",
    "DISTINCT",
    "SET",
    "INTO",
    "VALUES",
}

_COMPARISON_OPERATORS = {"=", "<>", "!=", "<", ">", "<=", ">="}


@dataclass
class TokenRemoval:
    """A query text with one token removed, plus ground-truth labels."""

    text: str
    token_type: str
    removed: str
    position: int  # 0-based word index of the removed token in the original
    original_text: str


def _candidates(tokens: tuple[Token, ...], token_type: str) -> list[Token]:
    """Tokens of the requested type, with positional context rules."""
    result: list[Token] = []
    for index, token in enumerate(tokens):
        if token.kind is TokenKind.EOF:
            break
        previous = tokens[index - 1] if index > 0 else None
        nxt = tokens[index + 1] if index + 1 < len(tokens) else None
        if token_type == KEYWORD:
            if token.kind is TokenKind.KEYWORD and token.value in _REMOVABLE_KEYWORDS:
                result.append(token)
        elif token_type == TABLE:
            if (
                token.kind is TokenKind.IDENT
                and previous is not None
                and previous.is_keyword("FROM", "JOIN", "INTO", "UPDATE", "TABLE")
            ):
                result.append(token)
        elif token_type == COLUMN:
            if token.kind is not TokenKind.IDENT:
                continue
            follows_dot = (
                previous is not None
                and previous.kind is TokenKind.PUNCT
                and previous.value == "."
            )
            if follows_dot:  # the column part of `alias.column`
                result.append(token)
                continue
            starts_call = (
                nxt is not None and nxt.kind is TokenKind.PUNCT and nxt.value == "("
            )
            qualifies = (
                nxt is not None and nxt.kind is TokenKind.PUNCT and nxt.value == "."
            )
            names_source = previous is not None and (
                previous.is_keyword("FROM", "JOIN", "INTO", "UPDATE", "TABLE", "AS")
                or previous.kind is TokenKind.IDENT  # bare-alias position
            )
            if not starts_call and not qualifies and not names_source:
                result.append(token)
        elif token_type == VALUE:
            if token.kind in (TokenKind.NUMBER, TokenKind.STRING):
                result.append(token)
        elif token_type == ALIAS:
            if (
                token.kind is TokenKind.IDENT
                and previous is not None
                and previous.is_keyword("AS")
            ):
                result.append(token)
        elif token_type == COMPARISON:
            if (
                token.kind is TokenKind.OPERATOR
                and token.value in _COMPARISON_OPERATORS
            ):
                result.append(token)
        else:
            raise KeyError(f"unknown token type {token_type!r}")
    return result


def _splice(text: str, token: Token) -> str:
    """Remove the token's characters, collapsing the surrounding whitespace."""
    before = text[: token.position]
    after = text[token.end :]
    if before.endswith(" ") and after.startswith(" "):
        after = after[1:]
    return (before + after).strip()


def _removed_display(text: str, token: Token) -> str:
    return text[token.position : token.end]


def applicable_token_types(text: str) -> list[str]:
    """Token types that have at least one removable occurrence in *text*."""
    try:
        tokens = tokenize_cached(text)
    except Exception:
        return []
    return [t for t in TOKEN_TYPES if _candidates(tokens, t)]


def remove_token(
    text: str,
    rng: random.Random,
    token_type: Optional[str] = None,
) -> Optional[TokenRemoval]:
    """Remove one random token of *token_type* (random applicable if None).

    Returns None when nothing of the requested type can be removed.
    """
    try:
        tokens = tokenize_cached(text)
    except Exception:
        return None
    order = (
        [token_type]
        if token_type is not None
        else rng.sample(list(TOKEN_TYPES), k=len(TOKEN_TYPES))
    )
    for candidate_type in order:
        candidates = _candidates(tokens, candidate_type)
        if not candidates:
            continue
        token = rng.choice(candidates)
        return TokenRemoval(
            text=_splice(text, token),
            token_type=candidate_type,
            removed=_removed_display(text, token),
            position=token.word_index,
            original_text=text,
        )
    return None
