"""Spider-style cross-domain schemas for the query-explanation task.

Spider [Yu et al., EMNLP 2018] spans many small databases.  The paper's
case study (section 4.5) quotes queries over ``tryout``/``college``,
``Transcript_Cnt``, ``concert``/``stadium`` and ``CARS_DATA``/``CAR_NAMES``
— those four databases are modelled here verbatim (Q15-Q18), plus two
more common Spider domains to widen the explanation workload.
"""

from __future__ import annotations

from repro.schema.model import (
    ForeignKey,
    Schema,
    Table,
    float_col,
    int_col,
    text_col,
)


def build_soccer_schema() -> Schema:
    """The Spider 'soccer_1' database (Q15: tryout counts per college)."""
    return Schema(
        name="soccer_tryout",
        description="College soccer tryouts",
        tables=[
            Table(
                name="college",
                columns=[
                    text_col("cName", ("LSU", "ASU", "OU", "FSU", "UW")),
                    text_col("state", ("LA", "AZ", "OK", "FL", "WA")),
                    int_col("enr", low=5_000, high=60_000),
                ],
            ),
            Table(
                name="player",
                columns=[
                    int_col("pID", primary_key=True),
                    text_col("pName"),
                    text_col("yCard", ("yes", "no")),
                    int_col("HS", low=500, high=2_000),
                ],
            ),
            Table(
                name="tryout",
                columns=[
                    int_col("pID"),
                    text_col("cName", ("LSU", "ASU", "OU", "FSU", "UW")),
                    text_col("pPos", ("goalie", "mid", "striker", "defender")),
                    text_col("decision", ("yes", "no")),
                ],
                foreign_keys=[ForeignKey("pID", "player", "pID")],
            ),
        ],
    )


def build_transcripts_schema() -> Schema:
    """The Spider 'student_transcripts' fragment behind Q16."""
    return Schema(
        name="student_transcripts",
        description="Course enrollments appearing on transcripts",
        tables=[
            Table(
                name="Transcripts",
                columns=[
                    int_col("transcript_id", primary_key=True),
                    text_col("transcript_date"),
                ],
            ),
            Table(
                name="Student_Enrolment_Courses",
                columns=[
                    int_col("student_course_id", primary_key=True),
                    int_col("course_id", low=1, high=200),
                    int_col("student_enrolment_id", low=1, high=2_000),
                ],
            ),
            Table(
                name="Transcript_Cnt",
                columns=[
                    int_col("transcript_id"),
                    int_col("student_course_id"),
                ],
                foreign_keys=[
                    ForeignKey("transcript_id", "Transcripts", "transcript_id"),
                    ForeignKey(
                        "student_course_id",
                        "Student_Enrolment_Courses",
                        "student_course_id",
                    ),
                ],
            ),
        ],
    )


def build_concert_schema() -> Schema:
    """The Spider 'concert_singer' database (Q17)."""
    return Schema(
        name="concert_singer",
        description="Concerts held at stadiums",
        tables=[
            Table(
                name="stadium",
                columns=[
                    int_col("stadium_id", primary_key=True),
                    text_col("name"),
                    text_col("loc", ("Glasgow", "Ayr", "Dumfries", "Stirling")),
                    int_col("capacity", low=2_000, high=60_000),
                    int_col("average", low=500, high=20_000),
                ],
            ),
            Table(
                name="singer",
                columns=[
                    int_col("singer_id", primary_key=True),
                    text_col("name"),
                    text_col("country", ("US", "UK", "France", "Netherlands")),
                    int_col("age", low=18, high=70),
                ],
            ),
            Table(
                name="concert",
                columns=[
                    int_col("concert_id", primary_key=True),
                    text_col("concert_name"),
                    text_col("theme", ("Free choice", "Party", "Bigger", "Wide")),
                    int_col("stadium_id"),
                    int_col("Year", low=2010, high=2024),
                ],
                foreign_keys=[ForeignKey("stadium_id", "stadium", "stadium_id")],
            ),
            Table(
                name="singer_in_concert",
                columns=[
                    int_col("concert_id"),
                    int_col("singer_id"),
                ],
                foreign_keys=[
                    ForeignKey("concert_id", "concert", "concert_id"),
                    ForeignKey("singer_id", "singer", "singer_id"),
                ],
            ),
        ],
    )


def build_cars_schema() -> Schema:
    """The Spider 'car_1' database (Q18: slowest Volvo's cylinders)."""
    return Schema(
        name="car_1",
        description="Car makers, models and performance data",
        tables=[
            Table(
                name="CAR_MAKERS",
                columns=[
                    int_col("Id", primary_key=True),
                    text_col("Maker", ("volvo", "ford", "bmw", "toyota", "fiat")),
                    text_col("FullName"),
                    text_col("Country", ("sweden", "usa", "germany", "japan")),
                ],
            ),
            Table(
                name="CAR_NAMES",
                columns=[
                    int_col("MakeId", primary_key=True),
                    text_col("Model", ("volvo", "ford", "bmw", "toyota", "fiat")),
                    text_col("Make"),
                ],
            ),
            Table(
                name="CARS_DATA",
                columns=[
                    int_col("Id", primary_key=True),
                    float_col("MPG", 9.0, 47.0),
                    int_col("Cylinders", low=3, high=8),
                    float_col("Edispl", 68.0, 455.0),
                    int_col("Horsepower", low=46, high=230),
                    int_col("Weight", low=1_600, high=5_200),
                    float_col("Accelerate", 8.0, 25.0),
                    int_col("Year", low=1970, high=1982),
                ],
                foreign_keys=[ForeignKey("Id", "CAR_NAMES", "MakeId")],
            ),
        ],
    )


def build_flights_schema() -> Schema:
    return Schema(
        name="flight_2",
        description="Airlines, airports and flights",
        tables=[
            Table(
                name="airlines",
                columns=[
                    int_col("uid", primary_key=True),
                    text_col("Airline"),
                    text_col("Abbreviation"),
                    text_col("Country", ("USA", "Canada", "UK")),
                ],
            ),
            Table(
                name="airports",
                columns=[
                    text_col("City", ("Seattle", "Boston", "Denver", "Chicago")),
                    text_col("AirportCode", ("SEA", "BOS", "DEN", "ORD")),
                    text_col("AirportName"),
                    text_col("Country", ("USA", "Canada", "UK")),
                ],
            ),
            Table(
                name="flights",
                columns=[
                    int_col("Airline"),
                    int_col("FlightNo", low=1, high=9_999),
                    text_col("SourceAirport", ("SEA", "BOS", "DEN", "ORD")),
                    text_col("DestAirport", ("SEA", "BOS", "DEN", "ORD")),
                ],
                foreign_keys=[ForeignKey("Airline", "airlines", "uid")],
            ),
        ],
    )


def build_world_schema() -> Schema:
    return Schema(
        name="world_1",
        description="Countries, cities and languages",
        tables=[
            Table(
                name="city",
                columns=[
                    int_col("ID", primary_key=True),
                    text_col("Name"),
                    text_col("CountryCode", ("USA", "NLD", "BRA", "JPN", "IND")),
                    text_col("District"),
                    int_col("Population", low=10_000, high=30_000_000),
                ],
            ),
            Table(
                name="country",
                columns=[
                    text_col("Code", ("USA", "NLD", "BRA", "JPN", "IND")),
                    text_col("Name"),
                    text_col(
                        "Continent",
                        ("North America", "Europe", "South America", "Asia"),
                    ),
                    int_col("Population", low=100_000, high=1_400_000_000),
                    float_col("SurfaceArea", 1_000.0, 17_000_000.0),
                    float_col("LifeExpectancy", 40.0, 90.0),
                ],
            ),
            Table(
                name="countrylanguage",
                columns=[
                    text_col("CountryCode", ("USA", "NLD", "BRA", "JPN", "IND")),
                    text_col("Language", ("English", "Dutch", "Portuguese", "Hindi")),
                    text_col("IsOfficial", ("T", "F")),
                    float_col("Percentage", 0.0, 100.0),
                ],
            ),
        ],
    )


def build_spider_schemas() -> list[Schema]:
    """All Spider mini-schemas, in a deterministic order."""
    return [
        build_soccer_schema(),
        build_transcripts_schema(),
        build_concert_schema(),
        build_cars_schema(),
        build_flights_schema(),
        build_world_schema(),
    ]


SPIDER_SCHEMAS = build_spider_schemas()
