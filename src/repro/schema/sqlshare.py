"""SQLShare schema catalog.

SQLShare [Halevy et al., CIDR 2014] hosts *many* small user-uploaded
datasets with independent schemas; its workload therefore spans several
databases (paper section 2).  The reproduction models five representative
mini-schemas in the domains that dominated the real platform (earth and
ocean sciences, biology, sensing, plus generic business/coursework data).
The workload generator draws each query against one of these schemas.
"""

from __future__ import annotations

from repro.schema.model import (
    ForeignKey,
    Schema,
    Table,
    date_col,
    float_col,
    int_col,
    text_col,
)


def build_oceanography_schema() -> Schema:
    return Schema(
        name="oceanography",
        description="Ship stations, CTD casts and species observations",
        tables=[
            Table(
                name="stations",
                columns=[
                    int_col("station_id", primary_key=True),
                    float_col("lat", -80.0, 80.0),
                    float_col("lon", -180.0, 180.0),
                    float_col("depth_m", 0.0, 6000.0),
                    text_col("region", ("puget_sound", "north_pacific", "arctic")),
                ],
            ),
            Table(
                name="casts",
                columns=[
                    int_col("cast_id", primary_key=True),
                    int_col("station_id"),
                    date_col("cast_date"),
                    float_col("temperature", -2.0, 30.0),
                    float_col("salinity", 28.0, 38.0),
                    float_col("oxygen", 0.0, 12.0),
                ],
                foreign_keys=[ForeignKey("station_id", "stations", "station_id")],
            ),
            Table(
                name="species_counts",
                columns=[
                    int_col("obs_id", primary_key=True),
                    int_col("station_id"),
                    text_col("species", ("copepod", "krill", "diatom", "salmon")),
                    int_col("count", low=0, high=100_000),
                ],
                foreign_keys=[ForeignKey("station_id", "stations", "station_id")],
            ),
        ],
    )


def build_genomics_schema() -> Schema:
    return Schema(
        name="genomics",
        description="Gene annotations and expression measurements",
        tables=[
            Table(
                name="genes",
                columns=[
                    int_col("gene_id", primary_key=True),
                    text_col("symbol", ("BRCA1", "TP53", "EGFR", "MYC", "KRAS")),
                    text_col("chromosome", ("chr1", "chr2", "chr7", "chr17", "chrX")),
                    int_col("start_pos", low=1, high=250_000_000),
                    int_col("end_pos", low=1, high=250_000_000),
                    text_col("strand", ("+", "-")),
                ],
            ),
            Table(
                name="samples",
                columns=[
                    int_col("sample_id", primary_key=True),
                    text_col("tissue", ("liver", "brain", "lung", "kidney")),
                    int_col("donor_age", low=18, high=90),
                ],
            ),
            Table(
                name="expression",
                columns=[
                    int_col("expr_id", primary_key=True),
                    int_col("sample_id"),
                    int_col("gene_id"),
                    float_col("tpm", 0.0, 10_000.0),
                    text_col("condition", ("control", "treated")),
                ],
                foreign_keys=[
                    ForeignKey("sample_id", "samples", "sample_id"),
                    ForeignKey("gene_id", "genes", "gene_id"),
                ],
            ),
        ],
    )


def build_sensing_schema() -> Schema:
    return Schema(
        name="sensing",
        description="Environmental sensor deployments and readings",
        tables=[
            Table(
                name="sensors",
                columns=[
                    int_col("sensor_id", primary_key=True),
                    text_col("location", ("roof", "lab", "field_a", "field_b")),
                    text_col("sensor_type", ("temp", "humidity", "co2", "pm25")),
                ],
            ),
            Table(
                name="readings",
                columns=[
                    int_col("reading_id", primary_key=True),
                    int_col("sensor_id"),
                    date_col("ts"),
                    float_col("value", -40.0, 4000.0),
                    int_col("quality_flag", low=0, high=3),
                ],
                foreign_keys=[ForeignKey("sensor_id", "sensors", "sensor_id")],
            ),
        ],
    )


def build_sales_schema() -> Schema:
    return Schema(
        name="sales",
        description="Customers, orders and line items",
        tables=[
            Table(
                name="customers",
                columns=[
                    int_col("customer_id", primary_key=True),
                    text_col("name"),
                    text_col("city", ("seattle", "portland", "vancouver", "boise")),
                    text_col("segment", ("consumer", "corporate", "home_office")),
                ],
            ),
            Table(
                name="orders",
                columns=[
                    int_col("order_id", primary_key=True),
                    int_col("customer_id"),
                    date_col("order_date"),
                    float_col("total", 1.0, 20_000.0),
                ],
                foreign_keys=[ForeignKey("customer_id", "customers", "customer_id")],
            ),
            Table(
                name="order_items",
                columns=[
                    int_col("item_id", primary_key=True),
                    int_col("order_id"),
                    text_col("product", ("widget", "gadget", "sprocket", "gear")),
                    int_col("quantity", low=1, high=500),
                    float_col("price", 0.5, 900.0),
                ],
                foreign_keys=[ForeignKey("order_id", "orders", "order_id")],
            ),
        ],
    )


def build_coursework_schema() -> Schema:
    return Schema(
        name="coursework",
        description="Students and course enrollments",
        tables=[
            Table(
                name="students",
                columns=[
                    int_col("student_id", primary_key=True),
                    text_col("name"),
                    text_col("major", ("cs", "bio", "stat", "ece", "math")),
                    int_col("year", low=1, high=6),
                ],
            ),
            Table(
                name="enrollments",
                columns=[
                    int_col("enroll_id", primary_key=True),
                    int_col("student_id"),
                    text_col("course_code", ("CSE414", "BIO180", "STAT311", "CSE544")),
                    float_col("grade", 0.0, 4.0),
                    text_col("term", ("WI23", "SP23", "AU23", "WI24")),
                ],
                foreign_keys=[ForeignKey("student_id", "students", "student_id")],
            ),
        ],
    )


def build_sqlshare_schemas() -> list[Schema]:
    """All SQLShare mini-schemas, in a deterministic order."""
    return [
        build_oceanography_schema(),
        build_genomics_schema(),
        build_sensing_schema(),
        build_sales_schema(),
        build_coursework_schema(),
    ]


SQLSHARE_SCHEMAS = build_sqlshare_schemas()
