"""IMDB schema for the Join-Order Benchmark workload.

The Join-Order Benchmark [Leis et al., VLDB 2015] runs against a snapshot
of IMDB with 21 tables linked by a dense foreign-key graph; join-heavy
queries traverse many of them.  The reproduction models the 20 tables the
benchmark queries actually reference, with their real column names, so
that generated JOB-style queries look and measure like the originals
(Figure 3: up to 9+ tables, 19+ predicates per query).
"""

from __future__ import annotations

from repro.schema.model import (
    ForeignKey,
    Schema,
    Table,
    float_col,
    int_col,
    text_col,
)

_MOVIE_KINDS = ("movie", "tv series", "video movie", "episode", "video game")
_COMPANY_KINDS = (
    "production companies",
    "distributors",
    "special effects companies",
    "miscellaneous companies",
)
_INFO_KINDS = (
    "budget",
    "genres",
    "rating",
    "votes",
    "release dates",
    "languages",
    "countries",
    "runtimes",
)
_ROLES = ("actor", "actress", "producer", "writer", "director", "editor")
_LINK_KINDS = ("follows", "followed by", "remake of", "features")


def build_imdb_schema() -> Schema:
    """Construct the IMDB schema used by the Join-Order workload generator."""
    tables = [
        Table(
            name="title",
            columns=[
                int_col("id", primary_key=True),
                text_col("title"),
                int_col("kind_id", low=1, high=5),
                int_col("production_year", low=1890, high=2024),
                text_col("imdb_index", ("I", "II", "III", "IV")),
                int_col("season_nr", low=1, high=30),
                int_col("episode_nr", low=1, high=500),
            ],
            foreign_keys=[ForeignKey("kind_id", "kind_type", "id")],
        ),
        Table(
            name="kind_type",
            columns=[
                int_col("id", primary_key=True, low=1, high=5),
                text_col("kind", _MOVIE_KINDS),
            ],
        ),
        Table(
            name="movie_companies",
            columns=[
                int_col("id", primary_key=True),
                int_col("movie_id"),
                int_col("company_id"),
                int_col("company_type_id", low=1, high=4),
                text_col("note"),
            ],
            foreign_keys=[
                ForeignKey("movie_id", "title", "id"),
                ForeignKey("company_id", "company_name", "id"),
                ForeignKey("company_type_id", "company_type", "id"),
            ],
        ),
        Table(
            name="company_name",
            columns=[
                int_col("id", primary_key=True),
                text_col("name"),
                text_col("country_code", ("[us]", "[de]", "[gb]", "[fr]", "[jp]")),
            ],
        ),
        Table(
            name="company_type",
            columns=[
                int_col("id", primary_key=True, low=1, high=4),
                text_col("kind", _COMPANY_KINDS),
            ],
        ),
        Table(
            name="movie_info",
            columns=[
                int_col("id", primary_key=True),
                int_col("movie_id"),
                int_col("info_type_id", low=1, high=8),
                text_col("info"),
                text_col("note"),
            ],
            foreign_keys=[
                ForeignKey("movie_id", "title", "id"),
                ForeignKey("info_type_id", "info_type", "id"),
            ],
        ),
        Table(
            name="movie_info_idx",
            columns=[
                int_col("id", primary_key=True),
                int_col("movie_id"),
                int_col("info_type_id", low=1, high=8),
                text_col("info"),
            ],
            foreign_keys=[
                ForeignKey("movie_id", "title", "id"),
                ForeignKey("info_type_id", "info_type", "id"),
            ],
        ),
        Table(
            name="info_type",
            columns=[
                int_col("id", primary_key=True, low=1, high=8),
                text_col("info", _INFO_KINDS),
            ],
        ),
        Table(
            name="cast_info",
            columns=[
                int_col("id", primary_key=True),
                int_col("person_id"),
                int_col("movie_id"),
                int_col("person_role_id"),
                text_col("note"),
                int_col("nr_order", low=1, high=200),
                int_col("role_id", low=1, high=6),
            ],
            foreign_keys=[
                ForeignKey("person_id", "name", "id"),
                ForeignKey("movie_id", "title", "id"),
                ForeignKey("person_role_id", "char_name", "id"),
                ForeignKey("role_id", "role_type", "id"),
            ],
        ),
        Table(
            name="name",
            columns=[
                int_col("id", primary_key=True),
                text_col("name"),
                text_col("gender", ("m", "f")),
                text_col("imdb_index", ("I", "II", "III")),
            ],
        ),
        Table(
            name="char_name",
            columns=[
                int_col("id", primary_key=True),
                text_col("name"),
            ],
        ),
        Table(
            name="role_type",
            columns=[
                int_col("id", primary_key=True, low=1, high=6),
                text_col("role", _ROLES),
            ],
        ),
        Table(
            name="movie_keyword",
            columns=[
                int_col("id", primary_key=True),
                int_col("movie_id"),
                int_col("keyword_id"),
            ],
            foreign_keys=[
                ForeignKey("movie_id", "title", "id"),
                ForeignKey("keyword_id", "keyword", "id"),
            ],
        ),
        Table(
            name="keyword",
            columns=[
                int_col("id", primary_key=True),
                text_col(
                    "keyword",
                    (
                        "superhero",
                        "sequel",
                        "based-on-novel",
                        "murder",
                        "marvel-cinematic-universe",
                        "violence",
                    ),
                ),
            ],
        ),
        Table(
            name="aka_name",
            columns=[
                int_col("id", primary_key=True),
                int_col("person_id"),
                text_col("name"),
            ],
            foreign_keys=[ForeignKey("person_id", "name", "id")],
        ),
        Table(
            name="movie_link",
            columns=[
                int_col("id", primary_key=True),
                int_col("movie_id"),
                int_col("linked_movie_id"),
                int_col("link_type_id", low=1, high=4),
            ],
            foreign_keys=[
                ForeignKey("movie_id", "title", "id"),
                ForeignKey("linked_movie_id", "title", "id"),
                ForeignKey("link_type_id", "link_type", "id"),
            ],
        ),
        Table(
            name="link_type",
            columns=[
                int_col("id", primary_key=True, low=1, high=4),
                text_col("link", _LINK_KINDS),
            ],
        ),
        Table(
            name="person_info",
            columns=[
                int_col("id", primary_key=True),
                int_col("person_id"),
                int_col("info_type_id", low=1, high=8),
                text_col("info"),
                text_col("note"),
            ],
            foreign_keys=[
                ForeignKey("person_id", "name", "id"),
                ForeignKey("info_type_id", "info_type", "id"),
            ],
        ),
        Table(
            name="complete_cast",
            columns=[
                int_col("id", primary_key=True),
                int_col("movie_id"),
                int_col("subject_id", low=1, high=4),
                int_col("status_id", low=1, high=4),
            ],
            foreign_keys=[
                ForeignKey("movie_id", "title", "id"),
                ForeignKey("subject_id", "comp_cast_type", "id"),
                ForeignKey("status_id", "comp_cast_type", "id"),
            ],
        ),
        Table(
            name="comp_cast_type",
            columns=[
                int_col("id", primary_key=True, low=1, high=4),
                text_col("kind", ("cast", "crew", "complete", "complete+verified")),
            ],
        ),
        Table(
            name="movie_rating",
            columns=[
                int_col("movie_id", primary_key=True),
                float_col("rating", 1.0, 10.0),
                int_col("votes", low=5, high=2_000_000),
            ],
            foreign_keys=[ForeignKey("movie_id", "title", "id")],
        ),
    ]
    return Schema(
        name="imdb",
        tables=tables,
        description="IMDB snapshot schema of the Join-Order Benchmark",
    )


IMDB_SCHEMA = build_imdb_schema()
