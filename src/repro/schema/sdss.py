"""SDSS SkyServer schema (the subset the query workload touches).

Column names and value ranges follow the public SDSS DR catalog closely
enough that queries from the paper's listings (plate/mjd/fiberid/z on
SpecObj, objid/ra/dec/run on PhotoObj, ``dbo.`` UDFs) resolve here.
``ra``/``dec`` deliberately appear in several tables because the
alias-ambiguous error injector needs genuinely ambiguous column names.
"""

from __future__ import annotations

from repro.schema.model import (
    ColType,
    Column,
    ForeignKey,
    Schema,
    Table,
    ValueSpec,
    float_col,
    int_col,
    text_col,
)


def build_sdss_schema() -> Schema:
    """Construct the SDSS schema used by the SDSS workload generator."""
    spec_obj = Table(
        name="SpecObj",
        columns=[
            int_col("specobjid", primary_key=True),
            int_col("bestobjid", low=1_000, high=9_000_000),
            int_col("plate", low=266, high=12_000),
            int_col("mjd", low=50_000, high=60_500),
            int_col("fiberid", low=1, high=1_000),
            float_col("z", 0.0, 7.0),
            float_col("zErr", 0.0, 0.01),
            float_col("ra", 0.0, 360.0),
            float_col("dec", -90.0, 90.0),
            float_col("velDisp", 0.0, 850.0),
            text_col("class", ("GALAXY", "STAR", "QSO")),
            text_col("subclass", ("AGN", "STARFORMING", "BROADLINE", "O", "B", "A")),
            int_col("zWarning", low=0, high=16),
        ],
        foreign_keys=[ForeignKey("bestobjid", "PhotoObj", "objid")],
    )
    photo_obj = Table(
        name="PhotoObj",
        columns=[
            int_col("objid", primary_key=True, low=1_000, high=9_000_000),
            float_col("ra", 0.0, 360.0),
            float_col("dec", -90.0, 90.0),
            int_col("run", low=94, high=8_162),
            int_col("rerun", low=301, high=301),
            int_col("camcol", low=1, high=6),
            int_col("field", low=11, high=1_000),
            int_col("type", low=0, high=9),
            float_col("u", 12.0, 26.0),
            float_col("g", 12.0, 26.0),
            float_col("r", 12.0, 26.0),
            float_col("i", 12.0, 26.0),
            float_col("petroRad_r", 0.0, 60.0),
            float_col("modelMag_r", 12.0, 26.0),
            Column("clean", ColType.INT, spec=ValueSpec("int_range", 0, 1)),
        ],
    )
    photo_tag = Table(
        name="PhotoTag",
        columns=[
            int_col("objid", primary_key=True, low=1_000, high=9_000_000),
            float_col("ra", 0.0, 360.0),
            float_col("dec", -90.0, 90.0),
            int_col("type", low=0, high=9),
            float_col("psfMag_r", 12.0, 26.0),
            float_col("extinction_r", 0.0, 2.0),
        ],
        foreign_keys=[ForeignKey("objid", "PhotoObj", "objid")],
    )
    field = Table(
        name="Field",
        columns=[
            int_col("fieldid", primary_key=True),
            int_col("run", low=94, high=8_162),
            int_col("camcol", low=1, high=6),
            int_col("field", low=11, high=1_000),
            int_col("mjd", low=50_000, high=60_500),
            float_col("ra", 0.0, 360.0),
            float_col("dec", -90.0, 90.0),
            float_col("score", 0.0, 1.0),
        ],
    )
    spec_line = Table(
        name="SpecLine",
        columns=[
            int_col("speclineid", primary_key=True),
            int_col("specobjid", low=0, high=1_000_000),
            float_col("wave", 3_800.0, 9_200.0),
            float_col("waveErr", 0.0, 2.0),
            float_col("ew", -100.0, 400.0),
            float_col("height", 0.0, 900.0),
            text_col("lineName", ("H_alpha", "H_beta", "OIII", "NII", "MgII")),
        ],
        foreign_keys=[ForeignKey("specobjid", "SpecObj", "specobjid")],
    )
    neighbors = Table(
        name="Neighbors",
        columns=[
            int_col("objid", low=1_000, high=9_000_000),
            int_col("neighborObjid", low=1_000, high=9_000_000),
            float_col("distance", 0.0, 30.0),
            int_col("neighborType", low=0, high=9),
        ],
        foreign_keys=[
            ForeignKey("objid", "PhotoObj", "objid"),
            ForeignKey("neighborObjid", "PhotoObj", "objid"),
        ],
    )
    galaxy = Table(
        name="Galaxy",
        columns=[
            int_col("objid", primary_key=True, low=1_000, high=9_000_000),
            float_col("ra", 0.0, 360.0),
            float_col("dec", -90.0, 90.0),
            float_col("petroR50_r", 0.0, 30.0),
            float_col("petroR90_r", 0.0, 60.0),
            float_col("expAB_r", 0.0, 1.0),
            Column("fracDeV_r", ColType.FLOAT, spec=ValueSpec("float_range", 0, 1)),
        ],
        foreign_keys=[ForeignKey("objid", "PhotoObj", "objid")],
    )
    return Schema(
        name="sdss",
        tables=[spec_obj, photo_obj, photo_tag, field, spec_line, neighbors, galaxy],
        description="Sloan Digital Sky Survey SkyServer subset",
    )


#: Module-level singleton; schemas are immutable in practice.
SDSS_SCHEMA = build_sdss_schema()
