"""Schema catalogs for the four workloads."""

from repro.schema.imdb import IMDB_SCHEMA, build_imdb_schema
from repro.schema.model import (
    ColType,
    Column,
    ForeignKey,
    Schema,
    Table,
    ValueSpec,
    date_col,
    float_col,
    int_col,
    text_col,
)
from repro.schema.sdss import SDSS_SCHEMA, build_sdss_schema
from repro.schema.spider import SPIDER_SCHEMAS, build_spider_schemas
from repro.schema.sqlshare import SQLSHARE_SCHEMAS, build_sqlshare_schemas

__all__ = [
    "ColType",
    "Column",
    "ForeignKey",
    "Schema",
    "Table",
    "ValueSpec",
    "int_col",
    "float_col",
    "text_col",
    "date_col",
    "SDSS_SCHEMA",
    "IMDB_SCHEMA",
    "SQLSHARE_SCHEMAS",
    "SPIDER_SCHEMAS",
    "build_sdss_schema",
    "build_imdb_schema",
    "build_sqlshare_schemas",
    "build_spider_schemas",
]
