"""Relational schema model.

Schemas serve three purposes in the reproduction:

* the workload generators draw tables/columns from them;
* the semantic analyzer resolves names and types against them;
* the SQLite backend materialises them with synthetic rows for
  execution-based equivalence checking.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional


class ColType(enum.Enum):
    """Abstract column types used for type-compatibility checking."""

    INT = "INT"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    DATE = "DATE"
    BOOL = "BOOL"

    @property
    def is_numeric(self) -> bool:
        return self in (ColType.INT, ColType.FLOAT)

    def compatible_with(self, other: "ColType") -> bool:
        """Loose comparability: numerics inter-compare; otherwise exact."""
        if self.is_numeric and other.is_numeric:
            return True
        return self is other

    @property
    def sqlite_affinity(self) -> str:
        return {
            ColType.INT: "INTEGER",
            ColType.FLOAT: "REAL",
            ColType.TEXT: "TEXT",
            ColType.DATE: "TEXT",
            ColType.BOOL: "INTEGER",
        }[self]


@dataclass(frozen=True)
class ValueSpec:
    """How to synthesise values for a column.

    ``kind`` selects the generator: ``int_range``, ``float_range``,
    ``choice``, ``serial``, ``text``, ``date_range``.  ``low``/``high``
    bound numeric generators; ``choices`` feeds categorical ones.
    """

    kind: str = "int_range"
    low: float = 0
    high: float = 1000
    choices: tuple = ()


@dataclass(frozen=True)
class Column:
    """A column definition."""

    name: str
    col_type: ColType
    nullable: bool = True
    primary_key: bool = False
    spec: Optional[ValueSpec] = None


@dataclass(frozen=True)
class ForeignKey:
    """A single-column foreign key."""

    column: str
    ref_table: str
    ref_column: str


@dataclass
class Table:
    """A table definition."""

    name: str
    columns: list[Column] = field(default_factory=list)
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_name = {column.name.lower(): column for column in self.columns}

    def column(self, name: str) -> Optional[Column]:
        """Case-insensitive column lookup."""
        return self._by_name.get(name.lower())

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    @property
    def primary_key_columns(self) -> list[Column]:
        return [column for column in self.columns if column.primary_key]

    def numeric_columns(self) -> list[Column]:
        return [c for c in self.columns if c.col_type.is_numeric]

    def text_columns(self) -> list[Column]:
        return [c for c in self.columns if c.col_type is ColType.TEXT]


@dataclass
class Schema:
    """A named collection of tables."""

    name: str
    tables: list[Table] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        self._by_name = {table.name.lower(): table for table in self.tables}

    def table(self, name: str) -> Optional[Table]:
        """Case-insensitive table lookup."""
        return self._by_name.get(name.lower())

    def has_table(self, name: str) -> bool:
        return name.lower() in self._by_name

    @property
    def table_names(self) -> list[str]:
        return [table.name for table in self.tables]

    def columns_named(self, column_name: str) -> list[tuple[Table, Column]]:
        """All (table, column) pairs whose column matches *column_name*.

        Used by the analyzer to detect ambiguous column references and by
        the corruption engine to *create* them.
        """
        matches = []
        for table in self.tables:
            column = table.column(column_name)
            if column is not None:
                matches.append((table, column))
        return matches

    def shared_column_names(self) -> list[str]:
        """Column names appearing in two or more tables (ambiguity fodder)."""
        seen: dict[str, int] = {}
        for table in self.tables:
            for column in table.columns:
                key = column.name.lower()
                seen[key] = seen.get(key, 0) + 1
        return sorted(name for name, count in seen.items() if count > 1)

    def iter_columns(self) -> Iterator[tuple[Table, Column]]:
        for table in self.tables:
            for column in table.columns:
                yield table, column

    def join_edges(self) -> list[tuple[str, str, str, str]]:
        """All FK join edges as (table, column, ref_table, ref_column)."""
        edges = []
        for table in self.tables:
            for fk in table.foreign_keys:
                edges.append((table.name, fk.column, fk.ref_table, fk.ref_column))
        return edges


def int_col(
    name: str,
    low: int = 0,
    high: int = 1_000_000,
    primary_key: bool = False,
    nullable: bool = True,
) -> Column:
    """Shorthand for an INT column with a range spec."""
    spec = ValueSpec(kind="serial" if primary_key else "int_range", low=low, high=high)
    return Column(
        name,
        ColType.INT,
        nullable=nullable and not primary_key,
        primary_key=primary_key,
        spec=spec,
    )


def float_col(name: str, low: float = 0.0, high: float = 1000.0) -> Column:
    """Shorthand for a FLOAT column with a range spec."""
    return Column(name, ColType.FLOAT, spec=ValueSpec("float_range", low, high))


def text_col(name: str, choices: tuple = ()) -> Column:
    """Shorthand for a TEXT column, categorical when *choices* is given."""
    spec = ValueSpec("choice", choices=choices) if choices else ValueSpec("text")
    return Column(name, ColType.TEXT, spec=spec)


def date_col(name: str) -> Column:
    """Shorthand for a DATE column."""
    return Column(name, ColType.DATE, spec=ValueSpec("date_range", 2000, 2024))
