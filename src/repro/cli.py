"""Command-line interface: ``python -m repro`` / ``repro-sql``.

Subcommands:

* ``list`` — show all reproducible artifacts;
* ``run <artifact> [...]`` — run one or more artifact reproductions
  (``all`` runs everything) and print their reports.  ``--workers N``
  fans instance shards across N processes (byte-identical output);
  cells are cached under ``--cache-dir`` unless ``--no-cache`` is given.
  Every run that evaluates grid cells also persists a RunRecord under
  ``--runs-dir`` (``results/runs/`` by default; ``--no-record`` skips)
  plus a write-ahead journal, so an interrupted run (Ctrl-C, SIGTERM,
  crash — exit code 4) continues with ``run --resume RUN_ID`` to
  byte-identical metrics.  ``--on-cell-error skip|degrade`` completes a
  grid around failing cells, ``--request-timeout`` / ``--cell-deadline``
  bound a hung endpoint, ``--breaker-threshold`` tunes the backend
  circuit breaker, and ``--chaos PLAN`` arms the fault-injection
  harness (see docs/RESILIENCE.md);
* ``workloads`` — print the Table 2 overview for all four workloads;
* ``rewrite list|apply`` — inspect the semantics-preserving rewrite
  catalog or apply it to a SQL statement (``--name``, ``--families``,
  ``--steps``, ``--schema``);
* ``backends list`` — show the registered model backends.  ``run``
  selects one with ``--backend NAME`` (plus ``--backend-opt KEY=VALUE``
  for endpoint options, ``--max-concurrency`` / ``--rps`` for the
  dispatcher, and ``--fixtures-dir`` / ``--record-fixtures`` for the
  record/replay transport);
* ``cache info|clear`` — inspect or wipe the on-disk result cache;
* ``runs list|show`` — browse persisted RunRecords;
* ``report [RUN_ID]`` — render the Markdown + HTML + JSON report bundle
  for a stored run (latest by default), re-reading cells from the
  engine cache — zero model invocations when the cache is warm;
* ``report --compare RUN_A RUN_B`` — align two stored runs and flag
  metric regressions (exit code 3 when any are found);
* ``bench`` — measure the lexer/parser/dataset-build/grid hot paths and
  write ``benchmarks/BENCH_hotpaths.json`` (``--quick --check`` is the
  CI perf smoke mode);
* ``export`` — write the labeled benchmark datasets to JSON.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.evalfw.runner import ExperimentRunner
from repro.experiments.registry import ARTIFACT_IDS, EXPERIMENTS, run_experiment
from repro.reporting.run_record import DEFAULT_RUNS_DIR

#: Where ``run`` caches evaluated cells unless told otherwise.
DEFAULT_CACHE_DIR = Path(".repro-cache")

#: Errors a record load can surface: missing/ambiguous ids (KeyError),
#: unreadable files (OSError), corrupt JSON or version mismatches
#: (ValueError, which json.JSONDecodeError subclasses).
_RECORD_ERRORS = (KeyError, OSError, ValueError)

#: Where ``report`` writes bundles unless told otherwise.
DEFAULT_REPORTS_DIR = Path("reports")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sql",
        description=(
            "Reproduction of 'Evaluating SQL Understanding in Large "
            "Language Models' (EDBT 2025)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="generation seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list reproducible artifacts")

    run_parser = subparsers.add_parser(
        "run", help="run artifact reproductions or a workload grid"
    )
    run_parser.add_argument(
        "artifacts",
        nargs="*",
        help=(
            f"artifact ids ({', '.join(ARTIFACT_IDS)}) or 'all'; with "
            "--workload: task names to restrict the grid to"
        ),
    )
    run_parser.add_argument(
        "--workload",
        default=None,
        metavar="NAME",
        help=(
            "evaluate a task grid over one workload instead of artifacts: "
            "a paper workload (sdss, sqlshare, join_order, spider) or a "
            "synthetic spec such as synthetic:default or synthetic:joins:n=1000"
        ),
    )
    run_parser.add_argument(
        "--strata",
        default=None,
        metavar="S1,S2,...",
        help="restrict a synthetic --workload to these strata",
    )
    run_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to also write one .txt report per artifact",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for cell evaluation (1 = in-process)",
    )
    run_parser.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="instances per dispatched shard (default: engine default)",
    )
    run_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help=(
            "stream cells in N-instance chunks (bounded memory); 0 forces "
            "the materialised path; default: auto — large synthetic "
            "workloads stream, everything else materialises"
        ),
    )
    run_parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        help="directory for the on-disk result cache",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell, neither reading nor writing the cache",
    )
    run_parser.add_argument(
        "--runs-dir",
        type=Path,
        default=DEFAULT_RUNS_DIR,
        help="directory where the run's RunRecord is persisted",
    )
    run_parser.add_argument(
        "--no-record",
        action="store_true",
        help="do not persist a RunRecord for this run",
    )
    run_parser.add_argument(
        "--max-instances",
        type=int,
        default=None,
        help="cap instances per dataset (smoke runs, fixture recording)",
    )
    run_parser.add_argument(
        "--backend",
        default="simulated",
        help="model backend (see 'repro backends list')",
    )
    run_parser.add_argument(
        "--backend-opt",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="backend option (repeatable), e.g. base_url=http://host/v1",
    )
    run_parser.add_argument(
        "--max-concurrency",
        type=int,
        default=None,
        help="dispatcher in-flight request bound (default 8)",
    )
    run_parser.add_argument(
        "--rps",
        type=float,
        default=None,
        help="dispatcher sustained requests/second (default: unthrottled)",
    )
    run_parser.add_argument(
        "--fixtures-dir",
        type=Path,
        default=None,
        help="fixtures directory for the replay backend",
    )
    run_parser.add_argument(
        "--record-fixtures",
        action="store_true",
        help="replay backend records through its inner backend",
    )
    run_parser.add_argument(
        "--resume",
        default=None,
        metavar="RUN_ID",
        help=(
            "resume an interrupted run from its journal under --runs-dir; "
            "the grid, backend and seed come from the journal manifest, so "
            "no other grid flags are allowed"
        ),
    )
    run_parser.add_argument(
        "--on-cell-error",
        choices=("fail", "skip", "degrade"),
        default="fail",
        help=(
            "policy when one grid cell cannot be evaluated: fail aborts the "
            "run (default), skip/degrade record a structured failure and "
            "continue with the remaining cells"
        ),
    )
    run_parser.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-request wall-clock timeout (HTTP transport + dispatcher "
            "safety net); default: backend default (60s for openai_compat)"
        ),
    )
    run_parser.add_argument(
        "--cell-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per grid cell (default: unbounded)",
    )
    run_parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        metavar="N",
        help=(
            "circuit breaker trips after N consecutive backend failures "
            "(0 disables; default: auto — on for openai_compat, off for "
            "the in-process backends)"
        ),
    )
    run_parser.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN",
        help=(
            "arm a fault-injection plan against this run, e.g. "
            "'flaky:rate=0.3:kind=429;sigterm:after-cells=2' "
            "(see docs/RESILIENCE.md)"
        ),
    )

    subparsers.add_parser("workloads", help="print the Table 2 overview")

    rewrite_parser = subparsers.add_parser(
        "rewrite",
        help="inspect or apply the semantics-preserving rewrite catalog",
    )
    rewrite_sub = rewrite_parser.add_subparsers(dest="action", required=True)
    rewrite_sub.add_parser("list", help="show the rewrite catalog")
    apply_parser = rewrite_sub.add_parser(
        "apply", help="apply catalog rewrites to a SQL statement"
    )
    apply_parser.add_argument("sql", help="the SELECT statement to rewrite")
    apply_parser.add_argument(
        "--name",
        default=None,
        help="apply one specific transform by catalog name",
    )
    apply_parser.add_argument(
        "--families",
        default=None,
        metavar="F1+F2",
        help="restrict to these '+'-separated transform families",
    )
    apply_parser.add_argument(
        "--steps",
        type=int,
        default=1,
        help="maximum chain length (default 1)",
    )
    apply_parser.add_argument(
        "--schema",
        default=None,
        choices=("sdss", "imdb"),
        help="resolve columns against this schema (enables "
        "schema-dependent transforms such as star expansion)",
    )

    backends_parser = subparsers.add_parser(
        "backends", help="list the registered model backends"
    )
    backends_parser.add_argument("action", choices=("list",))

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or wipe the on-disk result cache"
    )
    cache_parser.add_argument("action", choices=("info", "clear"))
    cache_parser.add_argument(
        "--cache-dir", type=Path, default=DEFAULT_CACHE_DIR, help="cache directory"
    )

    runs_parser = subparsers.add_parser(
        "runs", help="browse persisted run records"
    )
    runs_parser.add_argument("action", choices=("list", "show"))
    runs_parser.add_argument(
        "run_id", nargs="?", default=None, help="run id (for 'show')"
    )
    runs_parser.add_argument(
        "--runs-dir", type=Path, default=DEFAULT_RUNS_DIR, help="records directory"
    )

    report_parser = subparsers.add_parser(
        "report",
        help="render a Markdown+HTML+JSON report bundle from a stored run",
    )
    report_parser.add_argument(
        "run_id",
        nargs="?",
        default=None,
        help="run id to report on (default: the latest record)",
    )
    report_parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("RUN_A", "RUN_B"),
        default=None,
        help="compare two stored runs and flag metric regressions",
    )
    report_parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="regression threshold for --compare (default 0.005)",
    )
    report_parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_REPORTS_DIR,
        help="directory to write the report bundle under",
    )
    report_parser.add_argument(
        "--runs-dir", type=Path, default=DEFAULT_RUNS_DIR, help="records directory"
    )
    report_parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        help="engine cache to re-read cells from",
    )
    report_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes if any cells must be recomputed",
    )
    report_parser.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="instances per dispatched shard (default: engine default)",
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="measure lexer/parser/grid hot paths (BENCH_hotpaths.json)",
    )
    bench_parser.add_argument(
        "--phase",
        choices=("before", "after"),
        default="after",
        help="which section of the BENCH JSON to write",
    )
    bench_parser.add_argument("--workers", type=int, default=4)
    bench_parser.add_argument("--max-instances", type=int, default=None)
    bench_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON (default: benchmarks/BENCH_hotpaths.json)",
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="cap the grid for a CI-sized smoke measurement",
    )
    bench_parser.add_argument(
        "--check",
        action="store_true",
        help="fail if warm grid time or parse throughput regresses >3x",
    )
    bench_parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail on >20%% normalized throughput regression vs the "
        "committed BENCH JSON baseline",
    )

    export_parser = subparsers.add_parser(
        "export", help="export the labeled benchmark datasets to JSON"
    )
    export_parser.add_argument(
        "--out", type=Path, default=Path("benchmark_data"), help="output directory"
    )
    export_parser.add_argument(
        "--tasks", nargs="*", default=None, help="restrict to these tasks"
    )
    return parser


def _resume_from_journal(args):
    """Load a journal and overwrite *args* grid flags from its manifest.

    Returns ``(journal, wanted, workload_name, chunk_size, backend_spec)``
    or an ``int`` exit code on error.  The manifest is authoritative:
    resuming under different settings would change cell cache keys and
    silently recompute instead of resuming.
    """
    from repro.lifecycle import JournalError, RunJournal
    from repro.llm.backends import BackendSpec

    if args.artifacts or args.workload is not None or args.strata is not None:
        print(
            "--resume reconstructs the grid from the journal manifest; "
            "drop the artifact/--workload/--strata arguments",
            file=sys.stderr,
        )
        return 2
    if args.chaos is not None:
        print(
            "--resume does not re-arm --chaos: resume is the recovery "
            "path (flaky-backend chaos persists via the journalled "
            "backend spec)",
            file=sys.stderr,
        )
        return 2
    if args.no_record:
        print("--resume conflicts with --no-record", file=sys.stderr)
        return 2
    try:
        journal = RunJournal.load(args.runs_dir, args.resume)
    except JournalError as error:
        print(str(error), file=sys.stderr)
        return 2
    cfg = journal.config
    wanted = list(cfg.get("artifacts") or ())
    workload_name = cfg.get("workload")
    chunk_size = cfg.get("chunk_size")
    args.seed = cfg.get("seed", 0)
    args.workers = cfg.get("workers", 1)
    args.shard_size = cfg.get("shard_size")
    cache_dir = cfg.get("cache_dir")
    args.no_cache = cache_dir is None
    if cache_dir is not None:
        args.cache_dir = Path(cache_dir)
    args.max_instances = cfg.get("max_instances")
    args.max_concurrency = cfg.get("max_concurrency")
    args.rps = cfg.get("rps")
    args.on_cell_error = cfg.get("on_cell_error", "fail")
    args.request_timeout = cfg.get("request_timeout")
    args.cell_deadline = cfg.get("cell_deadline")
    args.breaker_threshold = cfg.get("breaker_threshold")
    backend_cfg = cfg.get("backend", {})
    backend_spec = BackendSpec.build(
        backend_cfg.get("name", "simulated"),
        dict(backend_cfg.get("options", {})),
    )
    states = journal.states()
    rendered = ", ".join(f"{state}={n}" for state, n in sorted(states.items()))
    print(
        f"[resume] {journal.run_id}: {rendered or 'no journalled cells'}",
        file=sys.stderr,
    )
    return (journal, wanted, workload_name, chunk_size, backend_spec)


def _cmd_run(args) -> int:
    from repro.lifecycle import RunJournal
    from repro.llm.backends import backend_names, spec_from_cli

    if args.resume is not None:
        resumed = _resume_from_journal(args)
        if isinstance(resumed, int):
            return resumed
        journal, wanted, workload_name, chunk_size, backend_spec = resumed
        chaos_plan = None
        return _execute_run(
            args, journal, wanted, workload_name, chunk_size, backend_spec,
            chaos_plan,
        )

    wanted = list(args.artifacts)
    workload_name: str | None = None
    if args.workload is not None:
        from repro.tasks.registry import tasks_for_workload
        from repro.workloads import resolve_workload_name

        spec = args.workload
        if args.strata is not None:
            if ":strata=" in spec:
                print(
                    "--strata conflicts with a strata= segment already in "
                    "--workload; use one or the other",
                    file=sys.stderr,
                )
                return 2
            parts = [part for part in args.strata.split(",") if part]
            if not parts:
                print("--strata requires at least one stratum name", file=sys.stderr)
                return 2
            spec += ":strata=" + "+".join(parts)
        try:
            workload_name = resolve_workload_name(spec)
        except (KeyError, ValueError) as error:
            # str(KeyError) wraps its argument in quotes; print the
            # message itself for both exception types.
            print(error.args[0] if error.args else str(error), file=sys.stderr)
            return 2
        applicable = tasks_for_workload(workload_name)
        unknown = [t for t in wanted if t not in applicable]
        if unknown:
            print(
                f"unknown tasks for workload {workload_name!r}: "
                f"{', '.join(unknown)} "
                f"(it supports: {', '.join(applicable)})",
                file=sys.stderr,
            )
            return 2
        wanted = wanted or list(applicable)
    else:
        if args.strata is not None:
            print("--strata requires --workload", file=sys.stderr)
            return 2
        if not wanted:
            print("run requires artifact ids or --workload", file=sys.stderr)
            return 2
        if wanted == ["all"]:
            wanted = list(ARTIFACT_IDS)
        unknown = [a for a in wanted if a not in EXPERIMENTS]
        if unknown:
            print(f"unknown artifacts: {', '.join(unknown)}", file=sys.stderr)
            return 2
    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.shard_size is not None and args.shard_size < 1:
        print(f"--shard-size must be >= 1, got {args.shard_size}", file=sys.stderr)
        return 2
    if args.max_concurrency is not None and args.max_concurrency < 1:
        print(
            f"--max-concurrency must be >= 1, got {args.max_concurrency}",
            file=sys.stderr,
        )
        return 2
    if args.rps is not None and args.rps <= 0:
        print(f"--rps must be > 0, got {args.rps}", file=sys.stderr)
        return 2
    if args.max_instances is not None and args.max_instances < 1:
        print(
            f"--max-instances must be >= 1, got {args.max_instances}",
            file=sys.stderr,
        )
        return 2
    if args.chunk_size is not None and args.chunk_size < 0:
        print(
            f"--chunk-size must be >= 0, got {args.chunk_size}",
            file=sys.stderr,
        )
        return 2
    if args.request_timeout is not None and args.request_timeout <= 0:
        print(
            f"--request-timeout must be > 0, got {args.request_timeout}",
            file=sys.stderr,
        )
        return 2
    if args.cell_deadline is not None and args.cell_deadline <= 0:
        print(
            f"--cell-deadline must be > 0, got {args.cell_deadline}",
            file=sys.stderr,
        )
        return 2
    if args.breaker_threshold is not None and args.breaker_threshold < 0:
        print(
            f"--breaker-threshold must be >= 0, got {args.breaker_threshold}",
            file=sys.stderr,
        )
        return 2
    chunk_size = _resolve_chunk_size(args.chunk_size, workload_name)
    try:
        backend_spec = spec_from_cli(
            args.backend,
            opts=args.backend_opt,
            fixtures_dir=(
                str(args.fixtures_dir) if args.fixtures_dir is not None else None
            ),
            record_fixtures=args.record_fixtures,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if backend_spec.name not in backend_names():
        print(
            f"unknown backend {backend_spec.name!r}; "
            f"see 'repro backends list'",
            file=sys.stderr,
        )
        return 2

    chaos_plan = None
    if args.chaos is not None:
        from repro.chaos import ChaosPlanError, ChaosPlan, wrap_backend_spec

        try:
            chaos_plan = ChaosPlan.parse(args.chaos)
            backend_spec = wrap_backend_spec(backend_spec, chaos_plan, args.seed)
        except ChaosPlanError as error:
            print(str(error), file=sys.stderr)
            return 2

    # The per-request timeout also folds into the openai_compat HTTP
    # transport (an explicit timeout= backend option wins): the
    # dispatcher's asyncio.wait_for is only the safety net.
    if (
        args.request_timeout is not None
        and backend_spec.name == "openai_compat"
        and backend_spec.option("timeout") is None
    ):
        from repro.llm.backends import BackendSpec

        options = dict(backend_spec.as_dict())
        options["timeout"] = str(args.request_timeout)
        backend_spec = BackendSpec.build(backend_spec.name, options)

    journal = None
    if not args.no_record:
        manifest_config = {
            "artifacts": list(wanted),
            "workload": workload_name,
            "seed": args.seed,
            "workers": args.workers,
            "shard_size": args.shard_size,
            "chunk_size": chunk_size,
            "cache_dir": None if args.no_cache else str(args.cache_dir),
            "max_instances": args.max_instances,
            "backend": {
                "name": backend_spec.name,
                "options": backend_spec.as_dict(),
            },
            "max_concurrency": args.max_concurrency,
            "rps": args.rps,
            "on_cell_error": args.on_cell_error,
            "request_timeout": args.request_timeout,
            "cell_deadline": args.cell_deadline,
            "breaker_threshold": args.breaker_threshold,
            "chaos": args.chaos,
        }
        journal = RunJournal.begin(args.runs_dir, manifest_config)
    return _execute_run(
        args, journal, wanted, workload_name, chunk_size, backend_spec,
        chaos_plan,
    )


def _run_errors() -> tuple:
    """Error classes a run can fail with by *cause*, not by *bug*."""
    from repro.engine.streaming import StreamError
    from repro.llm.backends import BackendError

    return (BackendError, StreamError)


def _execute_run(
    args, journal, wanted, workload_name, chunk_size, backend_spec, chaos_plan
) -> int:
    """Evaluate one (possibly resumed) run under journal + interrupt latch."""
    import dataclasses

    from repro.lifecycle import (
        EXIT_INTERRUPTED,
        GracefulInterrupt,
        RunInterrupted,
    )
    from repro.llm.backends import DEFAULT_MAX_CONCURRENCY
    from repro.reporting.run_record import RunRecordStore

    runner = ExperimentRunner(
        seed=args.seed,
        workers=args.workers,
        shard_size=args.shard_size,
        cache_dir=None if args.no_cache else args.cache_dir,
        max_instances=args.max_instances,
        backend=backend_spec,
        max_concurrency=args.max_concurrency or DEFAULT_MAX_CONCURRENCY,
        rps=args.rps,
        chunk_size=chunk_size,
        on_cell_error=args.on_cell_error,
        request_timeout=args.request_timeout,
        cell_deadline=args.cell_deadline,
        breaker_threshold=args.breaker_threshold,
    )
    engine = runner.engine
    engine.journal = journal
    if chaos_plan is not None:
        from repro.chaos import apply_chaos, corrupt_cache_segment

        apply_chaos(chaos_plan, engine)
        if chaos_plan.corrupts_segment and not args.no_cache:
            corrupted = corrupt_cache_segment(args.cache_dir, seed=args.seed)
            if corrupted is not None:
                print(f"[chaos] corrupted cache segment {corrupted}", file=sys.stderr)
    interrupt = GracefulInterrupt()
    engine.interrupt = interrupt
    artifact_seconds: dict[str, float] = {}
    run_started = time.perf_counter()
    try:
        with interrupt:
            if workload_name is not None:
                for task in wanted:
                    started = time.perf_counter()
                    text = _workload_grid_text(runner, task, workload_name)
                    artifact_seconds[task] = round(
                        time.perf_counter() - started, 3
                    )
                    title = f"Task {task} over workload {workload_name}"
                    print(f"\n=== {title} ===\n")
                    print(text)
                    if args.out is not None:
                        args.out.mkdir(parents=True, exist_ok=True)
                        (args.out / f"{task}.txt").write_text(
                            f"{title}\n\n{text}\n", encoding="utf-8"
                        )
            else:
                for artifact in wanted:
                    started = time.perf_counter()
                    result = run_experiment(artifact, runner)
                    artifact_seconds[artifact] = round(
                        time.perf_counter() - started, 3
                    )
                    print(f"\n=== {result.title} ===\n")
                    print(result.text)
                    if args.out is not None:
                        args.out.mkdir(parents=True, exist_ok=True)
                        (args.out / f"{artifact}.txt").write_text(
                            f"{result.title}\n\n{result.text}\n", encoding="utf-8"
                        )
    except RunInterrupted as stop:
        hint = (
            f"; resume with 'repro run --resume {journal.run_id}'"
            if journal is not None
            else " (not resumable: run started with --no-record)"
        )
        print(
            f"interrupted by {stop.signal_name} — drained cleanly{hint}",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    except _run_errors() as error:
        # A named failure, not a traceback: the journal keeps the cells
        # committed so far, so the run is resumable after the cause
        # (dead endpoint, poisoned chunk ...) is fixed.
        hint = (
            f" — committed cells are journalled; resume with "
            f"'repro run --resume {journal.run_id}'"
            if journal is not None
            else ""
        )
        print(
            f"run failed: {type(error).__name__}: {error}{hint}",
            file=sys.stderr,
        )
        return 1
    finally:
        runner.close()
    stream_stats = engine.stream_stats()
    print(
        f"[engine] workers={args.workers} backend={backend_spec.name} "
        f"cells computed={engine.computed_cells} "
        f"cached={engine.cached_cells}"
        + ("" if args.no_cache else f" (cache: {args.cache_dir})"),
        file=sys.stderr,
    )
    if stream_stats is not None:
        print(
            f"[stream] chunk_size={chunk_size} "
            f"chunks={stream_stats['chunks']} "
            f"instances={stream_stats['instances']} "
            f"workers_effective={stream_stats['workers_used']} "
            f"redispatched={stream_stats['redispatched']}",
            file=sys.stderr,
        )
    if not args.no_record:
        record = runner.run_record(
            artifacts=() if workload_name is not None else tuple(wanted),
            artifact_seconds=artifact_seconds,
            total_seconds=time.perf_counter() - run_started,
            notes=(
                f"workload grid over `{workload_name}` "
                f"(tasks: {', '.join(wanted)})"
                if workload_name is not None
                else ""
            ),
        )
        if journal is not None:
            # The record shares the journal's id (and start stamp), so
            # an interrupted-then-resumed run lands on the same record
            # path as an uninterrupted one.
            record = dataclasses.replace(
                record,
                run_id=journal.run_id,
                created_at=journal.created_at or record.created_at,
            )
        path = RunRecordStore(args.runs_dir).save(record)
        print(f"[run-record] {record.run_id} -> {path}", file=sys.stderr)
    return 0


def _resolve_chunk_size(flag: int | None, workload_name: str | None) -> int | None:
    """Resolve ``--chunk-size`` into an engine chunk size (None = off).

    ``--chunk-size N`` forces streaming with N-instance chunks and
    ``--chunk-size 0`` forces the materialised path.  The default (no
    flag) is automatic: a synthetic ``--workload`` too large to
    materialise comfortably streams at the default chunk size, so
    ``repro run --workload synthetic:default:n=1000000`` runs in bounded
    memory without any extra flags, while the paper workloads (a few
    hundred queries) keep the materialised path they always had.
    """
    from repro.workloads.streaming import (
        DEFAULT_CHUNK_SIZE,
        STREAM_AUTO_THRESHOLD,
        streamable_total,
    )
    from repro.workloads.synthetic import is_synthetic

    if flag is not None:
        return None if flag == 0 else flag
    if workload_name is None or not is_synthetic(workload_name):
        return None
    total = streamable_total(workload_name)
    if total is not None and total > STREAM_AUTO_THRESHOLD:
        return DEFAULT_CHUNK_SIZE
    return None


def _workload_grid_text(runner, task: str, workload_name: str) -> str:
    """Evaluate one task over one workload and render its metric table."""
    from repro.evalfw.report import render_table
    from repro.reporting.run_record import cell_record_from_result

    grid = runner.run_task(task, workloads=(workload_name,))
    model_order = {profile.name: i for i, profile in enumerate(runner.models)}
    rows = []
    for (model, _), cell in sorted(
        grid.items(), key=lambda item: model_order.get(item[0][0], 99)
    ):
        record = cell_record_from_result(
            cell,
            model_display=runner.engine.profile(model).display_name,
            cached=False,
            seconds=None,
        )
        row: dict[str, object] = {
            "Model": record.model_display,
            "n": record.instances,
        }
        row.update(record.metrics)
        rows.append(row)
    return render_table(rows, f"{task} metrics on {workload_name}")


def _cmd_rewrite(args) -> int:
    from repro.evalfw.report import render_table
    from repro.rewrite import CATALOG, catalog_fingerprint

    if args.action == "list":
        rows = [
            {
                "name": transform.name,
                "family": transform.family,
                "description": transform.description,
            }
            for transform in CATALOG
        ]
        print(render_table(rows, "Semantics-preserving rewrite catalog"))
        print(f"catalog fingerprint: {catalog_fingerprint()[:12]}")
        return 0

    from repro.rewrite import apply_rewrite, apply_rewrite_chain
    from repro.sql import try_parse
    from repro.util import derive_rng

    if args.steps < 1:
        print(f"--steps must be >= 1, got {args.steps}", file=sys.stderr)
        return 2
    if args.name is not None and args.families is not None:
        print("--name conflicts with --families", file=sys.stderr)
        return 2
    statement = try_parse(args.sql)
    if statement is None:
        print(f"could not parse SQL: {args.sql!r}", file=sys.stderr)
        return 2
    schema = None
    if args.schema is not None:
        from repro.workloads.synthetic import build_schema

        schema = build_schema(args.schema)
    families = (
        tuple(part for part in args.families.split("+") if part)
        if args.families is not None
        else None
    )
    rng = derive_rng("rewrite-cli", args.seed)
    try:
        if args.name is not None:
            applied = apply_rewrite(
                statement, schema, rng, name=args.name, original_text=args.sql
            )
            if applied is None:
                print(
                    f"no applicable site for {args.name!r} in this statement",
                    file=sys.stderr,
                )
                return 1
            print(applied.text)
            print(f"-- {applied.name}: {applied.detail}", file=sys.stderr)
            return 0
        chain = apply_rewrite_chain(
            statement,
            schema,
            rng,
            max_steps=args.steps,
            families=families,
            original_text=args.sql,
        )
    except (KeyError, ValueError) as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    if chain is None:
        print("no catalog transform applies to this statement", file=sys.stderr)
        return 1
    print(chain.text)
    for step in chain.steps:
        print(f"-- {step.name}: {step.detail}", file=sys.stderr)
    return 0


def _cmd_runs(args) -> int:
    from repro.evalfw.report import render_table
    from repro.reporting.run_record import RunRecordStore

    store = RunRecordStore(args.runs_dir)
    if args.action == "list":
        try:
            records = store.records()
        except _RECORD_ERRORS as error:
            print(f"unreadable run record: {error}", file=sys.stderr)
            return 2
        if not records:
            print(f"no run records under {store.root}")
            return 0
        rows = [
            {
                "run_id": record.run_id,
                "created": record.created_at,
                "seed": record.seed,
                "workers": record.workers,
                "artifacts": len(record.artifacts),
                "cells": len(record.cells),
                "cached": record.cached_cells,
                "computed": record.computed_cells,
                "seconds": record.total_seconds,
            }
            for record in records
        ]
        print(render_table(rows, f"Run records in {store.root}"))
        return 0
    if args.run_id is None:
        print("runs show requires a run id", file=sys.stderr)
        return 2
    try:
        record = store.load(args.run_id)
    except _RECORD_ERRORS as error:
        print(str(error), file=sys.stderr)
        return 2
    print(f"run_id   : {record.run_id}")
    print(f"created  : {record.created_at}")
    print(f"seed     : {record.seed}  workers: {record.workers}")
    print(f"source   : {record.source_fingerprint[:12]}")
    backend_line = record.backend
    if record.backend_options:
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(record.backend_options.items())
        )
        backend_line += f" ({rendered})"
    print(f"backend  : {backend_line}")
    print(f"cache    : {record.cache_dir or '(disabled)'}")
    print(f"artifacts: {', '.join(record.artifacts) or '(none)'}")
    print(
        f"cells    : {len(record.cells)} "
        f"({record.cached_cells} cached, {record.computed_cells} computed)"
    )
    if record.on_cell_error != "fail" or record.failures:
        print(
            f"policy   : --on-cell-error {record.on_cell_error} "
            f"({len(record.failures)} cell(s) absorbed)"
        )
    from repro.lifecycle import JournalError, RunJournal

    try:
        journal = RunJournal.load(args.runs_dir, record.run_id)
    except JournalError:
        journal = None
    if journal is not None:
        states = journal.states()
        rendered = ", ".join(
            f"{state}={n}" for state, n in sorted(states.items())
        )
        print(f"journal  : {rendered or '(no journalled cells)'}")
    if record.failures:
        rows = [
            {
                "model": failure.model,
                "task": failure.task,
                "workload": failure.workload,
                "error": failure.error_class,
                "attempts": failure.attempts,
            }
            for failure in record.failures
        ]
        print()
        print(render_table(rows, "Degraded / skipped cells"))
    if record.cells:
        rows = [
            {
                "model": cell.model_display,
                "task": cell.task,
                "workload": cell.workload,
                "n": cell.instances,
                "F1": cell.metrics.get("binary.f1", "-"),
                "source": "cache" if cell.cached else "computed",
            }
            for cell in record.cells
        ]
        print()
        print(render_table(rows, "Evaluated cells"))
    return 0


def _cmd_report(args) -> int:
    from repro.reporting.bundle import write_report_bundle
    from repro.reporting.compare import (
        DEFAULT_THRESHOLD,
        compare_runs,
        render_comparison,
    )
    from repro.reporting.run_record import RunRecordStore

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.shard_size is not None and args.shard_size < 1:
        print(f"--shard-size must be >= 1, got {args.shard_size}", file=sys.stderr)
        return 2

    store = RunRecordStore(args.runs_dir)

    if args.compare is not None:
        try:
            before = store.load(args.compare[0])
            after = store.load(args.compare[1])
        except _RECORD_ERRORS as error:
            print(str(error), file=sys.stderr)
            return 2
        threshold = (
            args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
        )
        comparison = compare_runs(before, after, threshold=threshold)
        print(render_comparison(comparison))
        return 3 if comparison.has_regressions else 0

    if args.run_id is not None:
        try:
            stored = store.load(args.run_id)
        except _RECORD_ERRORS as error:
            print(str(error), file=sys.stderr)
            return 2
    else:
        try:
            stored = store.latest()
        except _RECORD_ERRORS as error:
            print(f"unreadable run record: {error}", file=sys.stderr)
            return 2
        if stored is None:
            print(
                f"no run records under {store.root}; run "
                "'python -m repro run all' first",
                file=sys.stderr,
            )
            return 2

    # Re-read every recorded task's grid through the engine cache, via
    # the *same backend* the run was recorded with: on a warm cache this
    # touches no model at all, and the regenerated metrics are
    # guaranteed consistent with the current code.  A recording run's
    # 'mode' option is dropped — reporting must replay, never re-record
    # (record mode bypasses the cell cache and re-invokes the inner
    # backend).
    from repro.llm.backends import BackendSpec

    backend_options = dict(stored.backend_options)
    backend_options.pop("mode", None)
    runner = ExperimentRunner(
        seed=stored.seed,
        workers=args.workers,
        shard_size=args.shard_size,
        max_instances=stored.max_instances,
        cache_dir=args.cache_dir,
        backend=BackendSpec.build(stored.backend, backend_options),
    )
    try:
        grids = {
            task: runner.run_task(task, workloads=tuple(stored.workloads(task)))
            for task in stored.tasks()
        }
        fresh = runner.run_record()
    finally:
        runner.close()
    record = fresh.with_identity(stored)
    bundle = write_report_bundle(record, args.out, grids)
    engine = runner.engine
    print(
        f"[report] cells: {engine.cached_cells} cached, "
        f"{engine.computed_cells} computed",
        file=sys.stderr,
    )
    for path in (bundle.markdown, bundle.json_path, bundle.html_index):
        print(path)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for artifact, (description, _) in EXPERIMENTS.items():
            print(f"{artifact:8s} {description}")
        return 0
    if args.command == "workloads":
        from repro.evalfw.report import render_table
        from repro.workloads import load_workload, workload_stats

        rows = [
            workload_stats(load_workload(name, args.seed)).as_row()
            for name in ("sdss", "sqlshare", "join_order", "spider")
        ]
        print(render_table(rows, "Table 2: Workload statistics overview"))
        return 0
    if args.command == "export":
        from repro.tasks.export import export_benchmark

        written = export_benchmark(args.out, seed=args.seed, tasks=args.tasks)
        for path in written:
            print(path)
        print(f"exported {len(written)} dataset files to {args.out}")
        return 0
    if args.command == "backends":
        from repro.llm.backends import describe_backends

        width = max(len(name) for name, _ in describe_backends())
        for name, description in describe_backends():
            print(f"{name:{width}s}  {description}")
        return 0
    if args.command == "cache":
        from repro.engine.cache import ResultCache

        cache = ResultCache(args.cache_dir)
        if args.action == "clear":
            removed = cache.clear()
            print(f"removed {removed} cached entries from {args.cache_dir}")
        else:
            print(f"cache dir : {args.cache_dir}")
            print(f"cells     : {len(cache.entries())}")
            print(f"datasets  : {len(cache.dataset_entries())}")
            print(f"workloads : {len(cache.workload_entries())}")
            print(f"size      : {cache.size_bytes()} bytes")
        return 0
    if args.command == "bench":
        from repro.perf.bench import run_bench

        if args.workers < 1:
            print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
            return 2
        return run_bench(
            phase=args.phase,
            workers=args.workers,
            max_instances=args.max_instances,
            seed=args.seed,
            out=args.out,
            quick=args.quick,
            check=args.check,
            check_baseline=args.check_baseline,
        )
    if args.command == "rewrite":
        return _cmd_rewrite(args)
    if args.command == "runs":
        return _cmd_runs(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "run":
        return _cmd_run(args)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
