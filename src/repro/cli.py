"""Command-line interface: ``python -m repro`` / ``repro-sql``.

Subcommands:

* ``list`` — show all reproducible artifacts;
* ``run <artifact> [...]`` — run one or more artifact reproductions
  (``all`` runs everything) and print their reports.  ``--workers N``
  fans instance shards across N processes (byte-identical output);
  cells are cached under ``--cache-dir`` unless ``--no-cache`` is given;
* ``workloads`` — print the Table 2 overview for all four workloads;
* ``cache info|clear`` — inspect or wipe the on-disk result cache.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.evalfw.runner import ExperimentRunner
from repro.experiments.registry import ARTIFACT_IDS, EXPERIMENTS, run_experiment

#: Where ``run`` caches evaluated cells unless told otherwise.
DEFAULT_CACHE_DIR = Path(".repro-cache")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sql",
        description=(
            "Reproduction of 'Evaluating SQL Understanding in Large "
            "Language Models' (EDBT 2025)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="generation seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list reproducible artifacts")

    run_parser = subparsers.add_parser("run", help="run artifact reproductions")
    run_parser.add_argument(
        "artifacts",
        nargs="+",
        help=f"artifact ids ({', '.join(ARTIFACT_IDS)}) or 'all'",
    )
    run_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to also write one .txt report per artifact",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for cell evaluation (1 = in-process)",
    )
    run_parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        help="directory for the on-disk result cache",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell, neither reading nor writing the cache",
    )

    subparsers.add_parser("workloads", help="print the Table 2 overview")

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or wipe the on-disk result cache"
    )
    cache_parser.add_argument("action", choices=("info", "clear"))
    cache_parser.add_argument(
        "--cache-dir", type=Path, default=DEFAULT_CACHE_DIR, help="cache directory"
    )

    export_parser = subparsers.add_parser(
        "export", help="export the labeled benchmark datasets to JSON"
    )
    export_parser.add_argument(
        "--out", type=Path, default=Path("benchmark_data"), help="output directory"
    )
    export_parser.add_argument(
        "--tasks", nargs="*", default=None, help="restrict to these tasks"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for artifact, (description, _) in EXPERIMENTS.items():
            print(f"{artifact:8s} {description}")
        return 0
    if args.command == "workloads":
        from repro.evalfw.report import render_table
        from repro.workloads import load_workload, workload_stats

        rows = [
            workload_stats(load_workload(name, args.seed)).as_row()
            for name in ("sdss", "sqlshare", "join_order", "spider")
        ]
        print(render_table(rows, "Table 2: Workload statistics overview"))
        return 0
    if args.command == "export":
        from repro.tasks.export import export_benchmark

        written = export_benchmark(args.out, seed=args.seed, tasks=args.tasks)
        for path in written:
            print(path)
        print(f"exported {len(written)} dataset files to {args.out}")
        return 0
    if args.command == "cache":
        from repro.engine.cache import ResultCache

        cache = ResultCache(args.cache_dir)
        if args.action == "clear":
            removed = cache.clear()
            print(f"removed {removed} cached entries from {args.cache_dir}")
        else:
            print(f"cache dir : {args.cache_dir}")
            print(f"cells     : {len(cache.entries())}")
            print(f"datasets  : {len(cache.dataset_entries())}")
            print(f"size      : {cache.size_bytes()} bytes")
        return 0
    if args.command == "run":
        wanted = list(args.artifacts)
        if wanted == ["all"]:
            wanted = list(ARTIFACT_IDS)
        unknown = [a for a in wanted if a not in EXPERIMENTS]
        if unknown:
            print(f"unknown artifacts: {', '.join(unknown)}", file=sys.stderr)
            return 2
        if args.workers < 1:
            print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
            return 2
        runner = ExperimentRunner(
            seed=args.seed,
            workers=args.workers,
            cache_dir=None if args.no_cache else args.cache_dir,
        )
        try:
            for artifact in wanted:
                result = run_experiment(artifact, runner)
                print(f"\n=== {result.title} ===\n")
                print(result.text)
                if args.out is not None:
                    args.out.mkdir(parents=True, exist_ok=True)
                    (args.out / f"{artifact}.txt").write_text(
                        f"{result.title}\n\n{result.text}\n"
                    )
        finally:
            runner.close()
        engine = runner.engine
        print(
            f"[engine] workers={args.workers} "
            f"cells computed={engine.computed_cells} "
            f"cached={engine.cached_cells}"
            + (
                ""
                if args.no_cache
                else f" (cache: {args.cache_dir})"
            ),
            file=sys.stderr,
        )
        return 0
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
