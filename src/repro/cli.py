"""Command-line interface: ``python -m repro`` / ``repro-sql``.

Subcommands:

* ``list`` — show all reproducible artifacts;
* ``run <artifact> [...]`` — run one or more artifact reproductions
  (``all`` runs everything) and print their reports.  ``--workers N``
  fans instance shards across N processes (byte-identical output);
  cells are cached under ``--cache-dir`` unless ``--no-cache`` is given.
  Every run that evaluates grid cells also persists a RunRecord under
  ``--runs-dir`` (``results/runs/`` by default; ``--no-record`` skips)
  plus a write-ahead journal, so an interrupted run (Ctrl-C, SIGTERM,
  crash — exit code 4) continues with ``run --resume RUN_ID`` to
  byte-identical metrics.  ``--on-cell-error skip|degrade`` completes a
  grid around failing cells, ``--request-timeout`` / ``--cell-deadline``
  bound a hung endpoint, ``--breaker-threshold`` tunes the backend
  circuit breaker, and ``--chaos PLAN`` arms the fault-injection
  harness (see docs/RESILIENCE.md);
* ``workloads`` — print the Table 2 overview for all four workloads;
* ``rewrite list|apply`` — inspect the semantics-preserving rewrite
  catalog or apply it to a SQL statement (``--name``, ``--families``,
  ``--steps``, ``--schema``);
* ``backends list`` — show the registered model backends.  ``run``
  selects one with ``--backend NAME`` (plus ``--backend-opt KEY=VALUE``
  for endpoint options, ``--max-concurrency`` / ``--rps`` for the
  dispatcher, and ``--fixtures-dir`` / ``--record-fixtures`` for the
  record/replay transport);
* ``cache info|clear`` — inspect or wipe the on-disk result cache;
* ``runs list|show`` — browse persisted RunRecords;
* ``report [RUN_ID]`` — render the Markdown + HTML + JSON report bundle
  for a stored run (latest by default), re-reading cells from the
  engine cache — zero model invocations when the cache is warm;
* ``report --compare RUN_A RUN_B`` — align two stored runs and flag
  metric regressions (exit code 3 when any are found);
* ``bench`` — measure the lexer/parser/dataset-build/grid hot paths and
  write ``benchmarks/BENCH_hotpaths.json`` (``--quick --check`` is the
  CI perf smoke mode);
* ``export`` — write the labeled benchmark datasets to JSON.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.registry import ARTIFACT_IDS, EXPERIMENTS
from repro.reporting.run_record import DEFAULT_RUNS_DIR

#: Where ``run`` caches evaluated cells unless told otherwise.
DEFAULT_CACHE_DIR = Path(".repro-cache")

#: Errors a record load can surface: missing/ambiguous ids (KeyError),
#: unreadable files (OSError), corrupt JSON or version mismatches
#: (ValueError, which json.JSONDecodeError subclasses).
_RECORD_ERRORS = (KeyError, OSError, ValueError)

#: Where ``report`` writes bundles unless told otherwise.
DEFAULT_REPORTS_DIR = Path("reports")

#: Where ``serve`` journals its durable job queue unless told otherwise.
#: Mirrors :data:`repro.server.jobs.DEFAULT_JOBS_DIR` without importing
#: the server package at parser-build time.
DEFAULT_JOBS_DIR = Path("results/jobs")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sql",
        description=(
            "Reproduction of 'Evaluating SQL Understanding in Large "
            "Language Models' (EDBT 2025)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="generation seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list reproducible artifacts")

    run_parser = subparsers.add_parser(
        "run", help="run artifact reproductions or a workload grid"
    )
    run_parser.add_argument(
        "artifacts",
        nargs="*",
        help=(
            f"artifact ids ({', '.join(ARTIFACT_IDS)}) or 'all'; with "
            "--workload: task names to restrict the grid to"
        ),
    )
    run_parser.add_argument(
        "--workload",
        default=None,
        metavar="NAME",
        help=(
            "evaluate a task grid over one workload instead of artifacts: "
            "a paper workload (sdss, sqlshare, join_order, spider) or a "
            "synthetic spec such as synthetic:default or synthetic:joins:n=1000"
        ),
    )
    run_parser.add_argument(
        "--strata",
        default=None,
        metavar="S1,S2,...",
        help="restrict a synthetic --workload to these strata",
    )
    run_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to also write one .txt report per artifact",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for cell evaluation (1 = in-process)",
    )
    run_parser.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="instances per dispatched shard (default: engine default)",
    )
    run_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help=(
            "stream cells in N-instance chunks (bounded memory); 0 forces "
            "the materialised path; default: auto — large synthetic "
            "workloads stream, everything else materialises"
        ),
    )
    run_parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        help="directory for the on-disk result cache",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell, neither reading nor writing the cache",
    )
    run_parser.add_argument(
        "--runs-dir",
        type=Path,
        default=DEFAULT_RUNS_DIR,
        help="directory where the run's RunRecord is persisted",
    )
    run_parser.add_argument(
        "--no-record",
        action="store_true",
        help="do not persist a RunRecord for this run",
    )
    run_parser.add_argument(
        "--max-instances",
        type=int,
        default=None,
        help="cap instances per dataset (smoke runs, fixture recording)",
    )
    run_parser.add_argument(
        "--backend",
        default="simulated",
        help="model backend (see 'repro backends list')",
    )
    run_parser.add_argument(
        "--backend-opt",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="backend option (repeatable), e.g. base_url=http://host/v1",
    )
    run_parser.add_argument(
        "--max-concurrency",
        type=int,
        default=None,
        help="dispatcher in-flight request bound (default 8)",
    )
    run_parser.add_argument(
        "--rps",
        type=float,
        default=None,
        help="dispatcher sustained requests/second (default: unthrottled)",
    )
    run_parser.add_argument(
        "--fixtures-dir",
        type=Path,
        default=None,
        help="fixtures directory for the replay backend",
    )
    run_parser.add_argument(
        "--record-fixtures",
        action="store_true",
        help="replay backend records through its inner backend",
    )
    run_parser.add_argument(
        "--resume",
        default=None,
        metavar="RUN_ID",
        help=(
            "resume an interrupted run from its journal under --runs-dir; "
            "the grid, backend and seed come from the journal manifest, so "
            "no other grid flags are allowed"
        ),
    )
    run_parser.add_argument(
        "--on-cell-error",
        choices=("fail", "skip", "degrade"),
        default="fail",
        help=(
            "policy when one grid cell cannot be evaluated: fail aborts the "
            "run (default), skip/degrade record a structured failure and "
            "continue with the remaining cells"
        ),
    )
    run_parser.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-request wall-clock timeout (HTTP transport + dispatcher "
            "safety net); default: backend default (60s for openai_compat)"
        ),
    )
    run_parser.add_argument(
        "--cell-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per grid cell (default: unbounded)",
    )
    run_parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        metavar="N",
        help=(
            "circuit breaker trips after N consecutive backend failures "
            "(0 disables; default: auto — on for openai_compat, off for "
            "the in-process backends)"
        ),
    )
    run_parser.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN",
        help=(
            "arm a fault-injection plan against this run, e.g. "
            "'flaky:rate=0.3:kind=429;sigterm:after-cells=2' "
            "(see docs/RESILIENCE.md)"
        ),
    )

    subparsers.add_parser("workloads", help="print the Table 2 overview")

    rewrite_parser = subparsers.add_parser(
        "rewrite",
        help="inspect or apply the semantics-preserving rewrite catalog",
    )
    rewrite_sub = rewrite_parser.add_subparsers(dest="action", required=True)
    rewrite_sub.add_parser("list", help="show the rewrite catalog")
    apply_parser = rewrite_sub.add_parser(
        "apply", help="apply catalog rewrites to a SQL statement"
    )
    apply_parser.add_argument("sql", help="the SELECT statement to rewrite")
    apply_parser.add_argument(
        "--name",
        default=None,
        help="apply one specific transform by catalog name",
    )
    apply_parser.add_argument(
        "--families",
        default=None,
        metavar="F1+F2",
        help="restrict to these '+'-separated transform families",
    )
    apply_parser.add_argument(
        "--steps",
        type=int,
        default=1,
        help="maximum chain length (default 1)",
    )
    apply_parser.add_argument(
        "--schema",
        default=None,
        choices=("sdss", "imdb"),
        help="resolve columns against this schema (enables "
        "schema-dependent transforms such as star expansion)",
    )

    backends_parser = subparsers.add_parser(
        "backends", help="list the registered model backends"
    )
    backends_parser.add_argument("action", choices=("list",))

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or wipe the on-disk result cache"
    )
    cache_parser.add_argument("action", choices=("info", "clear"))
    cache_parser.add_argument(
        "--cache-dir", type=Path, default=DEFAULT_CACHE_DIR, help="cache directory"
    )

    runs_parser = subparsers.add_parser(
        "runs", help="browse persisted run records"
    )
    runs_parser.add_argument("action", choices=("list", "show"))
    runs_parser.add_argument(
        "run_id", nargs="?", default=None, help="run id (for 'show')"
    )
    runs_parser.add_argument(
        "--runs-dir", type=Path, default=DEFAULT_RUNS_DIR, help="records directory"
    )

    report_parser = subparsers.add_parser(
        "report",
        help="render a Markdown+HTML+JSON report bundle from a stored run",
    )
    report_parser.add_argument(
        "run_id",
        nargs="?",
        default=None,
        help="run id to report on (default: the latest record)",
    )
    report_parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("RUN_A", "RUN_B"),
        default=None,
        help="compare two stored runs and flag metric regressions",
    )
    report_parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="regression threshold for --compare (default 0.005)",
    )
    report_parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_REPORTS_DIR,
        help="directory to write the report bundle under",
    )
    report_parser.add_argument(
        "--runs-dir", type=Path, default=DEFAULT_RUNS_DIR, help="records directory"
    )
    report_parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        help="engine cache to re-read cells from",
    )
    report_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes if any cells must be recomputed",
    )
    report_parser.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="instances per dispatched shard (default: engine default)",
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="measure lexer/parser/grid hot paths (BENCH_hotpaths.json)",
    )
    bench_parser.add_argument(
        "--phase",
        choices=("before", "after"),
        default="after",
        help="which section of the BENCH JSON to write",
    )
    bench_parser.add_argument("--workers", type=int, default=4)
    bench_parser.add_argument("--max-instances", type=int, default=None)
    bench_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON (default: benchmarks/BENCH_hotpaths.json)",
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="cap the grid for a CI-sized smoke measurement",
    )
    bench_parser.add_argument(
        "--check",
        action="store_true",
        help="fail if warm grid time or parse throughput regresses >3x",
    )
    bench_parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail on >20%% normalized throughput regression vs the "
        "committed BENCH JSON baseline",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the evaluation service (HTTP API over a durable job queue)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="interface to bind"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help="TCP port (0 binds an ephemeral port, printed on stderr)",
    )
    serve_parser.add_argument(
        "--max-concurrent-jobs",
        type=int,
        default=1,
        help="evaluation jobs executed in parallel",
    )
    serve_parser.add_argument(
        "--jobs-dir",
        type=Path,
        default=DEFAULT_JOBS_DIR,
        help="durable job-queue directory",
    )
    serve_parser.add_argument(
        "--runs-dir", type=Path, default=DEFAULT_RUNS_DIR, help="records directory"
    )
    serve_parser.add_argument(
        "--cache-dir", type=Path, default=DEFAULT_CACHE_DIR, help="cache directory"
    )
    serve_parser.add_argument(
        "--reports-dir",
        type=Path,
        default=DEFAULT_REPORTS_DIR,
        help="directory report bundles are written under",
    )
    serve_parser.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        help="per-client requests per second (default: unlimited)",
    )
    serve_parser.add_argument(
        "--rate-limit-burst",
        type=float,
        default=None,
        help="per-client burst allowance (default: max(rate, 1))",
    )

    export_parser = subparsers.add_parser(
        "export", help="export the labeled benchmark datasets to JSON"
    )
    export_parser.add_argument(
        "--out", type=Path, default=Path("benchmark_data"), help="output directory"
    )
    export_parser.add_argument(
        "--tasks", nargs="*", default=None, help="restrict to these tasks"
    )
    return parser


def _cmd_run(args) -> int:
    """Run (or resume) a grid through the shared execution layer.

    All validation, journaling and evaluation semantics live in
    :mod:`repro.execution` — the same code path the evaluation service
    (`repro serve`) executes jobs through — so the CLI only maps flags
    to a :class:`~repro.execution.RunRequest` and exit codes back out.
    """
    from repro import execution

    if args.resume is not None:
        try:
            journal, prepared = execution.prepare_resume(
                args.runs_dir,
                args.resume,
                artifacts=tuple(args.artifacts),
                workload=args.workload,
                strata=args.strata,
                chaos=args.chaos,
                record=not args.no_record,
            )
        except execution.RunRequestError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(prepared.resume_banner, file=sys.stderr)
    else:
        try:
            prepared = execution.prepare_run(execution.request_from_args(args))
        except execution.RunRequestError as error:
            print(str(error), file=sys.stderr)
            return 2
        journal = (
            None
            if args.no_record
            else execution.begin_journal(prepared, args.runs_dir)
        )
    outcome = execution.execute_prepared(prepared, journal, out_dir=args.out)
    return outcome.exit_code


def _cmd_rewrite(args) -> int:
    from repro.evalfw.report import render_table
    from repro.rewrite import CATALOG, catalog_fingerprint

    if args.action == "list":
        rows = [
            {
                "name": transform.name,
                "family": transform.family,
                "description": transform.description,
            }
            for transform in CATALOG
        ]
        print(render_table(rows, "Semantics-preserving rewrite catalog"))
        print(f"catalog fingerprint: {catalog_fingerprint()[:12]}")
        return 0

    from repro.rewrite import apply_rewrite, apply_rewrite_chain
    from repro.sql import try_parse
    from repro.util import derive_rng

    if args.steps < 1:
        print(f"--steps must be >= 1, got {args.steps}", file=sys.stderr)
        return 2
    if args.name is not None and args.families is not None:
        print("--name conflicts with --families", file=sys.stderr)
        return 2
    statement = try_parse(args.sql)
    if statement is None:
        print(f"could not parse SQL: {args.sql!r}", file=sys.stderr)
        return 2
    schema = None
    if args.schema is not None:
        from repro.workloads.synthetic import build_schema

        schema = build_schema(args.schema)
    families = (
        tuple(part for part in args.families.split("+") if part)
        if args.families is not None
        else None
    )
    rng = derive_rng("rewrite-cli", args.seed)
    try:
        if args.name is not None:
            applied = apply_rewrite(
                statement, schema, rng, name=args.name, original_text=args.sql
            )
            if applied is None:
                print(
                    f"no applicable site for {args.name!r} in this statement",
                    file=sys.stderr,
                )
                return 1
            print(applied.text)
            print(f"-- {applied.name}: {applied.detail}", file=sys.stderr)
            return 0
        chain = apply_rewrite_chain(
            statement,
            schema,
            rng,
            max_steps=args.steps,
            families=families,
            original_text=args.sql,
        )
    except (KeyError, ValueError) as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    if chain is None:
        print("no catalog transform applies to this statement", file=sys.stderr)
        return 1
    print(chain.text)
    for step in chain.steps:
        print(f"-- {step.name}: {step.detail}", file=sys.stderr)
    return 0


def _cmd_runs(args) -> int:
    from repro.evalfw.report import render_table
    from repro.reporting.run_record import RunRecordStore

    store = RunRecordStore(args.runs_dir)
    if args.action == "list":
        try:
            records = store.records()
        except _RECORD_ERRORS as error:
            print(f"unreadable run record: {error}", file=sys.stderr)
            return 2
        if not records:
            print(f"no run records under {store.root}")
            return 0
        rows = [
            {
                "run_id": record.run_id,
                "created": record.created_at,
                "origin": record.origin,
                "seed": record.seed,
                "workers": record.workers,
                "artifacts": len(record.artifacts),
                "cells": len(record.cells),
                "cached": record.cached_cells,
                "computed": record.computed_cells,
                "seconds": record.total_seconds,
            }
            for record in records
        ]
        print(render_table(rows, f"Run records in {store.root}"))
        return 0
    if args.run_id is None:
        print("runs show requires a run id", file=sys.stderr)
        return 2
    try:
        record = store.load(args.run_id)
    except _RECORD_ERRORS as error:
        print(str(error), file=sys.stderr)
        return 2
    print(f"run_id   : {record.run_id}")
    print(f"created  : {record.created_at}")
    origin_line = record.origin
    if record.client_id:
        origin_line += f" (client: {record.client_id})"
    print(f"origin   : {origin_line}")
    print(f"seed     : {record.seed}  workers: {record.workers}")
    print(f"source   : {record.source_fingerprint[:12]}")
    backend_line = record.backend
    if record.backend_options:
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(record.backend_options.items())
        )
        backend_line += f" ({rendered})"
    print(f"backend  : {backend_line}")
    print(f"cache    : {record.cache_dir or '(disabled)'}")
    print(f"artifacts: {', '.join(record.artifacts) or '(none)'}")
    print(
        f"cells    : {len(record.cells)} "
        f"({record.cached_cells} cached, {record.computed_cells} computed)"
    )
    if record.on_cell_error != "fail" or record.failures:
        print(
            f"policy   : --on-cell-error {record.on_cell_error} "
            f"({len(record.failures)} cell(s) absorbed)"
        )
    from repro.lifecycle import JournalError, RunJournal

    try:
        journal = RunJournal.load(args.runs_dir, record.run_id)
    except JournalError:
        journal = None
    if journal is not None:
        states = journal.states()
        rendered = ", ".join(
            f"{state}={n}" for state, n in sorted(states.items())
        )
        print(f"journal  : {rendered or '(no journalled cells)'}")
    if record.failures:
        rows = [
            {
                "model": failure.model,
                "task": failure.task,
                "workload": failure.workload,
                "error": failure.error_class,
                "attempts": failure.attempts,
            }
            for failure in record.failures
        ]
        print()
        print(render_table(rows, "Degraded / skipped cells"))
    if record.cells:
        rows = [
            {
                "model": cell.model_display,
                "task": cell.task,
                "workload": cell.workload,
                "n": cell.instances,
                "F1": cell.metrics.get("binary.f1", "-"),
                "source": "cache" if cell.cached else "computed",
            }
            for cell in record.cells
        ]
        print()
        print(render_table(rows, "Evaluated cells"))
    return 0


def _cmd_report(args) -> int:
    from repro.reporting.compare import (
        DEFAULT_THRESHOLD,
        compare_runs,
        render_comparison,
    )
    from repro.reporting.run_record import RunRecordStore

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.shard_size is not None and args.shard_size < 1:
        print(f"--shard-size must be >= 1, got {args.shard_size}", file=sys.stderr)
        return 2

    store = RunRecordStore(args.runs_dir)

    if args.compare is not None:
        try:
            before = store.load(args.compare[0])
            after = store.load(args.compare[1])
        except _RECORD_ERRORS as error:
            print(str(error), file=sys.stderr)
            return 2
        threshold = (
            args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
        )
        comparison = compare_runs(before, after, threshold=threshold)
        print(render_comparison(comparison))
        return 3 if comparison.has_regressions else 0

    if args.run_id is not None:
        try:
            stored = store.load(args.run_id)
        except _RECORD_ERRORS as error:
            print(str(error), file=sys.stderr)
            return 2
    else:
        try:
            stored = store.latest()
        except _RECORD_ERRORS as error:
            print(f"unreadable run record: {error}", file=sys.stderr)
            return 2
        if stored is None:
            print(
                f"no run records under {store.root}; run "
                "'python -m repro run all' first",
                file=sys.stderr,
            )
            return 2

    from repro import execution

    bundle, _record, engine = execution.regenerate_report(
        stored,
        cache_dir=args.cache_dir,
        out_dir=args.out,
        workers=args.workers,
        shard_size=args.shard_size,
    )
    print(
        f"[report] cells: {engine.cached_cells} cached, "
        f"{engine.computed_cells} computed",
        file=sys.stderr,
    )
    for path in (bundle.markdown, bundle.json_path, bundle.html_index):
        print(path)
    return 0


def _cmd_serve(args) -> int:
    """Run the evaluation service until SIGTERM/SIGINT drains it."""
    import asyncio
    import signal

    from repro.server import EvalServer, ServerConfig

    if args.max_concurrent_jobs < 1:
        print(
            f"--max-concurrent-jobs must be >= 1, got {args.max_concurrent_jobs}",
            file=sys.stderr,
        )
        return 2
    if args.rate_limit is not None and args.rate_limit <= 0:
        print(
            f"--rate-limit must be > 0, got {args.rate_limit}", file=sys.stderr
        )
        return 2

    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_concurrent_jobs=args.max_concurrent_jobs,
        jobs_dir=args.jobs_dir,
        runs_dir=args.runs_dir,
        cache_dir=args.cache_dir,
        reports_dir=args.reports_dir,
        rate_limit_rps=args.rate_limit,
        rate_limit_burst=args.rate_limit_burst,
    )

    async def _serve() -> None:
        server = EvalServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig,
                lambda name=sig.name: asyncio.ensure_future(
                    server.shutdown(name)
                ),
            )
        # The tests (and scripts) discover an ephemeral --port 0 from
        # this line, so its shape is part of the service's contract.
        print(f"[serve] listening on {server.url}", file=sys.stderr)
        await server.serve_until_shutdown()
        counts = server.store.counts()
        print(
            f"[serve] drained on {server.shutdown_signal}: "
            f"{counts.get('queued', 0)} queued, "
            f"{counts.get('done', 0)} done, "
            f"{counts.get('failed', 0)} failed",
            file=sys.stderr,
        )

    try:
        asyncio.run(_serve())
    except OSError as error:
        print(f"serve failed: {error}", file=sys.stderr)
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for artifact, (description, _) in EXPERIMENTS.items():
            print(f"{artifact:8s} {description}")
        return 0
    if args.command == "workloads":
        from repro.evalfw.report import render_table
        from repro.workloads import load_workload, workload_stats

        rows = [
            workload_stats(load_workload(name, args.seed)).as_row()
            for name in ("sdss", "sqlshare", "join_order", "spider")
        ]
        print(render_table(rows, "Table 2: Workload statistics overview"))
        return 0
    if args.command == "export":
        from repro.tasks.export import export_benchmark

        written = export_benchmark(args.out, seed=args.seed, tasks=args.tasks)
        for path in written:
            print(path)
        print(f"exported {len(written)} dataset files to {args.out}")
        return 0
    if args.command == "backends":
        from repro.llm.backends import describe_backends

        width = max(len(name) for name, _ in describe_backends())
        for name, description in describe_backends():
            print(f"{name:{width}s}  {description}")
        return 0
    if args.command == "cache":
        from repro.engine.cache import ResultCache

        cache = ResultCache(args.cache_dir)
        if args.action == "clear":
            removed = cache.clear()
            print(f"removed {removed} cached entries from {args.cache_dir}")
        else:
            print(f"cache dir : {args.cache_dir}")
            print(f"cells     : {len(cache.entries())}")
            print(f"datasets  : {len(cache.dataset_entries())}")
            print(f"workloads : {len(cache.workload_entries())}")
            print(f"size      : {cache.size_bytes()} bytes")
        return 0
    if args.command == "bench":
        from repro.perf.bench import run_bench

        if args.workers < 1:
            print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
            return 2
        return run_bench(
            phase=args.phase,
            workers=args.workers,
            max_instances=args.max_instances,
            seed=args.seed,
            out=args.out,
            quick=args.quick,
            check=args.check,
            check_baseline=args.check_baseline,
        )
    if args.command == "rewrite":
        return _cmd_rewrite(args)
    if args.command == "runs":
        return _cmd_runs(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
