"""Command-line interface: ``python -m repro`` / ``repro-sql``.

Subcommands:

* ``list`` — show all reproducible artifacts;
* ``run <artifact> [...]`` — run one or more artifact reproductions
  (``all`` runs everything) and print their reports;
* ``workloads`` — print the Table 2 overview for all four workloads.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.evalfw.runner import ExperimentRunner
from repro.experiments.registry import ARTIFACT_IDS, EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sql",
        description=(
            "Reproduction of 'Evaluating SQL Understanding in Large "
            "Language Models' (EDBT 2025)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="generation seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list reproducible artifacts")

    run_parser = subparsers.add_parser("run", help="run artifact reproductions")
    run_parser.add_argument(
        "artifacts",
        nargs="+",
        help=f"artifact ids ({', '.join(ARTIFACT_IDS)}) or 'all'",
    )
    run_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to also write one .txt report per artifact",
    )

    subparsers.add_parser("workloads", help="print the Table 2 overview")

    export_parser = subparsers.add_parser(
        "export", help="export the labeled benchmark datasets to JSON"
    )
    export_parser.add_argument(
        "--out", type=Path, default=Path("benchmark_data"), help="output directory"
    )
    export_parser.add_argument(
        "--tasks", nargs="*", default=None, help="restrict to these tasks"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for artifact, (description, _) in EXPERIMENTS.items():
            print(f"{artifact:8s} {description}")
        return 0
    if args.command == "workloads":
        from repro.evalfw.report import render_table
        from repro.workloads import load_workload, workload_stats

        rows = [
            workload_stats(load_workload(name, args.seed)).as_row()
            for name in ("sdss", "sqlshare", "join_order", "spider")
        ]
        print(render_table(rows, "Table 2: Workload statistics overview"))
        return 0
    if args.command == "export":
        from repro.tasks.export import export_benchmark

        written = export_benchmark(args.out, seed=args.seed, tasks=args.tasks)
        for path in written:
            print(path)
        print(f"exported {len(written)} dataset files to {args.out}")
        return 0
    if args.command == "run":
        wanted = list(args.artifacts)
        if wanted == ["all"]:
            wanted = list(ARTIFACT_IDS)
        unknown = [a for a in wanted if a not in EXPERIMENTS]
        if unknown:
            print(f"unknown artifacts: {', '.join(unknown)}", file=sys.stderr)
            return 2
        runner = ExperimentRunner(seed=args.seed)
        for artifact in wanted:
            result = run_experiment(artifact, runner)
            print(f"\n=== {result.title} ===\n")
            print(result.text)
            if args.out is not None:
                args.out.mkdir(parents=True, exist_ok=True)
                (args.out / f"{artifact}.txt").write_text(
                    f"{result.title}\n\n{result.text}\n"
                )
        return 0
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
