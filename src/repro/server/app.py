"""Evaluation-as-a-service: a stdlib-only async HTTP API over the engine.

``repro serve`` binds :class:`EvalServer`: an ``asyncio.start_server``
HTTP/1.1 endpoint that accepts grid submissions, enqueues them on the
durable :class:`~repro.server.jobs.JobStore`, and executes them through
:mod:`repro.execution` — literally the same prepare/journal/execute
path as ``repro run``, so cache keys, RunRecords and resume semantics
are shared verbatim with the CLI.

Endpoints::

    POST   /v1/runs               submit a grid (dedups by fingerprint)
    GET    /v1/runs               list jobs
    GET    /v1/runs/{id}          job state + progress events (polling)
    GET    /v1/runs/{id}/events   the same progress as an SSE stream
    GET    /v1/runs/{id}/report   regenerate + serve the report bundle
    DELETE /v1/runs/{id}          cancel (queued: immediately; running:
                                  drains the in-flight cell first)
    GET    /v1/cache/{key}        inspect one cell-cache entry
    GET    /healthz               liveness + queue/stat counters

Multi-tenant concerns ride existing machinery: per-client rate limits
are dispatcher :class:`TokenBucket`\\ s in non-blocking mode (429 +
``Retry-After``), and graceful SIGTERM drains the in-flight cell via
the PR-8 interrupt latch, requeues running jobs with their run ids,
and lets a restarted server resume them byte-identically.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional
from urllib.parse import parse_qs, urlsplit

from repro.server.jobs import (
    DEFAULT_JOBS_DIR,
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobError,
    JobStore,
)

#: Poll interval for SSE streaming and drain waits (seconds).
_POLL_SECONDS = 0.05

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServerConfig:
    """Everything one :class:`EvalServer` needs to run."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; read it back from ``EvalServer.port``.
    port: int = 0
    max_concurrent_jobs: int = 1
    jobs_dir: Path = DEFAULT_JOBS_DIR
    runs_dir: Path = Path("results/runs")
    cache_dir: Path = Path(".repro-cache")
    reports_dir: Path = Path("reports")
    #: Per-client request rate (None = unlimited) and burst allowance.
    rate_limit_rps: Optional[float] = None
    rate_limit_burst: Optional[float] = None
    #: Injectable clock for the rate limiter (tests drive virtual time).
    clock: Callable[[], float] = time.monotonic


@dataclass
class _JobRuntime:
    """In-memory, per-process state of one job's execution."""

    interrupt: object = None
    events: list[dict] = field(default_factory=list)
    cancel_requested: bool = False


class EvalServer:
    """The evaluation service: HTTP front, durable queue, engine back."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.store = JobStore(config.jobs_dir)
        self.stats = {
            "jobs_executed": 0,
            "cells_computed": 0,
            "cells_cached": 0,
            "dedup_hits": 0,
            "rate_limited": 0,
        }
        self._runtime: dict[str, _JobRuntime] = {}
        self._runtime_lock = threading.Lock()
        self._buckets: dict[str, object] = {}
        self._active: set[str] = set()
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, config.max_concurrent_jobs),
            thread_name_prefix="repro-job",
        )
        self._stopped: Optional[asyncio.Event] = None
        self.shutdown_signal: Optional[str] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def start(self) -> None:
        """Bind the socket, recover orphaned jobs, start dispatching."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        for job in self.store.recover():
            self._post_event(
                job.job_id,
                "recovered",
                {"state": JOB_QUEUED, "run_id": job.run_id},
            )
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self._pump()

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`shutdown` completes."""
        assert self._stopped is not None
        await self._stopped.wait()

    async def shutdown(self, signal_name: str = "SIGTERM") -> None:
        """Graceful drain: stop accepting, finish in-flight, requeue.

        Running jobs get their interrupt latch triggered; the engine
        drains the in-flight cell at its next checkpoint, the executor
        thread requeues the job with its run id, and a restarted server
        resumes it from the journal.  Queued jobs simply stay queued on
        disk.  Idempotent: repeated signals during the drain no-op.
        """
        if self._draining:
            return
        self._draining = True
        self.shutdown_signal = signal_name
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        with self._runtime_lock:
            for job_id in list(self._active):
                runtime = self._runtime.get(job_id)
                if runtime is not None and runtime.interrupt is not None:
                    runtime.interrupt.trigger(signal_name)
        while self._active:
            await asyncio.sleep(_POLL_SECONDS)
        self._executor.shutdown(wait=True)
        if self._stopped is not None:
            self._stopped.set()

    # -- job scheduling ----------------------------------------------------

    def _pump(self) -> None:
        """Claim queued jobs while executor slots are free (loop thread)."""
        if self._draining:
            return
        while len(self._active) < self.config.max_concurrent_jobs:
            job = self.store.claim_next()
            if job is None:
                return
            self._active.add(job.job_id)
            self._post_event(
                job.job_id, "started", {"attempt": job.attempts}
            )
            assert self._loop is not None
            future = self._loop.run_in_executor(
                self._executor, self._run_job_safe, job
            )
            future.add_done_callback(
                lambda _f, job_id=job.job_id: self._job_finished(job_id)
            )

    def _job_finished(self, job_id: str) -> None:
        self._active.discard(job_id)
        if not self._draining:
            self._pump()

    def _runtime_for(self, job_id: str) -> _JobRuntime:
        with self._runtime_lock:
            runtime = self._runtime.get(job_id)
            if runtime is None:
                runtime = self._runtime[job_id] = _JobRuntime()
            return runtime

    def _post_event(self, job_id: str, event: str, data: dict) -> None:
        """Append one progress event (callable from any thread)."""
        runtime = self._runtime_for(job_id)
        with self._runtime_lock:
            runtime.events.append(
                {"seq": len(runtime.events), "event": event, "data": data}
            )

    def _events_since(self, job_id: str, since: int) -> list[dict]:
        runtime = self._runtime_for(job_id)
        with self._runtime_lock:
            return list(runtime.events[since:])

    def _run_job_safe(self, job) -> None:
        try:
            self._run_job(job)
        except Exception as exc:  # noqa: BLE001 - job must reach a state
            try:
                self.store.transition(
                    job.job_id,
                    JOB_FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                )
            except JobError:
                pass
            self._post_event(
                job.job_id,
                "failed",
                {"error": f"{type(exc).__name__}: {exc}"},
            )

    def _run_job(self, job) -> None:
        """Execute one claimed job (executor thread).

        Runs through :mod:`repro.execution` end to end — the same
        prepare/journal/execute code as ``repro run`` — with the
        journal begun (or resumed) under the server's runs dir and the
        interrupt latch exposed for graceful drain / cancellation.
        """
        from repro import execution
        from repro.lifecycle import GracefulInterrupt

        job_id = job.job_id
        runtime = self._runtime_for(job_id)
        # Poll-only in a worker thread: install() cannot (and must not)
        # touch signal handlers here; shutdown() triggers it directly.
        interrupt = GracefulInterrupt()
        runtime.interrupt = interrupt
        try:
            if job.run_id:
                journal, prepared = execution.prepare_resume(
                    self.config.runs_dir,
                    job.run_id,
                    origin="service",
                    client_id=job.client_id,
                )
                self._post_event(
                    job_id, "info", {"message": prepared.resume_banner}
                )
            else:
                request = execution.request_from_payload(
                    job.request,
                    cache_dir=self.config.cache_dir,
                    runs_dir=self.config.runs_dir,
                    origin="service",
                    client_id=job.client_id,
                )
                prepared = execution.prepare_run(request)
                journal = execution.begin_journal(
                    prepared, self.config.runs_dir
                )
                # Persisted before evaluation starts: a crash between
                # here and completion leaves enough to resume.
                self.store.update(job_id, run_id=journal.run_id)
        except execution.RunRequestError as error:
            self.store.transition(job_id, JOB_FAILED, error=str(error))
            self._post_event(job_id, "failed", {"error": str(error)})
            return
        outcome = execution.execute_prepared(
            prepared,
            journal,
            interrupt=interrupt,
            emit=lambda text: self._post_event(
                job_id, "text", {"text": text}
            ),
            info=lambda message: self._post_event(
                job_id, "info", {"message": message}
            ),
            on_cell_commit=lambda engine: self._post_event(
                job_id,
                "cell",
                {
                    "computed": engine.computed_cells,
                    "cached": engine.cached_cells,
                },
            ),
        )
        self.stats["jobs_executed"] += 1
        self.stats["cells_computed"] += outcome.computed_cells
        self.stats["cells_cached"] += outcome.cached_cells
        if outcome.status == "completed":
            self.store.transition(
                job_id,
                JOB_DONE,
                run_id=outcome.run_id or job.run_id,
                record_path=outcome.record_path or "",
            )
            self._post_event(
                job_id, "done", {"run_id": outcome.run_id}
            )
        elif outcome.status == "interrupted":
            if runtime.cancel_requested:
                self.store.transition(
                    job_id, JOB_CANCELLED, error=outcome.message
                )
                self._post_event(job_id, "cancelled", {})
            else:
                # Graceful drain: back to queued with the run id kept,
                # so the next owner resumes instead of recomputing.
                self.store.transition(job_id, JOB_QUEUED)
                self._post_event(
                    job_id, "requeued", {"run_id": journal.run_id}
                )
        else:
            self.store.transition(
                job_id, JOB_FAILED, error=outcome.message
            )
            self._post_event(job_id, "failed", {"error": outcome.message})

    # -- rate limiting -----------------------------------------------------

    def _admit(self, client_id: str) -> tuple[bool, float]:
        """Per-client token bucket in non-blocking (429) mode."""
        if self.config.rate_limit_rps is None:
            return True, 0.0
        from repro.llm.backends.dispatch import TokenBucket

        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(
                self.config.rate_limit_rps,
                self.config.rate_limit_burst,
                clock=self.config.clock,
            )
            self._buckets[client_id] = bucket
        granted, retry_after = bucket.try_acquire()
        if not granted:
            self.stats["rate_limited"] += 1
        return granted, retry_after

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is not None:
                method, target, headers, body = parsed
                await self._route(writer, method, target, headers, body)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        except Exception as exc:  # noqa: BLE001 - never kill the server
            try:
                self._respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except Exception:  # noqa: BLE001
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length") or 0)
        if length:
            body = await reader.readexactly(length)
        return method, target, headers, body

    def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        extra_headers: Optional[dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for key, value in (extra_headers or {}).items():
            lines.append(f"{key}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)

    def _client_id(self, headers: dict[str, str], writer) -> str:
        explicit = headers.get("x-client-id", "").strip()
        if explicit:
            return explicit
        peer = writer.get_extra_info("peername")
        return peer[0] if peer else "unknown"

    # -- routing -----------------------------------------------------------

    async def _route(self, writer, method, target, headers, body) -> None:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = parse_qs(url.query)
        client_id = self._client_id(headers, writer)

        if path == "/healthz":
            if method != "GET":
                return self._respond(writer, 405, {"error": "GET only"})
            return self._respond(
                writer,
                200,
                {
                    "status": "draining" if self._draining else "ok",
                    "jobs": self.store.counts(),
                    "stats": dict(self.stats),
                },
            )

        granted, retry_after = self._admit(client_id)
        if not granted:
            return self._respond(
                writer,
                429,
                {
                    "error": f"rate limit exceeded for client {client_id!r}",
                    "retry_after": round(retry_after, 3),
                },
                {"Retry-After": f"{max(retry_after, 0.0):.3f}"},
            )

        if path == "/v1/runs" and method == "POST":
            return self._submit(writer, body, client_id)
        if path == "/v1/runs" and method == "GET":
            return self._respond(
                writer,
                200,
                {"jobs": [job.as_dict() for job in self.store.jobs()]},
            )
        if path.startswith("/v1/runs/"):
            rest = path[len("/v1/runs/") :]
            job_id, _, action = rest.partition("/")
            try:
                job = self.store.get(job_id)
            except JobError as error:
                return self._respond(writer, 404, {"error": str(error)})
            if not action and method == "GET":
                since = int(query.get("since", ["0"])[0] or 0)
                payload = job.as_dict()
                payload["events"] = self._events_since(job.job_id, since)
                return self._respond(writer, 200, payload)
            if not action and method == "DELETE":
                return self._cancel(writer, job)
            if action == "events" and method == "GET":
                since = int(query.get("since", ["0"])[0] or 0)
                return await self._stream_events(writer, job.job_id, since)
            if action == "report" and method == "GET":
                return await self._report(writer, job)
            return self._respond(
                writer, 405, {"error": f"unsupported {method} {path}"}
            )
        if path.startswith("/v1/cache/") and method == "GET":
            return self._cache_entry(writer, path[len("/v1/cache/") :])
        return self._respond(writer, 404, {"error": f"no route {path}"})

    # -- handlers ----------------------------------------------------------

    def _submit(self, writer, body: bytes, client_id: str) -> None:
        from repro import execution

        if self._draining:
            return self._respond(
                writer, 503, {"error": "server is draining"}
            )
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return self._respond(
                writer, 400, {"error": f"invalid JSON body: {error}"}
            )
        try:
            request = execution.request_from_payload(
                payload,
                cache_dir=self.config.cache_dir,
                runs_dir=self.config.runs_dir,
                origin="service",
                client_id=client_id,
            )
            prepared = execution.prepare_run(request)
        except execution.RunRequestError as error:
            return self._respond(writer, 400, {"error": str(error)})
        job, created = self.store.submit(
            prepared.fingerprint(), payload, client_id=client_id
        )
        if created:
            self._pump()
        else:
            self.stats["dedup_hits"] += 1
        response = job.as_dict()
        response["deduped"] = not created
        return self._respond(writer, 202 if created else 200, response)

    def _cancel(self, writer, job) -> None:
        if job.state == JOB_QUEUED:
            updated = self.store.transition(
                job.job_id, JOB_CANCELLED, error="cancelled by client"
            )
            self._post_event(job.job_id, "cancelled", {})
            return self._respond(writer, 200, updated.as_dict())
        if job.state == JOB_RUNNING:
            runtime = self._runtime_for(job.job_id)
            runtime.cancel_requested = True
            if runtime.interrupt is not None:
                runtime.interrupt.trigger("SIGINT")
            return self._respond(
                writer, 202, {"job_id": job.job_id, "state": "cancelling"}
            )
        return self._respond(
            writer,
            409,
            {"error": f"job {job.job_id} is {job.state}; cannot cancel"},
        )

    async def _stream_events(self, writer, job_id: str, since: int) -> None:
        """Server-sent events: replay history, then follow live."""
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        cursor = since
        while True:
            for event in self._events_since(job_id, cursor):
                frame = (
                    f"id: {event['seq']}\n"
                    f"event: {event['event']}\n"
                    f"data: {json.dumps(event['data'], sort_keys=True)}\n\n"
                )
                writer.write(frame.encode("utf-8"))
                cursor = event["seq"] + 1
            await writer.drain()
            try:
                job = self.store.get(job_id)
            except JobError:
                break
            if job.terminal and not self._events_since(job_id, cursor):
                final = (
                    f"event: end\n"
                    f"data: {json.dumps({'state': job.state})}\n\n"
                )
                writer.write(final.encode("utf-8"))
                await writer.drain()
                break
            await asyncio.sleep(_POLL_SECONDS)

    async def _report(self, writer, job) -> None:
        if job.state != JOB_DONE or not job.run_id:
            return self._respond(
                writer,
                409,
                {"error": f"job {job.job_id} is {job.state}; no report yet"},
            )
        assert self._loop is not None
        try:
            payload = await self._loop.run_in_executor(
                None, self._build_report, job.run_id
            )
        except Exception as exc:  # noqa: BLE001 - surfaced as HTTP error
            return self._respond(
                writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        return self._respond(writer, 200, payload)

    def _build_report(self, run_id: str) -> dict:
        """Regenerate the ``repro report`` bundle for one finished run.

        Same semantics as the CLI: cells re-read through the engine
        cache under the run's own backend — zero model invocations on a
        warm cache.
        """
        from repro import execution
        from repro.reporting.run_record import RunRecordStore

        stored = RunRecordStore(self.config.runs_dir).load(run_id)
        bundle, record, engine = execution.regenerate_report(
            stored,
            cache_dir=self.config.cache_dir,
            out_dir=self.config.reports_dir,
        )
        self.stats["cells_computed"] += engine.computed_cells
        self.stats["cells_cached"] += engine.cached_cells
        return {
            "run_id": record.run_id,
            "cached_cells": engine.cached_cells,
            "computed_cells": engine.computed_cells,
            "markdown": bundle.markdown.read_text(encoding="utf-8"),
            "paths": {
                "markdown": str(bundle.markdown),
                "json": str(bundle.json_path),
                "html_index": str(bundle.html_index),
            },
        }

    def _cache_entry(self, writer, key: str) -> None:
        from repro.engine.cache import ResultCache

        cache = ResultCache(self.config.cache_dir)
        path = cache._path(key)
        if path.is_file():
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as error:
                return self._respond(
                    writer, 500, {"error": f"unreadable cache entry: {error}"}
                )
            return self._respond(
                writer, 200, {"key": key, "segmented": False, "entry": entry}
            )
        manifest = cache.get_cell_manifest(key)
        if manifest is not None:
            return self._respond(
                writer,
                200,
                {"key": key, "segmented": True, "manifest": manifest},
            )
        return self._respond(
            writer, 404, {"error": f"no cache entry {key!r}"}
        )
