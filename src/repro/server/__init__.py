"""Evaluation-as-a-service: ``repro serve`` and its building blocks.

Three pieces, each usable on its own:

- :mod:`repro.server.jobs` — the durable, content-addressed job queue
  (one atomic JSON file per job under ``results/jobs/``).
- :mod:`repro.server.app` — the stdlib-asyncio HTTP server that fronts
  the queue and executes jobs through :mod:`repro.execution`, the same
  code path as ``repro run``.
- :mod:`repro.server.client` — a tiny urllib client for scripts, tests
  and CI.
"""

from repro.server.app import EvalServer, ServerConfig
from repro.server.client import ServiceClient, ServiceError
from repro.server.jobs import (
    ATTACHABLE_STATES,
    DEFAULT_JOBS_DIR,
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_STATES,
    Job,
    JobError,
    JobStateError,
    JobStore,
)

__all__ = [
    "EvalServer",
    "ServerConfig",
    "ServiceClient",
    "ServiceError",
    "ATTACHABLE_STATES",
    "DEFAULT_JOBS_DIR",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_CANCELLED",
    "JOB_STATES",
    "Job",
    "JobError",
    "JobStateError",
    "JobStore",
]
