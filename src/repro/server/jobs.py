"""Durable job queue for the evaluation service.

One JSON file per job under ``<jobs_dir>/`` (``results/jobs/`` by
default), written atomically via temp+rename — the same discipline as
:mod:`repro.lifecycle.journal` — so a server killed at any instant
leaves every job either in its previous state or its next one, never
torn.  On restart, :meth:`JobStore.recover` moves ``running`` jobs back
to ``queued`` (keeping their run id, so execution resumes through the
run journal instead of recomputing).

State machine::

    queued ──▶ running ──▶ done
       │          │  ╲──▶ failed
       │          │  ╲──▶ queued      (graceful drain / crash recovery)
       ╰──────────┴─────▶ cancelled

Dedup is content-addressed: a job's ``fingerprint`` is the SHA-256 of
its resolved grid configuration (:meth:`repro.execution.PreparedRun.fingerprint`),
so re-submitting an identical grid attaches to the existing active or
completed job instead of evaluating twice.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional

from repro.lifecycle.journal import _write_atomic

#: Bump when the job file format changes incompatibly.
JOBS_VERSION = 1

#: Default on-disk home of the job queue, next to ``results/runs``.
DEFAULT_JOBS_DIR = Path("results/jobs")

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED, JOB_CANCELLED)

#: States in which a fingerprint-identical submission attaches instead
#: of creating a new job (a failed or cancelled job may be retried by
#: submitting again — that creates a fresh job).
ATTACHABLE_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE)

#: Legal transitions.  ``running -> queued`` is the requeue edge used
#: by graceful drain and crash recovery; the three terminal states
#: have no outgoing edges.
_TRANSITIONS: dict[str, frozenset] = {
    JOB_QUEUED: frozenset({JOB_RUNNING, JOB_CANCELLED}),
    JOB_RUNNING: frozenset({JOB_DONE, JOB_FAILED, JOB_CANCELLED, JOB_QUEUED}),
    JOB_DONE: frozenset(),
    JOB_FAILED: frozenset(),
    JOB_CANCELLED: frozenset(),
}


class JobError(Exception):
    """A job is missing, unreadable, or the store is misused."""


class JobStateError(JobError):
    """An illegal state-machine transition was attempted."""


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


@dataclass(frozen=True)
class Job:
    """One submitted grid evaluation and its queue state."""

    job_id: str
    fingerprint: str
    state: str
    request: dict = field(default_factory=dict)
    client_id: str = ""
    created_at: str = ""
    updated_at: str = ""
    #: How many times this grid was submitted (1 + dedup attaches).
    submissions: int = 1
    #: How many times execution started (resumes after drain/crash).
    attempts: int = 0
    #: The journalled run id, recorded before evaluation starts so a
    #: requeued job resumes the same run instead of starting another.
    run_id: str = ""
    #: The persisted RunRecord path once the job is done.
    record_path: str = ""
    #: The failure/cancellation message for terminal non-done states.
    error: str = ""

    @property
    def terminal(self) -> bool:
        return not _TRANSITIONS[self.state]

    def as_dict(self) -> dict:
        return {
            "version": JOBS_VERSION,
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "request": self.request,
            "client_id": self.client_id,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "submissions": self.submissions,
            "attempts": self.attempts,
            "run_id": self.run_id,
            "record_path": self.record_path,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        version = data.get("version", JOBS_VERSION)
        if version != JOBS_VERSION:
            raise JobError(
                f"unsupported job version {version!r} "
                f"(this build reads version {JOBS_VERSION})"
            )
        state = data.get("state", JOB_QUEUED)
        if state not in JOB_STATES:
            raise JobError(f"unknown job state {state!r}")
        return cls(
            job_id=data["job_id"],
            fingerprint=data.get("fingerprint", ""),
            state=state,
            request=dict(data.get("request", {})),
            client_id=data.get("client_id", ""),
            created_at=data.get("created_at", ""),
            updated_at=data.get("updated_at", ""),
            submissions=int(data.get("submissions", 1)),
            attempts=int(data.get("attempts", 0)),
            run_id=data.get("run_id", ""),
            record_path=data.get("record_path", ""),
            error=data.get("error", ""),
        )


class JobStore:
    """Directory of job files with atomic writes and enforced edges.

    Thread-safe within one process (the server mutates jobs from its
    HTTP loop and its executor threads); cross-process safety comes
    from one server owning one jobs directory at a time, with restart
    recovery handling anything a dead owner left ``running``.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    # -- paths and IO ------------------------------------------------------

    def _path(self, job_id: str) -> Path:
        return self.root / f"{job_id}.json"

    def _write(self, job: Job) -> Job:
        _write_atomic(
            self._path(job.job_id),
            json.dumps(job.as_dict(), indent=2, sort_keys=True) + "\n",
        )
        return job

    def get(self, job_id: str) -> Job:
        path = self._path(job_id)
        if not path.is_file():
            raise JobError(f"no job {job_id!r} under {self.root}")
        try:
            return Job.from_dict(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, json.JSONDecodeError, KeyError) as exc:
            raise JobError(f"unreadable job file {path}: {exc}") from exc

    def jobs(self) -> list[Job]:
        """Every readable job, oldest first (stable by id on ties)."""
        entries = []
        for path in sorted(self.root.glob("*.json")):
            try:
                entries.append(
                    Job.from_dict(json.loads(path.read_text(encoding="utf-8")))
                )
            except (OSError, json.JSONDecodeError, JobError, KeyError):
                # A torn file cannot happen via the atomic writer; skip
                # anything else (foreign files, disk corruption) rather
                # than wedging the whole queue.
                continue
        return sorted(entries, key=lambda job: (job.created_at, job.job_id))

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for job in self.jobs():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    # -- submission / dedup ------------------------------------------------

    def submit(
        self, fingerprint: str, request: dict, client_id: str = ""
    ) -> tuple[Job, bool]:
        """Enqueue a grid; returns ``(job, created)``.

        If a job with the same fingerprint is queued, running, or done,
        the submission *attaches* to it (``created=False``) — the
        content-addressed dedup that makes N identical concurrent
        submissions cost exactly one evaluation.  Failed or cancelled
        jobs do not absorb new submissions: resubmitting after a
        failure is the retry path and gets a fresh job.
        """
        with self._lock:
            for existing in self.jobs():
                if (
                    existing.fingerprint == fingerprint
                    and existing.state in ATTACHABLE_STATES
                ):
                    attached = replace(
                        existing,
                        submissions=existing.submissions + 1,
                        updated_at=_utc_now(),
                    )
                    return self._write(attached), False
            created_at = _utc_now()
            stamp = created_at.replace("-", "").replace(":", "")
            stamp = stamp.replace("Z", "")
            base = f"{stamp}-{fingerprint[:8]}"
            job_id = base
            suffix = 1
            while self._path(job_id).exists():
                suffix += 1
                job_id = f"{base}-{suffix}"
            job = Job(
                job_id=job_id,
                fingerprint=fingerprint,
                state=JOB_QUEUED,
                request=dict(request),
                client_id=client_id,
                created_at=created_at,
                updated_at=created_at,
            )
            return self._write(job), True

    # -- state transitions -------------------------------------------------

    def transition(self, job_id: str, state: str, **fields) -> Job:
        """Move a job along a legal edge, persisting extra ``fields``."""
        if state not in JOB_STATES:
            raise JobStateError(
                f"unknown job state {state!r}; expected one of {JOB_STATES}"
            )
        with self._lock:
            job = self.get(job_id)
            if state not in _TRANSITIONS[job.state]:
                raise JobStateError(
                    f"illegal transition {job.state!r} -> {state!r} "
                    f"for job {job_id}"
                )
            updated = replace(
                job, state=state, updated_at=_utc_now(), **fields
            )
            return self._write(updated)

    def update(self, job_id: str, **fields) -> Job:
        """Persist metadata fields without changing state."""
        with self._lock:
            job = self.get(job_id)
            updated = replace(job, updated_at=_utc_now(), **fields)
            return self._write(updated)

    def claim_next(self) -> Optional[Job]:
        """Atomically move the oldest queued job to running, if any."""
        with self._lock:
            for job in self.jobs():
                if job.state == JOB_QUEUED:
                    return self.transition(
                        job.job_id, JOB_RUNNING, attempts=job.attempts + 1
                    )
        return None

    def recover(self) -> list[Job]:
        """Requeue jobs a dead (or draining) owner left ``running``.

        Their run ids are kept, so re-execution goes through
        ``--resume`` semantics: committed cells replay from the journal
        + cache and the finished RunRecord is byte-identical to an
        uninterrupted run.
        """
        with self._lock:
            requeued = []
            for job in self.jobs():
                if job.state == JOB_RUNNING:
                    requeued.append(self.transition(job.job_id, JOB_QUEUED))
            return requeued
