"""Tiny stdlib client for the evaluation service.

``ServiceClient`` wraps :mod:`urllib.request` with the service's JSON
conventions: an ``X-Client-Id`` header on every call (the server's
rate-limit and provenance key), :class:`ServiceError` on non-2xx
responses, and helpers for the common submit → wait → report flow.

>>> client = ServiceClient("http://127.0.0.1:8642", client_id="ci")
>>> job = client.submit({"artifacts": ["table6"], "backend": "simulated"})
>>> done = client.wait(job["job_id"])
>>> report = client.report(done["job_id"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Iterator, Optional


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: dict) -> None:
        self.status = status
        self.payload = payload
        message = payload.get("error") or json.dumps(payload, sort_keys=True)
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """Blocking JSON client for one ``repro serve`` endpoint."""

    def __init__(
        self,
        base_url: str,
        client_id: str = "repro-client",
        timeout: float = 30.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        data = None
        headers = {"X-Client-Id": self.client_id}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                payload = {"error": raw.strip() or error.reason}
            retry_after = error.headers.get("Retry-After")
            if retry_after is not None:
                payload.setdefault("retry_after_header", retry_after)
            raise ServiceError(error.code, payload) from None

    # -- endpoints ---------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, grid: dict) -> dict:
        """POST a grid; returns the job dict (``deduped`` flags attach)."""
        return self._request("POST", "/v1/runs", grid)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/runs")["jobs"]

    def job(self, job_id: str, since: int = 0) -> dict:
        """Polling fallback: job state plus events from ``since``."""
        query = urllib.parse.urlencode({"since": since})
        return self._request("GET", f"/v1/runs/{job_id}?{query}")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/runs/{job_id}")

    def report(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/runs/{job_id}/report")

    def cache_entry(self, key: str) -> dict:
        return self._request("GET", f"/v1/cache/{key}")

    # -- flows -------------------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.1,
    ) -> dict:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s"
                )
            time.sleep(poll_interval)

    def events(self, job_id: str, since: int = 0) -> Iterator[dict]:
        """Stream SSE frames as dicts until the server's ``end`` event.

        Yields ``{"event": name, "data": parsed-json, "id": seq|None}``.
        """
        request = urllib.request.Request(
            f"{self.base_url}/v1/runs/{job_id}/events?since={since}",
            headers={"X-Client-Id": self.client_id},
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as resp:
            frame: dict = {}
            for raw in resp:
                line = raw.decode("utf-8").rstrip("\n")
                if not line:
                    if "event" in frame:
                        yield frame
                        if frame["event"] == "end":
                            return
                    frame = {}
                    continue
                key, _, value = line.partition(":")
                value = value.lstrip(" ")
                if key == "event":
                    frame["event"] = value
                elif key == "data":
                    frame["data"] = json.loads(value)
                elif key == "id":
                    frame["id"] = int(value)
