"""The parallel, sharded, cache-backed experiment engine.

The paper's evaluation grid (models x tasks x workloads) is
embarrassingly parallel: every answer depends only on ``(model, task,
instance_id)``.  The engine exploits that by splitting each cell into
contiguous instance shards, fanning the shards of *all* pending cells
across one long-lived ``ProcessPoolExecutor``, and merging answers back
in shard order — so a parallel run is byte-identical to the serial one.

``workers=1`` (the default) never touches multiprocessing: the same
shard plan is executed in-process, deterministically, which keeps unit
tests and small runs free of pool start-up cost.

With a cache directory configured, evaluated cells are persisted through
:mod:`repro.engine.cache`; re-running a grid only recomputes cells whose
inputs (seed, profile, prompt, workload, instance cap, backend) changed.

Model calls go through the pluggable backend layer
(:mod:`repro.llm.backends`): each shard's requests are batched through
an async dispatcher (bounded concurrency, rate limiting, retries) to
the configured backend — the in-process simulator by default, an HTTP
endpoint or a record/replay fixture store otherwise.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence

from repro.engine.cache import (
    ResultCache,
    cell_key,
    dataset_key,
    prompt_fingerprint,
    workload_key,
)
from repro.engine.sharding import (
    DEFAULT_SHARD_SIZE,
    Shard,
    merge_shards,
    plan_shards,
)
from repro.engine.worker import (
    ShardSpec,
    build_workload_datasets_remote,
    evaluate_shard,
    init_worker_process,
)
from repro.lifecycle import (
    CELL_COMMITTED,
    CELL_DEGRADED,
    CELL_FAILED,
    CELL_IN_FLIGHT,
    CELL_PENDING,
    CELL_SKIPPED,
    CellFailure,
    GracefulInterrupt,
    RunJournal,
)
from repro.lifecycle.journal import cell_descriptor
from repro.llm.backends import (
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_MAX_CONCURRENCY,
    SIMULATED_SPEC,
    AsyncDispatcher,
    BackendError,
    BackendSpec,
    BreakerState,
    CircuitBreaker,
    DeadlineExceededError,
    ModelBackend,
    create_backend,
)
from repro.llm.profiles import MODEL_PROFILES, ModelProfile
from repro.llm.simulated import SimulatedLLM
from repro.prompts.templates import PromptTemplate
from repro.tasks.base import ModelAnswer, TaskDataset
from repro.tasks.registry import (
    TASK_WORKLOADS,
    answers_from_responses,
    build_dataset,
    build_request,
)
from repro.workloads import load_workload
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, see below
    from repro.engine.streaming import StreamingEvaluator
    from repro.evalfw.runner import CellResult


@dataclass(frozen=True)
class EngineConfig:
    """Knobs for one engine instance."""

    seed: int = 0
    workers: int = 1
    shard_size: int = DEFAULT_SHARD_SIZE
    cache_dir: Optional[Path] = None  # None disables the result cache
    max_instances: Optional[int] = None
    #: Streamed chunk size; None keeps the materialised data path.  When
    #: set, cells flow chunk-by-chunk through the work-queue pool
    #: (:mod:`repro.engine.streaming`) with memory bounded by the chunk
    #: size instead of the dataset size.
    chunk_size: Optional[int] = None
    #: Which model backend answers requests (default: the simulator).
    backend: BackendSpec = SIMULATED_SPEC
    #: Dispatcher knobs: in-flight bound and sustained requests/second
    #: (None = unthrottled; the simulator needs no throttle).
    max_concurrency: int = DEFAULT_MAX_CONCURRENCY
    rps: Optional[float] = None
    #: What to do when one cell cannot be evaluated: "fail" aborts the
    #: run (the historical behaviour), "skip"/"degrade" journal a
    #: structured CellFailure and continue with the rest of the grid.
    on_cell_error: str = "fail"
    #: Per-request wall-clock timeout in seconds (None = no timeout).
    #: Enforced both in the HTTP transport (openai_compat) and as an
    #: ``asyncio.wait_for`` safety net in the dispatcher.
    request_timeout: Optional[float] = None
    #: Per-cell wall-clock budget in seconds (None = unbounded).  The
    #: serial path spends it cumulatively across the cell's shards;
    #: pool paths grant each shard/chunk batch the full budget (coarser,
    #: but still bounds a hung endpoint per dispatch).
    cell_deadline: Optional[float] = None
    #: Circuit-breaker trip threshold (consecutive transient failures).
    #: None = auto: on for remote backends (openai_compat), off for the
    #: in-process simulator and replay fixtures.  0 disables explicitly.
    breaker_threshold: Optional[int] = None

    #: Valid ``on_cell_error`` policies.
    CELL_ERROR_POLICIES = ("fail", "skip", "degrade")

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.rps is not None and self.rps <= 0:
            raise ValueError(f"rps must be > 0, got {self.rps}")
        if self.on_cell_error not in self.CELL_ERROR_POLICIES:
            raise ValueError(
                f"on_cell_error must be one of {self.CELL_ERROR_POLICIES}, "
                f"got {self.on_cell_error!r}"
            )
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be > 0, got {self.request_timeout}"
            )
        if self.cell_deadline is not None and self.cell_deadline <= 0:
            raise ValueError(
                f"cell_deadline must be > 0, got {self.cell_deadline}"
            )
        if self.breaker_threshold is not None and self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )

    def resolved_breaker_threshold(self) -> Optional[int]:
        """The effective trip threshold, or None when the breaker is off."""
        if self.breaker_threshold is None:
            return (
                DEFAULT_BREAKER_THRESHOLD
                if self.backend.name == "openai_compat"
                else None
            )
        return self.breaker_threshold if self.breaker_threshold > 0 else None


@dataclass(frozen=True)
class CellLog:
    """Provenance of one served cell: cache hit or computed, and when.

    ``seconds`` is the cell's compute time: wall time for serially
    computed cells, and the *sum* of the cell's per-shard worker wall
    times for parallel cells (shards of different cells overlap, so the
    parent's clock cannot attribute elapsed time — the workers' clocks
    can).  ``shard_seconds_max`` additionally records the slowest shard
    of a parallel cell (the cell's critical path); it is None for
    serial and cached serves.  Cached cells record ~0 seconds.
    ``prompt`` is the prompt-template fingerprint the cell was asked
    with, so a re-serve under a *different* prompt is distinguishable
    from a repeat serve of the same experiment.  The reporting layer
    folds these into RunRecords.
    """

    model: str
    task: str
    workload: str
    instances: int
    cached: bool
    seconds: Optional[float]
    prompt: str = ""
    shard_seconds_max: Optional[float] = None


class ExperimentEngine:
    """Evaluates grid cells, in parallel and through the result cache."""

    def __init__(
        self,
        config: EngineConfig = EngineConfig(),
        models: tuple[ModelProfile, ...] = MODEL_PROFILES,
    ) -> None:
        self.config = config
        self.models = models
        self.cache = (
            ResultCache(Path(config.cache_dir))
            if config.cache_dir is not None
            else None
        )
        self.computed_cells = 0
        self.cached_cells = 0
        #: Every distinct served cell, keyed (model, task, workload) —
        #: the reporting layer snapshots this into RunRecords.
        self.results: dict[tuple[str, str, str], "CellResult"] = {}
        #: Append-only provenance log (one entry per serve, incl. repeats).
        self.cell_log: list[CellLog] = []
        self._workloads: dict[str, Workload] = {}
        self._datasets: dict[tuple[str, str], TaskDataset] = {}
        #: Lazily built: evaluation goes through backend_for(); direct
        #: simulator access survives for ablation harnesses only.
        self._clients: dict[str, SimulatedLLM] = {}
        self._backends: dict[str, ModelBackend] = {}
        #: Shared token-bucket fill level for the serial path, so --rps
        #: is sustained across cells instead of re-bursting per cell.
        self._bucket_state = None
        #: Shared circuit-breaker health for the serial path: a backend
        #: that tripped during one cell stays tripped for the next.
        self._breaker_state: Optional[BreakerState] = None
        #: Lifecycle hooks, wired by the CLI: a write-ahead journal for
        #: crash-safe resume, a graceful-interrupt latch polled at the
        #: engine's checkpoints, and an optional per-commit callback
        #: (the chaos harness uses it to deliver signals at exact,
        #: reproducible points in the grid).
        self.journal: Optional[RunJournal] = None
        self.interrupt: Optional[GracefulInterrupt] = None
        self.on_cell_commit = None
        #: Structured failures of cells absorbed under
        #: ``on_cell_error=skip|degrade`` — the reporting layer renders
        #: these as explicit gaps.
        self.failures: list[CellFailure] = []
        #: Memoised fixtures-content hash (replay mode; one IO pass).
        self._backend_state_memo: Optional[str] = None
        self._by_name = {profile.name: profile for profile in models}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._streaming: Optional["StreamingEvaluator"] = None

    # -- shared state ------------------------------------------------------

    def workload(self, name: str) -> Workload:
        if name not in self._workloads:
            self._workloads[name] = load_workload(name, self.config.seed)
        return self._workloads[name]

    def dataset(self, task: str, workload_name: str) -> TaskDataset:
        key = (task, workload_name)
        if key not in self._datasets:
            cached = self._dataset_from_disk(task, workload_name)
            if cached is not None:
                self._datasets[key] = cached
            else:
                self._datasets[key] = build_dataset(
                    task,
                    self.workload(workload_name),
                    seed=self.config.seed,
                    max_instances=self.config.max_instances,
                )
                self._dataset_to_disk(task, workload_name, self._datasets[key])
        return self._datasets[key]

    def _dataset_disk_key(self, task: str, workload_name: str) -> str:
        return dataset_key(
            task, workload_name, self.config.seed, self.config.max_instances
        )

    def _dataset_from_disk(
        self, task: str, workload_name: str
    ) -> Optional[TaskDataset]:
        if self.cache is None:
            return None
        return self.cache.get_dataset(self._dataset_disk_key(task, workload_name))

    def _dataset_to_disk(
        self, task: str, workload_name: str, dataset: TaskDataset
    ) -> None:
        if self.cache is not None:
            self.cache.put_dataset(
                self._dataset_disk_key(task, workload_name), dataset
            )

    def client(self, model_name: str) -> SimulatedLLM:
        """Direct simulator access (ablation harnesses; not the grid path)."""
        if model_name not in self._clients:
            self._clients[model_name] = SimulatedLLM(self.profile(model_name))
        return self._clients[model_name]

    def backend_for(self, model_name: str) -> ModelBackend:
        """The configured backend instance for one model (memoised)."""
        if model_name not in self._backends:
            self._backends[model_name] = create_backend(
                self.config.backend, self.profile(model_name)
            )
        return self._backends[model_name]

    def _backend_is_recording(self) -> bool:
        """Whether runs exist for their side effects (fixture writing)."""
        return self.config.backend.option("mode") == "record"

    def _backend_state(self) -> str:
        """External state feeding the backend's answers, for cache keys.

        Replay-mode fixtures are an input like source code or the seed:
        their content hash joins the cell key so edited or re-recorded
        fixtures invalidate cells cached against the old responses.
        Recording runs return "" (they never read the cell cache, and
        their fixture store mutates while they run).
        """
        spec = self.config.backend
        if spec.name != "replay" or self._backend_is_recording():
            return ""
        if self._backend_state_memo is None:
            from repro.llm.backends.replay import (
                DEFAULT_FIXTURES_DIR,
                fixtures_fingerprint,
            )

            root = spec.option("dir") or str(DEFAULT_FIXTURES_DIR)
            self._backend_state_memo = fixtures_fingerprint(Path(root))
        return self._backend_state_memo

    def profile(self, model_name: str) -> ModelProfile:
        try:
            return self._by_name[model_name]
        except KeyError:
            raise KeyError(
                f"unknown model {model_name!r}; engine has {sorted(self._by_name)}"
            ) from None

    # -- resilience --------------------------------------------------------

    def _checkpoint(self) -> None:
        """Raise :class:`RunInterrupted` if a graceful drain was requested.

        Called between cells (materialised path) and between chunks
        (streaming path) — the points where everything already served
        is durable and nothing is half-written.
        """
        if self.interrupt is not None:
            self.interrupt.check()

    def _journal_cell(
        self,
        model: str,
        task: str,
        workload: str,
        state: str,
        failure: Optional[CellFailure] = None,
    ) -> None:
        if self.journal is not None:
            self.journal.record(
                cell_descriptor(model, task, workload), state, failure=failure
            )

    def _after_cell_commit(self) -> None:
        if self.on_cell_commit is not None:
            self.on_cell_commit()

    def _is_cell_error(self, error: BaseException) -> bool:
        """Errors the ``on_cell_error`` policy may absorb.

        Backend failures (retry exhaustion, open circuits, deadlines)
        and streaming failures (worker crashes, poisoned chunks) poison
        *one cell*; anything else — including
        :class:`~repro.lifecycle.RunInterrupted` — is about the run and
        always propagates.
        """
        from repro.engine.streaming import StreamError

        return isinstance(error, (BackendError, StreamError))

    def _absorb_cell_error(
        self, model: str, task: str, workload: str, error: BaseException
    ) -> bool:
        """Apply the cell-error policy; True if the grid should continue."""
        failure = CellFailure.from_exception(model, task, workload, error)
        if self.config.on_cell_error == "fail":
            self._journal_cell(model, task, workload, CELL_FAILED, failure)
            return False
        state = (
            CELL_SKIPPED
            if self.config.on_cell_error == "skip"
            else CELL_DEGRADED
        )
        self.failures.append(failure)
        self._journal_cell(model, task, workload, state, failure)
        return True

    def _serial_breaker(self) -> Optional[CircuitBreaker]:
        """The serial path's circuit breaker (shared health across cells)."""
        threshold = self.config.resolved_breaker_threshold()
        if threshold is None:
            return None
        if self._breaker_state is None:
            self._breaker_state = BreakerState()
        return CircuitBreaker(
            threshold=threshold,
            state=self._breaker_state,
            backend_name=self.config.backend.name,
        )

    # -- lifecycle ---------------------------------------------------------

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.workers,
                initializer=init_worker_process,
            )
        return self._pool

    @property
    def streaming(self) -> "StreamingEvaluator":
        """The streamed data path (active when ``chunk_size`` is set)."""
        if self._streaming is None:
            # Imported lazily: streaming pulls in evalfw.accumulate,
            # whose package __init__ imports evalfw.runner -> this module.
            from repro.engine.streaming import StreamingEvaluator

            self._streaming = StreamingEvaluator(self)
        return self._streaming

    def stream_stats(self) -> Optional[dict]:
        """Chunking provenance for the reporting layer (None if unused)."""
        if self._streaming is None:
            return None
        return self._streaming.stats.as_dict()

    def close(self) -> None:
        """Shut down the worker pool and backends (idempotent)."""
        # The evaluator survives close() so its stats stay readable for
        # the run record; only its worker pool is torn down.
        if self._streaming is not None:
            self._streaming.close()
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        for backend in self._backends.values():
            closer = getattr(backend, "close", None)
            if closer is not None:
                closer()
        self._backends.clear()

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- evaluation --------------------------------------------------------

    def run_cell(
        self,
        model_name: str,
        task: str,
        workload_name: str,
        prompt: Optional[PromptTemplate] = None,
    ) -> "CellResult":
        """Evaluate one cell (through the cache and the pool)."""
        grid = self._evaluate_cells(
            [(self.profile(model_name), task, workload_name)], prompt
        )
        return grid[(model_name, workload_name)]

    def run_task(
        self,
        task: str,
        workloads: Optional[tuple[str, ...]] = None,
        prompt: Optional[PromptTemplate] = None,
    ) -> dict[tuple[str, str], "CellResult"]:
        """Evaluate all models on all of a task's workloads.

        All pending shards of all cells are in flight at once, so worker
        utilisation does not dip at cell boundaries.
        """
        names = workloads or TASK_WORKLOADS[task]
        cells = [
            (profile, task, workload_name)
            for profile in self.models
            for workload_name in names
        ]
        return self._evaluate_cells(cells, prompt)

    def _evaluate_cells(
        self,
        cells: Sequence[tuple[ModelProfile, str, str]],
        prompt: Optional[PromptTemplate],
    ) -> dict[tuple[str, str], "CellResult"]:
        # Imported lazily: evalfw.runner imports this module at top level.
        from repro.evalfw.runner import CellResult

        if self.config.chunk_size is not None:
            return self._evaluate_cells_streamed(cells, prompt)
        grid: dict[tuple[str, str], "CellResult"] = {}
        pending: list[tuple[ModelProfile, str, str, TaskDataset, Optional[str]]] = []
        if self.config.workers > 1:
            self._prefetch_datasets({(task, workload) for _, task, workload in cells})
        for profile, task, workload_name in cells:
            self._checkpoint()
            dataset = self.dataset(task, workload_name)
            key: Optional[str] = None
            if self.cache is not None:
                key = cell_key(
                    self.config.seed,
                    profile,
                    task,
                    workload_name,
                    self.config.max_instances,
                    prompt,
                    backend=self.config.backend,
                    backend_state=self._backend_state(),
                )
                # A recording run's purpose is its side effect (writing
                # fixtures through the inner backend), so cached cells
                # must not elide it — and its cache entries would be
                # unreadable anyway (no later run shares the
                # mode=record fingerprint), so it skips the cache in
                # both directions.
                answers = (
                    None
                    if self._backend_is_recording()
                    else self.cache.get(key, expected_ids=dataset.instance_ids())
                )
                if answers is not None:
                    self.cached_cells += 1
                    result = CellResult(
                        model=profile.name,
                        task=task,
                        workload=workload_name,
                        dataset=dataset,
                        answers=answers,
                    )
                    grid[(profile.name, workload_name)] = result
                    self._record_cell(result, cached=True, seconds=0.0, prompt=prompt)
                    self._journal_cell(
                        profile.name, task, workload_name, CELL_COMMITTED
                    )
                    self._after_cell_commit()
                    continue
            self._journal_cell(profile.name, task, workload_name, CELL_PENDING)
            pending.append((profile, task, workload_name, dataset, key))

        if not pending:
            return grid
        if self.config.workers == 1:
            for entry in pending:
                profile, task, workload_name, dataset, key = entry
                self._checkpoint()
                self._journal_cell(
                    profile.name, task, workload_name, CELL_IN_FLIGHT
                )
                started = time.perf_counter()
                try:
                    answers = self._evaluate_serial(profile, task, dataset, prompt)
                except Exception as error:
                    if not self._is_cell_error(error) or not self._absorb_cell_error(
                        profile.name, task, workload_name, error
                    ):
                        raise
                    continue
                seconds = round(time.perf_counter() - started, 6)
                self._commit_cell(grid, entry, answers, seconds, None, prompt)
        else:
            # Parallel cells overlap in wall time, so per-cell time
            # comes from the workers' own clocks: the sum of a cell's
            # shard times is its compute cost, the max its critical path.
            futures = self._submit_parallel(pending, prompt)
            for entry, cell_futures in zip(pending, futures):
                profile, task, workload_name, dataset, key = entry
                self._checkpoint()
                try:
                    parts = [future.result() for future in cell_futures]
                except Exception as error:
                    if not self._is_cell_error(error) or not self._absorb_cell_error(
                        profile.name, task, workload_name, error
                    ):
                        raise
                    continue
                answers = merge_shards(
                    (index, items) for index, items, _ in parts
                )
                shard_seconds = [seconds for _, _, seconds in parts]
                seconds = round(sum(shard_seconds), 6)
                max_shard = (
                    round(max(shard_seconds), 6) if shard_seconds else 0.0
                )
                self._commit_cell(grid, entry, answers, seconds, max_shard, prompt)
        # Cached cells land in ``grid`` during the first pass and
        # computed ones only after, so on a mixed hit/miss run the
        # dict's insertion order — which report renderers read as
        # column order — would depend on cache state.  Re-key in
        # request order so partially-cached reruns are byte-identical
        # to cold ones (absorbed degraded cells stay absent).
        return {
            (profile.name, workload_name): grid[(profile.name, workload_name)]
            for profile, _, workload_name in cells
            if (profile.name, workload_name) in grid
        }

    def _commit_cell(
        self,
        grid: dict,
        entry: tuple[ModelProfile, str, str, TaskDataset, Optional[str]],
        answers: list[ModelAnswer],
        seconds: Optional[float],
        max_shard: Optional[float],
        prompt: Optional[PromptTemplate],
    ) -> None:
        """Persist and record one computed cell (cache, log, journal)."""
        from repro.evalfw.runner import CellResult

        profile, task, workload_name, dataset, key = entry
        self.computed_cells += 1
        if (
            self.cache is not None
            and key is not None
            and not self._backend_is_recording()
        ):
            self.cache.put(
                key,
                answers,
                meta={
                    "model": profile.name,
                    "task": task,
                    "workload": workload_name,
                    "seed": self.config.seed,
                    "max_instances": self.config.max_instances,
                },
            )
        result = CellResult(
            model=profile.name,
            task=task,
            workload=workload_name,
            dataset=dataset,
            answers=answers,
        )
        grid[(profile.name, workload_name)] = result
        self._record_cell(
            result,
            cached=False,
            seconds=seconds,
            prompt=prompt,
            shard_seconds_max=max_shard,
        )
        self._journal_cell(profile.name, task, workload_name, CELL_COMMITTED)
        self._after_cell_commit()

    def _evaluate_cells_streamed(
        self,
        cells: Sequence[tuple[ModelProfile, str, str]],
        prompt: Optional[PromptTemplate],
    ) -> dict[tuple[str, str], "CellResult"]:
        """The chunked data path: cells stream through the work queue.

        Each cell's instances are produced, evaluated, merged and
        persisted in ``chunk_size``-sized segments; the grid result is a
        :class:`~repro.evalfw.accumulate.StreamedCellResult`, which
        quacks like a CellResult for every metrics consumer but holds
        counts instead of the data.
        """
        grid: dict[tuple[str, str], "CellResult"] = {}
        for profile, task, workload_name in cells:
            self._checkpoint()
            self._journal_cell(profile.name, task, workload_name, CELL_IN_FLIGHT)
            try:
                result, cached, seconds = self.streaming.evaluate_cell(
                    profile, task, workload_name, prompt
                )
            except Exception as error:
                if not self._is_cell_error(error) or not self._absorb_cell_error(
                    profile.name, task, workload_name, error
                ):
                    raise
                continue
            if cached:
                self.cached_cells += 1
            else:
                self.computed_cells += 1
            grid[(profile.name, workload_name)] = result
            self._record_cell(result, cached=cached, seconds=seconds, prompt=prompt)
            self._journal_cell(profile.name, task, workload_name, CELL_COMMITTED)
            self._after_cell_commit()
        return grid

    def _record_cell(
        self,
        result: "CellResult",
        cached: bool,
        seconds: Optional[float],
        prompt: Optional[PromptTemplate] = None,
        shard_seconds_max: Optional[float] = None,
    ) -> None:
        """Accumulate a served cell for the reporting layer."""
        from repro.evalfw.accumulate import result_instance_count

        self.results[(result.model, result.task, result.workload)] = result
        self.cell_log.append(
            CellLog(
                model=result.model,
                task=result.task,
                workload=result.workload,
                instances=result_instance_count(result),
                cached=cached,
                seconds=seconds,
                prompt=prompt_fingerprint(result.task, prompt),
                shard_seconds_max=shard_seconds_max,
            )
        )

    def _prefetch_datasets(self, needed: set[tuple[str, str]]) -> None:
        """Materialise missing datasets: disk cache first, then workers.

        Dataset construction (parsing, corruption injection, pair
        generation) dominates a cold grid run, and ``build_dataset`` is
        deterministic — so each (task, workload) dataset that is neither
        in memory nor on disk is built exactly once, in a worker, with
        the builds overlapping each other, and shipped back.
        """
        missing = []
        for key in sorted(key for key in needed if key not in self._datasets):
            cached = self._dataset_from_disk(*key)
            if cached is not None:
                self._datasets[key] = cached
            else:
                missing.append(key)
        if not missing:
            return
        pool = self._executor()
        cache_root = (
            str(self.config.cache_dir) if self.cache is not None else None
        )
        # One future per *workload*, building all of its missing
        # datasets: the worker loads the workload once and its analysis
        # cache is shared across the workload's tasks (which reuse the
        # same query texts).  One future per dataset would instead have
        # every worker re-load and re-parse the same workload.
        by_workload: dict[str, list[str]] = {}
        for task, workload_name in missing:
            by_workload.setdefault(workload_name, []).append(task)
        futures = {
            workload_name: pool.submit(
                build_workload_datasets_remote,
                workload_name,
                self.config.seed,
                tuple(
                    (
                        task,
                        self._dataset_disk_key(task, workload_name)
                        if cache_root
                        else None,
                    )
                    for task in tasks
                ),
                self.config.max_instances,
                cache_root,
                workload_key(workload_name, self.config.seed)
                if cache_root
                else None,
            )
            for workload_name, tasks in by_workload.items()
        }
        for workload_name, future in futures.items():
            for task, dataset in zip(by_workload[workload_name], future.result()):
                self._datasets[(task, workload_name)] = dataset
                if cache_root is None:
                    # With a cache the building worker persisted it.
                    self._dataset_to_disk(task, workload_name, dataset)

    def _evaluate_serial(
        self,
        profile: ModelProfile,
        task: str,
        dataset: TaskDataset,
        prompt: Optional[PromptTemplate],
    ) -> list[ModelAnswer]:
        """In-process fallback: same shard plan, batched per shard.

        Each shard's requests go through the async dispatcher as one
        batch (bounded concurrency, rate limiting, retries) instead of
        one blocking call at a time — with the simulated backend the
        answers are byte-identical either way, and with an HTTP backend
        the shard's requests overlap on the wire.
        """
        backend = self.backend_for(profile.name)
        dispatcher = AsyncDispatcher(
            backend,
            max_concurrency=self.config.max_concurrency,
            rps=self.config.rps,
            bucket_state=self._bucket_state,
            request_timeout=self.config.request_timeout,
            breaker=self._serial_breaker(),
        )
        cell_started = time.monotonic()
        parts: list[tuple[int, list[ModelAnswer]]] = []
        for shard in plan_shards(len(dataset.instances), self.config.shard_size):
            instances = shard.slice(dataset.instances)
            remaining: Optional[float] = None
            if self.config.cell_deadline is not None:
                remaining = self.config.cell_deadline - (
                    time.monotonic() - cell_started
                )
                if remaining <= 0:
                    raise DeadlineExceededError(
                        f"cell deadline of {self.config.cell_deadline}s "
                        f"exceeded before shard {shard.index} "
                        f"({profile.name}/{task})"
                    )
            responses = dispatcher.run_sync(
                [
                    build_request(task, profile.name, instance, prompt)
                    for instance in instances
                ],
                deadline_seconds=remaining,
            )
            parts.append(
                (
                    shard.index,
                    answers_from_responses(task, instances, responses, profile.name),
                )
            )
        if self.config.rps is not None:
            self._bucket_state = dispatcher.bucket_state
        return merge_shards(parts)

    def _submit_parallel(
        self,
        pending: Sequence[tuple[ModelProfile, str, str, TaskDataset, Optional[str]]],
        prompt: Optional[PromptTemplate],
    ) -> list[list[Future]]:
        """Fan every shard of every pending cell across the pool at once.

        With a cache directory configured, dispatch is zero-copy: a
        shard names its dataset by cache key plus a ``[start, stop)``
        range, and workers materialize the dataset once per process from
        disk (or rebuild it deterministically) — IPC cost per shard does
        not scale with instance payload size.  Without a cache the shard
        carries its instance slice inline, as before.

        Returns one future list per pending cell; the caller collects
        them cell by cell so the ``on_cell_error`` policy and interrupt
        checkpoints apply per cell.
        """
        pool = self._executor()
        cache_root = (
            str(self.config.cache_dir) if self.cache is not None else None
        )
        futures: list[list[Future]] = []
        for profile, task, workload_name, dataset, _ in pending:
            self._journal_cell(profile.name, task, workload_name, CELL_IN_FLIGHT)
            shards: list[Shard] = plan_shards(
                len(dataset.instances), self.config.shard_size
            )
            zero_copy = cache_root is not None
            futures.append(
                [
                    pool.submit(
                        evaluate_shard,
                        ShardSpec(
                            profile=profile,
                            task=task,
                            workload=workload_name,
                            index=shard.index,
                            start=shard.start,
                            stop=shard.stop,
                            seed=self.config.seed,
                            max_instances=self.config.max_instances,
                            dataset_key=(
                                self._dataset_disk_key(task, workload_name)
                                if zero_copy
                                else None
                            ),
                            workload_cache_key=(
                                workload_key(workload_name, self.config.seed)
                                if zero_copy
                                else None
                            ),
                            cache_root=cache_root,
                            instances=(
                                None
                                if zero_copy
                                else tuple(shard.slice(dataset.instances))
                            ),
                            prompt=prompt,
                            backend=self.config.backend,
                            max_concurrency=self.config.max_concurrency,
                            rps=self.config.rps,
                            request_timeout=self.config.request_timeout,
                            deadline=self.config.cell_deadline,
                            breaker_threshold=(
                                self.config.resolved_breaker_threshold() or 0
                            ),
                        ),
                    )
                    for shard in shards
                ]
            )
        return futures
