"""The parallel, sharded, cache-backed experiment engine.

The paper's evaluation grid (models x tasks x workloads) is
embarrassingly parallel: every answer depends only on ``(model, task,
instance_id)``.  The engine exploits that by splitting each cell into
contiguous instance shards, fanning the shards of *all* pending cells
across one long-lived ``ProcessPoolExecutor``, and merging answers back
in shard order — so a parallel run is byte-identical to the serial one.

``workers=1`` (the default) never touches multiprocessing: the same
shard plan is executed in-process, deterministically, which keeps unit
tests and small runs free of pool start-up cost.

With a cache directory configured, evaluated cells are persisted through
:mod:`repro.engine.cache`; re-running a grid only recomputes cells whose
inputs (seed, profile, prompt, workload, instance cap, backend) changed.

Model calls go through the pluggable backend layer
(:mod:`repro.llm.backends`): each shard's requests are batched through
an async dispatcher (bounded concurrency, rate limiting, retries) to
the configured backend — the in-process simulator by default, an HTTP
endpoint or a record/replay fixture store otherwise.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence

from repro.engine.cache import (
    ResultCache,
    cell_key,
    dataset_key,
    prompt_fingerprint,
    workload_key,
)
from repro.engine.sharding import (
    DEFAULT_SHARD_SIZE,
    Shard,
    merge_shards,
    plan_shards,
)
from repro.engine.worker import (
    ShardSpec,
    build_workload_datasets_remote,
    evaluate_shard,
)
from repro.llm.backends import (
    DEFAULT_MAX_CONCURRENCY,
    SIMULATED_SPEC,
    AsyncDispatcher,
    BackendSpec,
    ModelBackend,
    create_backend,
)
from repro.llm.profiles import MODEL_PROFILES, ModelProfile
from repro.llm.simulated import SimulatedLLM
from repro.prompts.templates import PromptTemplate
from repro.tasks.base import ModelAnswer, TaskDataset
from repro.tasks.registry import (
    TASK_WORKLOADS,
    answers_from_responses,
    build_dataset,
    build_request,
)
from repro.workloads import load_workload
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, see below
    from repro.engine.streaming import StreamingEvaluator
    from repro.evalfw.runner import CellResult


@dataclass(frozen=True)
class EngineConfig:
    """Knobs for one engine instance."""

    seed: int = 0
    workers: int = 1
    shard_size: int = DEFAULT_SHARD_SIZE
    cache_dir: Optional[Path] = None  # None disables the result cache
    max_instances: Optional[int] = None
    #: Streamed chunk size; None keeps the materialised data path.  When
    #: set, cells flow chunk-by-chunk through the work-queue pool
    #: (:mod:`repro.engine.streaming`) with memory bounded by the chunk
    #: size instead of the dataset size.
    chunk_size: Optional[int] = None
    #: Which model backend answers requests (default: the simulator).
    backend: BackendSpec = SIMULATED_SPEC
    #: Dispatcher knobs: in-flight bound and sustained requests/second
    #: (None = unthrottled; the simulator needs no throttle).
    max_concurrency: int = DEFAULT_MAX_CONCURRENCY
    rps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.rps is not None and self.rps <= 0:
            raise ValueError(f"rps must be > 0, got {self.rps}")


@dataclass(frozen=True)
class CellLog:
    """Provenance of one served cell: cache hit or computed, and when.

    ``seconds`` is the cell's compute time: wall time for serially
    computed cells, and the *sum* of the cell's per-shard worker wall
    times for parallel cells (shards of different cells overlap, so the
    parent's clock cannot attribute elapsed time — the workers' clocks
    can).  ``shard_seconds_max`` additionally records the slowest shard
    of a parallel cell (the cell's critical path); it is None for
    serial and cached serves.  Cached cells record ~0 seconds.
    ``prompt`` is the prompt-template fingerprint the cell was asked
    with, so a re-serve under a *different* prompt is distinguishable
    from a repeat serve of the same experiment.  The reporting layer
    folds these into RunRecords.
    """

    model: str
    task: str
    workload: str
    instances: int
    cached: bool
    seconds: Optional[float]
    prompt: str = ""
    shard_seconds_max: Optional[float] = None


class ExperimentEngine:
    """Evaluates grid cells, in parallel and through the result cache."""

    def __init__(
        self,
        config: EngineConfig = EngineConfig(),
        models: tuple[ModelProfile, ...] = MODEL_PROFILES,
    ) -> None:
        self.config = config
        self.models = models
        self.cache = (
            ResultCache(Path(config.cache_dir))
            if config.cache_dir is not None
            else None
        )
        self.computed_cells = 0
        self.cached_cells = 0
        #: Every distinct served cell, keyed (model, task, workload) —
        #: the reporting layer snapshots this into RunRecords.
        self.results: dict[tuple[str, str, str], "CellResult"] = {}
        #: Append-only provenance log (one entry per serve, incl. repeats).
        self.cell_log: list[CellLog] = []
        self._workloads: dict[str, Workload] = {}
        self._datasets: dict[tuple[str, str], TaskDataset] = {}
        #: Lazily built: evaluation goes through backend_for(); direct
        #: simulator access survives for ablation harnesses only.
        self._clients: dict[str, SimulatedLLM] = {}
        self._backends: dict[str, ModelBackend] = {}
        #: Shared token-bucket fill level for the serial path, so --rps
        #: is sustained across cells instead of re-bursting per cell.
        self._bucket_state = None
        #: Memoised fixtures-content hash (replay mode; one IO pass).
        self._backend_state_memo: Optional[str] = None
        self._by_name = {profile.name: profile for profile in models}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._streaming: Optional["StreamingEvaluator"] = None

    # -- shared state ------------------------------------------------------

    def workload(self, name: str) -> Workload:
        if name not in self._workloads:
            self._workloads[name] = load_workload(name, self.config.seed)
        return self._workloads[name]

    def dataset(self, task: str, workload_name: str) -> TaskDataset:
        key = (task, workload_name)
        if key not in self._datasets:
            cached = self._dataset_from_disk(task, workload_name)
            if cached is not None:
                self._datasets[key] = cached
            else:
                self._datasets[key] = build_dataset(
                    task,
                    self.workload(workload_name),
                    seed=self.config.seed,
                    max_instances=self.config.max_instances,
                )
                self._dataset_to_disk(task, workload_name, self._datasets[key])
        return self._datasets[key]

    def _dataset_disk_key(self, task: str, workload_name: str) -> str:
        return dataset_key(
            task, workload_name, self.config.seed, self.config.max_instances
        )

    def _dataset_from_disk(
        self, task: str, workload_name: str
    ) -> Optional[TaskDataset]:
        if self.cache is None:
            return None
        return self.cache.get_dataset(self._dataset_disk_key(task, workload_name))

    def _dataset_to_disk(
        self, task: str, workload_name: str, dataset: TaskDataset
    ) -> None:
        if self.cache is not None:
            self.cache.put_dataset(
                self._dataset_disk_key(task, workload_name), dataset
            )

    def client(self, model_name: str) -> SimulatedLLM:
        """Direct simulator access (ablation harnesses; not the grid path)."""
        if model_name not in self._clients:
            self._clients[model_name] = SimulatedLLM(self.profile(model_name))
        return self._clients[model_name]

    def backend_for(self, model_name: str) -> ModelBackend:
        """The configured backend instance for one model (memoised)."""
        if model_name not in self._backends:
            self._backends[model_name] = create_backend(
                self.config.backend, self.profile(model_name)
            )
        return self._backends[model_name]

    def _backend_is_recording(self) -> bool:
        """Whether runs exist for their side effects (fixture writing)."""
        return self.config.backend.option("mode") == "record"

    def _backend_state(self) -> str:
        """External state feeding the backend's answers, for cache keys.

        Replay-mode fixtures are an input like source code or the seed:
        their content hash joins the cell key so edited or re-recorded
        fixtures invalidate cells cached against the old responses.
        Recording runs return "" (they never read the cell cache, and
        their fixture store mutates while they run).
        """
        spec = self.config.backend
        if spec.name != "replay" or self._backend_is_recording():
            return ""
        if self._backend_state_memo is None:
            from repro.llm.backends.replay import (
                DEFAULT_FIXTURES_DIR,
                fixtures_fingerprint,
            )

            root = spec.option("dir") or str(DEFAULT_FIXTURES_DIR)
            self._backend_state_memo = fixtures_fingerprint(Path(root))
        return self._backend_state_memo

    def profile(self, model_name: str) -> ModelProfile:
        try:
            return self._by_name[model_name]
        except KeyError:
            raise KeyError(
                f"unknown model {model_name!r}; engine has {sorted(self._by_name)}"
            ) from None

    # -- lifecycle ---------------------------------------------------------

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.config.workers)
        return self._pool

    @property
    def streaming(self) -> "StreamingEvaluator":
        """The streamed data path (active when ``chunk_size`` is set)."""
        if self._streaming is None:
            # Imported lazily: streaming pulls in evalfw.accumulate,
            # whose package __init__ imports evalfw.runner -> this module.
            from repro.engine.streaming import StreamingEvaluator

            self._streaming = StreamingEvaluator(self)
        return self._streaming

    def stream_stats(self) -> Optional[dict]:
        """Chunking provenance for the reporting layer (None if unused)."""
        if self._streaming is None:
            return None
        return self._streaming.stats.as_dict()

    def close(self) -> None:
        """Shut down the worker pool and backends (idempotent)."""
        # The evaluator survives close() so its stats stay readable for
        # the run record; only its worker pool is torn down.
        if self._streaming is not None:
            self._streaming.close()
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        for backend in self._backends.values():
            closer = getattr(backend, "close", None)
            if closer is not None:
                closer()
        self._backends.clear()

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- evaluation --------------------------------------------------------

    def run_cell(
        self,
        model_name: str,
        task: str,
        workload_name: str,
        prompt: Optional[PromptTemplate] = None,
    ) -> "CellResult":
        """Evaluate one cell (through the cache and the pool)."""
        grid = self._evaluate_cells(
            [(self.profile(model_name), task, workload_name)], prompt
        )
        return grid[(model_name, workload_name)]

    def run_task(
        self,
        task: str,
        workloads: Optional[tuple[str, ...]] = None,
        prompt: Optional[PromptTemplate] = None,
    ) -> dict[tuple[str, str], "CellResult"]:
        """Evaluate all models on all of a task's workloads.

        All pending shards of all cells are in flight at once, so worker
        utilisation does not dip at cell boundaries.
        """
        names = workloads or TASK_WORKLOADS[task]
        cells = [
            (profile, task, workload_name)
            for profile in self.models
            for workload_name in names
        ]
        return self._evaluate_cells(cells, prompt)

    def _evaluate_cells(
        self,
        cells: Sequence[tuple[ModelProfile, str, str]],
        prompt: Optional[PromptTemplate],
    ) -> dict[tuple[str, str], "CellResult"]:
        # Imported lazily: evalfw.runner imports this module at top level.
        from repro.evalfw.runner import CellResult

        if self.config.chunk_size is not None:
            return self._evaluate_cells_streamed(cells, prompt)
        grid: dict[tuple[str, str], "CellResult"] = {}
        pending: list[tuple[ModelProfile, str, str, TaskDataset, Optional[str]]] = []
        if self.config.workers > 1:
            self._prefetch_datasets({(task, workload) for _, task, workload in cells})
        for profile, task, workload_name in cells:
            dataset = self.dataset(task, workload_name)
            key: Optional[str] = None
            if self.cache is not None:
                key = cell_key(
                    self.config.seed,
                    profile,
                    task,
                    workload_name,
                    self.config.max_instances,
                    prompt,
                    backend=self.config.backend,
                    backend_state=self._backend_state(),
                )
                # A recording run's purpose is its side effect (writing
                # fixtures through the inner backend), so cached cells
                # must not elide it — and its cache entries would be
                # unreadable anyway (no later run shares the
                # mode=record fingerprint), so it skips the cache in
                # both directions.
                answers = (
                    None
                    if self._backend_is_recording()
                    else self.cache.get(key, expected_ids=dataset.instance_ids())
                )
                if answers is not None:
                    self.cached_cells += 1
                    result = CellResult(
                        model=profile.name,
                        task=task,
                        workload=workload_name,
                        dataset=dataset,
                        answers=answers,
                    )
                    grid[(profile.name, workload_name)] = result
                    self._record_cell(result, cached=True, seconds=0.0, prompt=prompt)
                    continue
            pending.append((profile, task, workload_name, dataset, key))

        if pending:
            cell_seconds: list[Optional[float]]
            cell_max_shard: list[Optional[float]]
            if self.config.workers == 1:
                evaluated = []
                cell_seconds = []
                for profile, task, _, dataset, _ in pending:
                    started = time.perf_counter()
                    evaluated.append(
                        self._evaluate_serial(profile, task, dataset, prompt)
                    )
                    cell_seconds.append(round(time.perf_counter() - started, 6))
                cell_max_shard = [None] * len(pending)
            else:
                # Parallel cells overlap in wall time, so per-cell time
                # comes from the workers' own clocks: the sum of a
                # cell's shard times is its compute cost, the max its
                # critical path.
                evaluated, cell_seconds, cell_max_shard = self._evaluate_parallel(
                    pending, prompt
                )
            for (
                (profile, task, workload_name, dataset, key),
                answers,
                seconds,
                max_shard,
            ) in zip(pending, evaluated, cell_seconds, cell_max_shard):
                self.computed_cells += 1
                if (
                    self.cache is not None
                    and key is not None
                    and not self._backend_is_recording()
                ):
                    self.cache.put(
                        key,
                        answers,
                        meta={
                            "model": profile.name,
                            "task": task,
                            "workload": workload_name,
                            "seed": self.config.seed,
                            "max_instances": self.config.max_instances,
                        },
                    )
                result = CellResult(
                    model=profile.name,
                    task=task,
                    workload=workload_name,
                    dataset=dataset,
                    answers=answers,
                )
                grid[(profile.name, workload_name)] = result
                self._record_cell(
                    result,
                    cached=False,
                    seconds=seconds,
                    prompt=prompt,
                    shard_seconds_max=max_shard,
                )
        return grid

    def _evaluate_cells_streamed(
        self,
        cells: Sequence[tuple[ModelProfile, str, str]],
        prompt: Optional[PromptTemplate],
    ) -> dict[tuple[str, str], "CellResult"]:
        """The chunked data path: cells stream through the work queue.

        Each cell's instances are produced, evaluated, merged and
        persisted in ``chunk_size``-sized segments; the grid result is a
        :class:`~repro.evalfw.accumulate.StreamedCellResult`, which
        quacks like a CellResult for every metrics consumer but holds
        counts instead of the data.
        """
        grid: dict[tuple[str, str], "CellResult"] = {}
        for profile, task, workload_name in cells:
            result, cached, seconds = self.streaming.evaluate_cell(
                profile, task, workload_name, prompt
            )
            if cached:
                self.cached_cells += 1
            else:
                self.computed_cells += 1
            grid[(profile.name, workload_name)] = result
            self._record_cell(result, cached=cached, seconds=seconds, prompt=prompt)
        return grid

    def _record_cell(
        self,
        result: "CellResult",
        cached: bool,
        seconds: Optional[float],
        prompt: Optional[PromptTemplate] = None,
        shard_seconds_max: Optional[float] = None,
    ) -> None:
        """Accumulate a served cell for the reporting layer."""
        from repro.evalfw.accumulate import result_instance_count

        self.results[(result.model, result.task, result.workload)] = result
        self.cell_log.append(
            CellLog(
                model=result.model,
                task=result.task,
                workload=result.workload,
                instances=result_instance_count(result),
                cached=cached,
                seconds=seconds,
                prompt=prompt_fingerprint(result.task, prompt),
                shard_seconds_max=shard_seconds_max,
            )
        )

    def _prefetch_datasets(self, needed: set[tuple[str, str]]) -> None:
        """Materialise missing datasets: disk cache first, then workers.

        Dataset construction (parsing, corruption injection, pair
        generation) dominates a cold grid run, and ``build_dataset`` is
        deterministic — so each (task, workload) dataset that is neither
        in memory nor on disk is built exactly once, in a worker, with
        the builds overlapping each other, and shipped back.
        """
        missing = []
        for key in sorted(key for key in needed if key not in self._datasets):
            cached = self._dataset_from_disk(*key)
            if cached is not None:
                self._datasets[key] = cached
            else:
                missing.append(key)
        if not missing:
            return
        pool = self._executor()
        cache_root = (
            str(self.config.cache_dir) if self.cache is not None else None
        )
        # One future per *workload*, building all of its missing
        # datasets: the worker loads the workload once and its analysis
        # cache is shared across the workload's tasks (which reuse the
        # same query texts).  One future per dataset would instead have
        # every worker re-load and re-parse the same workload.
        by_workload: dict[str, list[str]] = {}
        for task, workload_name in missing:
            by_workload.setdefault(workload_name, []).append(task)
        futures = {
            workload_name: pool.submit(
                build_workload_datasets_remote,
                workload_name,
                self.config.seed,
                tuple(
                    (
                        task,
                        self._dataset_disk_key(task, workload_name)
                        if cache_root
                        else None,
                    )
                    for task in tasks
                ),
                self.config.max_instances,
                cache_root,
                workload_key(workload_name, self.config.seed)
                if cache_root
                else None,
            )
            for workload_name, tasks in by_workload.items()
        }
        for workload_name, future in futures.items():
            for task, dataset in zip(by_workload[workload_name], future.result()):
                self._datasets[(task, workload_name)] = dataset
                if cache_root is None:
                    # With a cache the building worker persisted it.
                    self._dataset_to_disk(task, workload_name, dataset)

    def _evaluate_serial(
        self,
        profile: ModelProfile,
        task: str,
        dataset: TaskDataset,
        prompt: Optional[PromptTemplate],
    ) -> list[ModelAnswer]:
        """In-process fallback: same shard plan, batched per shard.

        Each shard's requests go through the async dispatcher as one
        batch (bounded concurrency, rate limiting, retries) instead of
        one blocking call at a time — with the simulated backend the
        answers are byte-identical either way, and with an HTTP backend
        the shard's requests overlap on the wire.
        """
        backend = self.backend_for(profile.name)
        dispatcher = AsyncDispatcher(
            backend,
            max_concurrency=self.config.max_concurrency,
            rps=self.config.rps,
            bucket_state=self._bucket_state,
        )
        parts: list[tuple[int, list[ModelAnswer]]] = []
        for shard in plan_shards(len(dataset.instances), self.config.shard_size):
            instances = shard.slice(dataset.instances)
            responses = dispatcher.run_sync(
                [
                    build_request(task, profile.name, instance, prompt)
                    for instance in instances
                ]
            )
            parts.append(
                (
                    shard.index,
                    answers_from_responses(task, instances, responses, profile.name),
                )
            )
        if self.config.rps is not None:
            self._bucket_state = dispatcher.bucket_state
        return merge_shards(parts)

    def _evaluate_parallel(
        self,
        pending: Sequence[tuple[ModelProfile, str, str, TaskDataset, Optional[str]]],
        prompt: Optional[PromptTemplate],
    ) -> tuple[list[list[ModelAnswer]], list[float], list[float]]:
        """Fan every shard of every pending cell across the pool at once.

        With a cache directory configured, dispatch is zero-copy: a
        shard names its dataset by cache key plus a ``[start, stop)``
        range, and workers materialize the dataset once per process from
        disk (or rebuild it deterministically) — IPC cost per shard does
        not scale with instance payload size.  Without a cache the shard
        carries its instance slice inline, as before.

        Returns, per pending cell: the merged answers, the summed
        per-shard worker seconds (the cell's compute time), and the
        slowest shard's seconds (the cell's critical path).
        """
        pool = self._executor()
        cache_root = (
            str(self.config.cache_dir) if self.cache is not None else None
        )
        futures: list[list[Future]] = []
        for profile, task, workload_name, dataset, _ in pending:
            shards: list[Shard] = plan_shards(
                len(dataset.instances), self.config.shard_size
            )
            zero_copy = cache_root is not None
            futures.append(
                [
                    pool.submit(
                        evaluate_shard,
                        ShardSpec(
                            profile=profile,
                            task=task,
                            workload=workload_name,
                            index=shard.index,
                            start=shard.start,
                            stop=shard.stop,
                            seed=self.config.seed,
                            max_instances=self.config.max_instances,
                            dataset_key=(
                                self._dataset_disk_key(task, workload_name)
                                if zero_copy
                                else None
                            ),
                            workload_cache_key=(
                                workload_key(workload_name, self.config.seed)
                                if zero_copy
                                else None
                            ),
                            cache_root=cache_root,
                            instances=(
                                None
                                if zero_copy
                                else tuple(shard.slice(dataset.instances))
                            ),
                            prompt=prompt,
                            backend=self.config.backend,
                            max_concurrency=self.config.max_concurrency,
                            rps=self.config.rps,
                        ),
                    )
                    for shard in shards
                ]
            )
        answers: list[list[ModelAnswer]] = []
        sums: list[float] = []
        maxes: list[float] = []
        for cell_futures in futures:
            parts = [future.result() for future in cell_futures]
            answers.append(
                merge_shards((index, items) for index, items, _ in parts)
            )
            shard_seconds = [seconds for _, _, seconds in parts]
            sums.append(round(sum(shard_seconds), 6))
            maxes.append(
                round(max(shard_seconds), 6) if shard_seconds else 0.0
            )
        return answers, sums, maxes
