"""The parallel, sharded, cache-backed experiment engine.

The paper's evaluation grid (models x tasks x workloads) is
embarrassingly parallel: every answer depends only on ``(model, task,
instance_id)``.  The engine exploits that by splitting each cell into
contiguous instance shards, fanning the shards of *all* pending cells
across one long-lived ``ProcessPoolExecutor``, and merging answers back
in shard order — so a parallel run is byte-identical to the serial one.

``workers=1`` (the default) never touches multiprocessing: the same
shard plan is executed in-process, deterministically, which keeps unit
tests and small runs free of pool start-up cost.

With a cache directory configured, evaluated cells are persisted through
:mod:`repro.engine.cache`; re-running a grid only recomputes cells whose
inputs (seed, profile, prompt, workload, instance cap) changed.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence

from repro.engine.cache import (
    ResultCache,
    cell_key,
    dataset_key,
    prompt_fingerprint,
)
from repro.engine.sharding import (
    DEFAULT_SHARD_SIZE,
    Shard,
    merge_shards,
    plan_shards,
)
from repro.engine.worker import ShardTask, build_dataset_remote, evaluate_shard
from repro.llm.profiles import MODEL_PROFILES, ModelProfile
from repro.llm.simulated import SimulatedLLM
from repro.prompts.templates import PromptTemplate
from repro.tasks.base import ModelAnswer, TaskDataset
from repro.tasks.registry import TASK_WORKLOADS, ask, build_dataset
from repro.workloads import load_workload
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, see below
    from repro.evalfw.runner import CellResult


@dataclass(frozen=True)
class EngineConfig:
    """Knobs for one engine instance."""

    seed: int = 0
    workers: int = 1
    shard_size: int = DEFAULT_SHARD_SIZE
    cache_dir: Optional[Path] = None  # None disables the result cache
    max_instances: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")


@dataclass(frozen=True)
class CellLog:
    """Provenance of one served cell: cache hit or computed, and when.

    ``seconds`` is per-cell wall time for serially computed cells, the
    whole batch's wall time share is unknowable for parallel cells (they
    overlap), so it is ``None`` there; cached cells record ~0.
    ``prompt`` is the prompt-template fingerprint the cell was asked
    with, so a re-serve under a *different* prompt is distinguishable
    from a repeat serve of the same experiment.  The reporting layer
    folds these into RunRecords.
    """

    model: str
    task: str
    workload: str
    instances: int
    cached: bool
    seconds: Optional[float]
    prompt: str = ""


class ExperimentEngine:
    """Evaluates grid cells, in parallel and through the result cache."""

    def __init__(
        self,
        config: EngineConfig = EngineConfig(),
        models: tuple[ModelProfile, ...] = MODEL_PROFILES,
    ) -> None:
        self.config = config
        self.models = models
        self.cache = (
            ResultCache(Path(config.cache_dir))
            if config.cache_dir is not None
            else None
        )
        self.computed_cells = 0
        self.cached_cells = 0
        #: Every distinct served cell, keyed (model, task, workload) —
        #: the reporting layer snapshots this into RunRecords.
        self.results: dict[tuple[str, str, str], "CellResult"] = {}
        #: Append-only provenance log (one entry per serve, incl. repeats).
        self.cell_log: list[CellLog] = []
        self._workloads: dict[str, Workload] = {}
        self._datasets: dict[tuple[str, str], TaskDataset] = {}
        self._clients = {profile.name: SimulatedLLM(profile) for profile in models}
        self._by_name = {profile.name: profile for profile in models}
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- shared state ------------------------------------------------------

    def workload(self, name: str) -> Workload:
        if name not in self._workloads:
            self._workloads[name] = load_workload(name, self.config.seed)
        return self._workloads[name]

    def dataset(self, task: str, workload_name: str) -> TaskDataset:
        key = (task, workload_name)
        if key not in self._datasets:
            cached = self._dataset_from_disk(task, workload_name)
            if cached is not None:
                self._datasets[key] = cached
            else:
                self._datasets[key] = build_dataset(
                    task,
                    self.workload(workload_name),
                    seed=self.config.seed,
                    max_instances=self.config.max_instances,
                )
                self._dataset_to_disk(task, workload_name, self._datasets[key])
        return self._datasets[key]

    def _dataset_disk_key(self, task: str, workload_name: str) -> str:
        return dataset_key(
            task, workload_name, self.config.seed, self.config.max_instances
        )

    def _dataset_from_disk(
        self, task: str, workload_name: str
    ) -> Optional[TaskDataset]:
        if self.cache is None:
            return None
        return self.cache.get_dataset(self._dataset_disk_key(task, workload_name))

    def _dataset_to_disk(
        self, task: str, workload_name: str, dataset: TaskDataset
    ) -> None:
        if self.cache is not None:
            self.cache.put_dataset(
                self._dataset_disk_key(task, workload_name), dataset
            )

    def client(self, model_name: str) -> SimulatedLLM:
        return self._clients[model_name]

    def profile(self, model_name: str) -> ModelProfile:
        try:
            return self._by_name[model_name]
        except KeyError:
            raise KeyError(
                f"unknown model {model_name!r}; engine has {sorted(self._by_name)}"
            ) from None

    # -- lifecycle ---------------------------------------------------------

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.config.workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- evaluation --------------------------------------------------------

    def run_cell(
        self,
        model_name: str,
        task: str,
        workload_name: str,
        prompt: Optional[PromptTemplate] = None,
    ) -> "CellResult":
        """Evaluate one cell (through the cache and the pool)."""
        grid = self._evaluate_cells(
            [(self.profile(model_name), task, workload_name)], prompt
        )
        return grid[(model_name, workload_name)]

    def run_task(
        self,
        task: str,
        workloads: Optional[tuple[str, ...]] = None,
        prompt: Optional[PromptTemplate] = None,
    ) -> dict[tuple[str, str], "CellResult"]:
        """Evaluate all models on all of a task's workloads.

        All pending shards of all cells are in flight at once, so worker
        utilisation does not dip at cell boundaries.
        """
        names = workloads or TASK_WORKLOADS[task]
        cells = [
            (profile, task, workload_name)
            for profile in self.models
            for workload_name in names
        ]
        return self._evaluate_cells(cells, prompt)

    def _evaluate_cells(
        self,
        cells: Sequence[tuple[ModelProfile, str, str]],
        prompt: Optional[PromptTemplate],
    ) -> dict[tuple[str, str], "CellResult"]:
        # Imported lazily: evalfw.runner imports this module at top level.
        from repro.evalfw.runner import CellResult

        grid: dict[tuple[str, str], "CellResult"] = {}
        pending: list[tuple[ModelProfile, str, str, TaskDataset, Optional[str]]] = []
        if self.config.workers > 1:
            self._prefetch_datasets({(task, workload) for _, task, workload in cells})
        for profile, task, workload_name in cells:
            dataset = self.dataset(task, workload_name)
            key: Optional[str] = None
            if self.cache is not None:
                key = cell_key(
                    self.config.seed,
                    profile,
                    task,
                    workload_name,
                    self.config.max_instances,
                    prompt,
                )
                answers = self.cache.get(key, expected_ids=dataset.instance_ids())
                if answers is not None:
                    self.cached_cells += 1
                    result = CellResult(
                        model=profile.name,
                        task=task,
                        workload=workload_name,
                        dataset=dataset,
                        answers=answers,
                    )
                    grid[(profile.name, workload_name)] = result
                    self._record_cell(result, cached=True, seconds=0.0, prompt=prompt)
                    continue
            pending.append((profile, task, workload_name, dataset, key))

        if pending:
            cell_seconds: list[Optional[float]]
            if self.config.workers == 1:
                evaluated = []
                cell_seconds = []
                for profile, task, _, dataset, _ in pending:
                    started = time.perf_counter()
                    evaluated.append(
                        self._evaluate_serial(profile, task, dataset, prompt)
                    )
                    cell_seconds.append(round(time.perf_counter() - started, 6))
            else:
                evaluated = self._evaluate_parallel(pending, prompt)
                # Parallel cells overlap in time; per-cell wall time is
                # not attributable, so provenance records None.
                cell_seconds = [None] * len(pending)
            for (profile, task, workload_name, dataset, key), answers, seconds in zip(
                pending, evaluated, cell_seconds
            ):
                self.computed_cells += 1
                if self.cache is not None and key is not None:
                    self.cache.put(
                        key,
                        answers,
                        meta={
                            "model": profile.name,
                            "task": task,
                            "workload": workload_name,
                            "seed": self.config.seed,
                            "max_instances": self.config.max_instances,
                        },
                    )
                result = CellResult(
                    model=profile.name,
                    task=task,
                    workload=workload_name,
                    dataset=dataset,
                    answers=answers,
                )
                grid[(profile.name, workload_name)] = result
                self._record_cell(
                    result, cached=False, seconds=seconds, prompt=prompt
                )
        return grid

    def _record_cell(
        self,
        result: "CellResult",
        cached: bool,
        seconds: Optional[float],
        prompt: Optional[PromptTemplate] = None,
    ) -> None:
        """Accumulate a served cell for the reporting layer."""
        self.results[(result.model, result.task, result.workload)] = result
        self.cell_log.append(
            CellLog(
                model=result.model,
                task=result.task,
                workload=result.workload,
                instances=len(result.dataset.instances),
                cached=cached,
                seconds=seconds,
                prompt=prompt_fingerprint(result.task, prompt),
            )
        )

    def _prefetch_datasets(self, needed: set[tuple[str, str]]) -> None:
        """Materialise missing datasets: disk cache first, then workers.

        Dataset construction (parsing, corruption injection, pair
        generation) dominates a cold grid run, and ``build_dataset`` is
        deterministic — so each (task, workload) dataset that is neither
        in memory nor on disk is built exactly once, in a worker, with
        the builds overlapping each other, and shipped back.
        """
        missing = []
        for key in sorted(key for key in needed if key not in self._datasets):
            cached = self._dataset_from_disk(*key)
            if cached is not None:
                self._datasets[key] = cached
            else:
                missing.append(key)
        if not missing:
            return
        pool = self._executor()
        futures = {
            key: pool.submit(
                build_dataset_remote,
                key[0],
                key[1],
                self.config.seed,
                self.config.max_instances,
            )
            for key in missing
        }
        for key, future in futures.items():
            self._datasets[key] = future.result()
            self._dataset_to_disk(key[0], key[1], self._datasets[key])

    def _evaluate_serial(
        self,
        profile: ModelProfile,
        task: str,
        dataset: TaskDataset,
        prompt: Optional[PromptTemplate],
    ) -> list[ModelAnswer]:
        """In-process fallback: same shard plan, executed sequentially."""
        client = self.client(profile.name)
        parts: list[tuple[int, list[ModelAnswer]]] = []
        for shard in plan_shards(len(dataset.instances), self.config.shard_size):
            parts.append(
                (
                    shard.index,
                    [
                        ask(task, client, instance, prompt)
                        for instance in shard.slice(dataset.instances)
                    ],
                )
            )
        return merge_shards(parts)

    def _evaluate_parallel(
        self,
        pending: Sequence[tuple[ModelProfile, str, str, TaskDataset, Optional[str]]],
        prompt: Optional[PromptTemplate],
    ) -> list[list[ModelAnswer]]:
        """Fan every shard of every pending cell across the pool at once.

        Shards carry their instance slices with them, so workers never
        rebuild datasets — evaluation cost in a worker is exactly the
        ask/extract loop.
        """
        pool = self._executor()
        futures: list[list[Future]] = []
        for profile, task, _workload_name, dataset, _ in pending:
            shards: list[Shard] = plan_shards(
                len(dataset.instances), self.config.shard_size
            )
            futures.append(
                [
                    pool.submit(
                        evaluate_shard,
                        ShardTask(
                            profile=profile,
                            task=task,
                            index=shard.index,
                            instances=tuple(shard.slice(dataset.instances)),
                            prompt=prompt,
                        ),
                    )
                    for shard in shards
                ]
            )
        return [
            merge_shards(future.result() for future in cell_futures)
            for cell_futures in futures
        ]
