"""Deterministic shard planning for grid cells.

A cell's instance list is split into contiguous, ordered shards.  Shards
are the unit of work handed to worker processes; merging them back in
index order reconstructs the exact serial evaluation order, which is why
the parallel path is byte-identical to the serial one (each instance's
answer depends only on ``(model, task, instance_id)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")

#: Default number of instances per shard.  Small enough that a typical
#: workload cell (a few hundred instances) splits across all workers,
#: large enough that per-shard dispatch overhead stays negligible.
DEFAULT_SHARD_SIZE = 64


@dataclass(frozen=True)
class Shard:
    """One contiguous ``[start, stop)`` slice of a cell's instances."""

    index: int
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start

    def slice(self, items: Sequence[T]) -> Sequence[T]:
        return items[self.start : self.stop]


def plan_shards(total: int, shard_size: int = DEFAULT_SHARD_SIZE) -> list[Shard]:
    """Split ``total`` instances into ordered contiguous shards.

    The plan covers ``[0, total)`` exactly once with no gaps or overlap;
    an empty cell yields an empty plan.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return [
        Shard(index=index, start=start, stop=min(start + shard_size, total))
        for index, start in enumerate(range(0, total, shard_size))
    ]


def merge_shards(parts: Iterable[tuple[int, list[T]]]) -> list[T]:
    """Reassemble per-shard results into serial order.

    ``parts`` are ``(shard_index, items)`` pairs in any completion order;
    the result concatenates them by shard index.  Duplicate indices are
    rejected — that would silently double-count instances.
    """
    by_index: dict[int, list[T]] = {}
    for index, items in parts:
        if index in by_index:
            raise ValueError(f"duplicate shard index {index}")
        by_index[index] = items
    merged: list[T] = []
    for index in sorted(by_index):
        merged.extend(by_index[index])
    return merged
