"""Worker-side functions for the engine's process pool.

Two kinds of work cross the pool boundary:

* :func:`evaluate_shard` — answer one contiguous slice of a cell's
  instances.  The instances travel *with* the task, so evaluation never
  rebuilds a dataset inside a worker (rebuilding per worker would
  multiply the dominant cost of a grid run by the worker count);
* :func:`build_dataset_remote` — construct one dataset in a worker so
  the parent can overlap dataset construction across (task, workload)
  pairs.  ``build_dataset`` is deterministic in its arguments, so the
  copy shipped back is identical to what the parent would build.

Everything crossing the boundary is plain picklable dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.llm.profiles import ModelProfile
from repro.llm.simulated import SimulatedLLM
from repro.prompts.templates import PromptTemplate
from repro.tasks.base import ModelAnswer, TaskDataset, TaskInstance
from repro.tasks.registry import ask, build_dataset
from repro.workloads import load_workload
from repro.workloads.base import Workload

_WORKLOADS: dict[tuple[str, int], Workload] = {}
_CLIENTS: dict[str, SimulatedLLM] = {}


@dataclass(frozen=True)
class ShardTask:
    """One contiguous slice of one cell, ready to evaluate anywhere."""

    profile: ModelProfile
    task: str
    index: int  # shard index, for merge ordering
    instances: tuple[TaskInstance, ...]
    prompt: Optional[PromptTemplate] = None


def _client(profile: ModelProfile) -> SimulatedLLM:
    cached = _CLIENTS.get(profile.name)
    if cached is None or cached.profile != profile:
        cached = SimulatedLLM(profile)
        _CLIENTS[profile.name] = cached
    return cached


def evaluate_shard(spec: ShardTask) -> tuple[int, list[ModelAnswer]]:
    """Evaluate one shard; returns ``(shard_index, answers)``.

    Answers come back in instance order within the shard, so merging by
    shard index reproduces the serial evaluation exactly (each answer
    depends only on ``(model, task, instance_id)``).
    """
    client = _client(spec.profile)
    answers = [
        ask(spec.task, client, instance, spec.prompt) for instance in spec.instances
    ]
    return spec.index, answers


def build_dataset_remote(
    task: str, workload: str, seed: int, max_instances: Optional[int]
) -> TaskDataset:
    """Build one dataset inside a worker (workloads memoised per process)."""
    key = (workload, seed)
    if key not in _WORKLOADS:
        _WORKLOADS[key] = load_workload(workload, seed)
    return build_dataset(
        task, _WORKLOADS[key], seed=seed, max_instances=max_instances
    )


def reset_worker_caches() -> None:
    """Drop the process-global caches (test isolation hook)."""
    _WORKLOADS.clear()
    _CLIENTS.clear()
