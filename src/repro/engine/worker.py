"""Worker-side functions for the engine's process pool.

Two kinds of work cross the pool boundary:

* :func:`evaluate_shard` — answer one contiguous slice of a cell's
  instances.  The shard travels as a :class:`ShardSpec` that names the
  dataset by its on-disk cache key plus a ``[start, stop)`` range —
  zero-copy dispatch: IPC cost is a few hundred bytes per shard no
  matter how large the instance payloads are.  Workers materialize each
  dataset once per process (memo first, then the dataset cache on disk,
  then a deterministic rebuild), slice locally, and batch the slice's
  requests through the async dispatcher to the spec's backend
  (backends are memoised per process, so replay stores and HTTP pools
  survive across shards).  When no cache directory is configured the
  spec falls back to carrying the instances inline, which is the old
  behaviour;
* :func:`build_dataset_remote` — construct one dataset in a worker so
  the parent can overlap dataset construction across (task, workload)
  pairs.  ``build_dataset`` is deterministic in its arguments, so the
  copy shipped back is identical to what the parent would build.  With
  a cache directory the worker also persists the dataset (and the
  workload it loaded) so sibling workers materialize from disk instead
  of rebuilding.

Everything crossing the boundary is plain picklable dataclasses, and
every answer depends only on ``(model, task, instance_id)`` — which is
why any materialization path yields byte-identical results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.engine.cache import ResultCache
from repro.llm.backends import (
    DEFAULT_MAX_CONCURRENCY,
    SIMULATED_SPEC,
    AsyncDispatcher,
    BackendSpec,
    ModelBackend,
    create_backend,
)
from repro.llm.backends.dispatch import BreakerState, BucketState, CircuitBreaker
from repro.llm.profiles import ModelProfile
from repro.prompts.templates import PromptTemplate
from repro.sql.analysis_cache import ensure_capacity
from repro.tasks.base import ModelAnswer, TaskDataset, TaskInstance
from repro.tasks.registry import answers_from_responses, build_dataset, build_request
from repro.workloads import load_workload
from repro.workloads.base import Workload

_WORKLOADS: dict[tuple[str, int], Workload] = {}
_DATASETS: dict[tuple[str, str, int, Optional[int]], TaskDataset] = {}
_BACKENDS: dict[tuple[BackendSpec, str], tuple[ModelProfile, ModelBackend]] = {}
#: Token-bucket fill levels, shared across this process's shard batches
#: so ``rps`` is a sustained per-process rate (aggregate rate across a
#: pool is ~``workers x rps``; size --rps accordingly).
_BUCKET_STATES: dict[tuple[BackendSpec, float], BucketState] = {}
#: Circuit-breaker health per backend, shared across this process's
#: shard batches: a backend that tripped during one shard stays tripped
#: for the next instead of re-earning a full retry ladder.
_BREAKER_STATES: dict[BackendSpec, BreakerState] = {}


def init_worker_process() -> None:
    """Pool-worker initializer: leave interrupt handling to the parent.

    Ctrl-C delivers SIGINT to the whole foreground process group; the
    parent turns it into a graceful drain (journal flush + resume hint),
    so workers must not race it with their own ``KeyboardInterrupt``
    tracebacks — they ignore SIGINT and exit when the parent tears the
    pool down.
    """
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous slice of one cell, addressable anywhere.

    ``instances`` is None in zero-copy mode (the worker materializes
    the dataset from ``dataset_key`` under ``cache_root`` or rebuilds it
    deterministically) and carries the actual slice in inline mode
    (no cache directory configured).
    """

    profile: ModelProfile
    task: str
    workload: str
    index: int  # shard index, for merge ordering
    start: int
    stop: int
    seed: int
    max_instances: Optional[int]
    dataset_key: Optional[str] = None
    workload_cache_key: Optional[str] = None
    cache_root: Optional[str] = None
    instances: Optional[tuple[TaskInstance, ...]] = None
    prompt: Optional[PromptTemplate] = None
    backend: BackendSpec = SIMULATED_SPEC
    max_concurrency: int = DEFAULT_MAX_CONCURRENCY
    rps: Optional[float] = None
    #: Per-request wall-clock timeout (dispatcher ``asyncio.wait_for``).
    request_timeout: Optional[float] = None
    #: Wall-clock budget for this dispatch batch (the cell deadline,
    #: granted per shard — worker clocks don't compare across processes).
    deadline: Optional[float] = None
    #: Circuit-breaker trip threshold; 0 disables the breaker.
    breaker_threshold: int = 0


def _backend(spec: BackendSpec, profile: ModelProfile) -> ModelBackend:
    """Per-process backend memo (replay stores, HTTP pools survive shards)."""
    memo_key = (spec, profile.name)
    cached = _BACKENDS.get(memo_key)
    if cached is None or cached[0] != profile:
        _BACKENDS[memo_key] = (profile, create_backend(spec, profile))
    return _BACKENDS[memo_key][1]


def _workload(name: str, seed: int, cache: Optional[ResultCache], key: Optional[str]) -> Workload:
    memo_key = (name, seed)
    workload = _WORKLOADS.get(memo_key)
    if workload is None:
        if cache is not None and key is not None:
            workload = cache.get_workload(key)
        if workload is None:
            workload = load_workload(name, seed)
            if cache is not None and key is not None:
                cache.put_workload(key, workload)
        # Size this worker's analysis memo to the workload before the
        # dataset builders start re-probing its texts: generation sizes
        # the parent process, but a workload materialized from the disk
        # cache skips generation, and a default-capacity LRU thrashes
        # on million-instance workloads.
        ensure_capacity(len(workload.queries))
        _WORKLOADS[memo_key] = workload
    return workload


def _materialize_dataset(spec: ShardSpec) -> TaskDataset:
    """The shard's dataset: process memo -> disk cache -> rebuild."""
    memo_key = (spec.task, spec.workload, spec.seed, spec.max_instances)
    dataset = _DATASETS.get(memo_key)
    if dataset is not None:
        return dataset
    cache = ResultCache(Path(spec.cache_root)) if spec.cache_root else None
    if cache is not None and spec.dataset_key is not None:
        dataset = cache.get_dataset(spec.dataset_key)
    if dataset is None:
        workload = _workload(spec.workload, spec.seed, cache, spec.workload_cache_key)
        dataset = build_dataset(
            spec.task, workload, seed=spec.seed, max_instances=spec.max_instances
        )
        if cache is not None and spec.dataset_key is not None:
            cache.put_dataset(spec.dataset_key, dataset)
    _DATASETS[memo_key] = dataset
    return dataset


def evaluate_shard(spec: ShardSpec) -> tuple[int, list[ModelAnswer], float]:
    """Evaluate one shard; returns ``(shard_index, answers, seconds)``.

    ``seconds`` is the shard's wall time inside the worker — the parent
    aggregates these into real per-cell compute time for provenance
    (parallel cells overlap, so the parent's own clock cannot attribute
    time to cells).  Answers come back in instance order within the
    shard, so merging by shard index reproduces the serial evaluation
    exactly (each answer depends only on ``(model, task, instance_id)``).
    """
    started = time.perf_counter()
    if spec.instances is not None:
        instances = list(spec.instances)
    else:
        instances = _materialize_dataset(spec).instances[spec.start : spec.stop]
    backend = _backend(spec.backend, spec.profile)
    bucket_key = (spec.backend, spec.rps or 0.0)
    breaker = None
    if spec.breaker_threshold > 0:
        breaker = CircuitBreaker(
            threshold=spec.breaker_threshold,
            state=_BREAKER_STATES.setdefault(spec.backend, BreakerState()),
            backend_name=spec.backend.name,
        )
    dispatcher = AsyncDispatcher(
        backend,
        max_concurrency=spec.max_concurrency,
        rps=spec.rps,
        bucket_state=(
            _BUCKET_STATES.get(bucket_key) if spec.rps is not None else None
        ),
        request_timeout=spec.request_timeout,
        breaker=breaker,
    )
    responses = dispatcher.run_sync(
        [
            build_request(spec.task, spec.profile.name, instance, spec.prompt)
            for instance in instances
        ],
        deadline_seconds=spec.deadline,
    )
    if spec.rps is not None and dispatcher.bucket_state is not None:
        _BUCKET_STATES[bucket_key] = dispatcher.bucket_state
    answers = answers_from_responses(
        spec.task, instances, responses, spec.profile.name
    )
    return spec.index, answers, time.perf_counter() - started


def build_dataset_remote(
    task: str,
    workload: str,
    seed: int,
    max_instances: Optional[int],
    cache_root: Optional[str] = None,
    dataset_key: Optional[str] = None,
    workload_cache_key: Optional[str] = None,
) -> TaskDataset:
    """Build one dataset inside a worker (workloads memoised per process).

    With a cache configured the built dataset (and the workload) are
    persisted so sibling workers and later shard evaluation materialize
    from disk instead of rebuilding.
    """
    cache = ResultCache(Path(cache_root)) if cache_root else None
    workload_obj = _workload(workload, seed, cache, workload_cache_key)
    dataset = build_dataset(
        task, workload_obj, seed=seed, max_instances=max_instances
    )
    if cache is not None and dataset_key is not None:
        cache.put_dataset(dataset_key, dataset)
    _DATASETS[(task, workload, seed, max_instances)] = dataset
    return dataset


def build_workload_datasets_remote(
    workload: str,
    seed: int,
    tasks: tuple[tuple[str, Optional[str]], ...],
    max_instances: Optional[int],
    cache_root: Optional[str] = None,
    workload_cache_key: Optional[str] = None,
) -> list[TaskDataset]:
    """Build *all* of one workload's datasets in a single worker call.

    ``tasks`` is ``((task, dataset_key | None), ...)``.  Grouping by
    workload is what makes the parallel cold path scale: the workload is
    loaded once, and the process-wide analysis cache is shared across
    the workload's tasks (which reuse the same query texts), instead of
    every worker independently re-loading and re-parsing the same
    workload for one task each.
    """
    return [
        build_dataset_remote(
            task,
            workload,
            seed,
            max_instances,
            cache_root,
            dataset_key,
            workload_cache_key,
        )
        for task, dataset_key in tasks
    ]


@dataclass(frozen=True)
class ChunkTask:
    """One chunk of a streamed cell, travelling through the work queue.

    ``spec`` is an inline-instances :class:`ShardSpec` whose ``index``
    is the chunk's position in the cell; ``fault`` is the test-only
    injection channel ("crash" hard-kills the worker mid-chunk, "poison"
    raises inside the evaluation) — it rides in the descriptor so a
    re-dispatched chunk is clean by construction unless the test asked
    for a persistent fault.
    """

    cell: int
    chunk: int
    spec: ShardSpec
    fault: Optional[str] = None


def stream_worker_main(task_queue, result_queue) -> None:
    """Queue-worker loop: pull chunk descriptors until the None pill.

    Each result message is ``(kind, pid, cell, chunk, payload)`` with
    kind ``ok`` (payload ``(answers, seconds)``) or ``error`` (payload
    the formatted exception).  A crashed worker sends nothing — the
    parent notices the dead process and re-dispatches its assignments.
    """
    import os

    init_worker_process()
    pid = os.getpid()
    while True:
        item = task_queue.get()
        if item is None:
            break
        try:
            if item.fault == "crash":
                os._exit(43)
            if item.fault == "poison":
                raise RuntimeError("injected poison fault")
            _, answers, seconds = evaluate_shard(item.spec)
            result_queue.put(("ok", pid, item.cell, item.chunk, (answers, seconds)))
        except Exception as error:  # noqa: BLE001 - reported to the parent
            result_queue.put(
                (
                    "error",
                    pid,
                    item.cell,
                    item.chunk,
                    f"{type(error).__name__}: {error}",
                )
            )


def reset_worker_caches() -> None:
    """Drop the process-global caches (test isolation hook)."""
    _WORKLOADS.clear()
    _DATASETS.clear()
    _BACKENDS.clear()
    _BUCKET_STATES.clear()
    _BREAKER_STATES.clear()
