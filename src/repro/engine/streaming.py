"""Streaming work-queue evaluation: bounded memory at any instance count.

This is the engine's second data path, active when
``EngineConfig.chunk_size`` is set.  Instead of materialising a cell's
dataset and fanning static shards across a ``ProcessPoolExecutor``, the
cell flows through fixed-size chunks end to end:

* **produce** — task instances come from the same lazy generators the
  materialised builders drain (:mod:`repro.tasks.streaming`), re-chunked
  from the segmented dataset cache on warm runs;
* **evaluate** — chunks are dispatched to a pool of queue workers
  (:func:`repro.engine.worker.stream_worker_main`).  Dispatch is
  pull-based with bounded in-flight work: a worker holds at most
  ``PREFETCH`` pending chunks, so total in-flight state (and therefore
  parent memory) is capped at ``workers x PREFETCH`` chunks regardless
  of dataset size — that bound IS the backpressure, because the chunk
  producer only advances when a slot frees up;
* **merge** — results are reordered into chunk order and folded into a
  :class:`~repro.evalfw.accumulate.CellAccumulator`; the chunk's
  instances and answers are dropped immediately after.  Metrics come
  out byte-identical to the materialised path because both share the
  count-based constructors in :mod:`repro.evalfw.metrics`;
* **persist** — answers land in the segmented cell cache as they merge
  (atomic temp+rename per segment), with the manifest written only
  after the last chunk: a failed or killed run leaves no visible entry.

Fault model: a worker that dies mid-chunk is detected via its exit
code; its assigned chunks are re-dispatched to a fresh worker up to
``MAX_ATTEMPTS`` times, after which the run fails loudly with
:class:`StreamWorkerCrash`.  A worker that *reports* an exception
(poisoned chunk) fails the run immediately with
:class:`StreamChunkError` after draining in-flight chunks.  Either way
the failed cell's cache segments are discarded — no partial writes.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from collections import deque
from dataclasses import dataclass, field
from itertools import chain, islice
from typing import TYPE_CHECKING, Iterator, Optional

from repro.engine.cache import CacheSegmentError, cell_key
from repro.engine.worker import ChunkTask, ShardSpec, evaluate_shard, stream_worker_main
from repro.evalfw.accumulate import CellAccumulator, StreamedCellResult
from repro.llm.profiles import ModelProfile
from repro.prompts.templates import PromptTemplate
from repro.tasks.streaming import iter_instance_chunks
from repro.workloads.streaming import stream_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.core import ExperimentEngine

#: Pending chunks a queue worker may hold (1 running + 1 prefetched).
PREFETCH = 2

#: Total dispatch attempts per chunk before the run fails loudly.
MAX_ATTEMPTS = 3

#: Seconds between liveness checks while waiting for results.
POLL_SECONDS = 0.1


class StreamError(RuntimeError):
    """Base class for streaming-engine failures."""


class StreamChunkError(StreamError):
    """A worker reported an exception evaluating a chunk (poisoned task)."""


class StreamWorkerCrash(StreamError):
    """A chunk killed its worker repeatedly; re-dispatch gave up."""


@dataclass
class StreamFault:
    """Test-only fault injection: applied to one chunk of one cell.

    ``once=True`` (the default) arms the fault for the first dispatch
    only, so a crash is followed by a clean re-dispatch; ``once=False``
    keeps the fault on every dispatch of that chunk, which exhausts the
    re-dispatch budget and must surface as a named error.
    """

    kind: str  # "crash" | "poison"
    chunk: int = 0
    once: bool = True
    fired: int = field(default=0, repr=False)


@dataclass
class StreamStats:
    """Aggregate streaming provenance for one engine lifetime."""

    cells: int = 0
    chunks: int = 0
    instances: int = 0
    redispatched: int = 0
    worker_pids: set = field(default_factory=set)

    def as_dict(self) -> dict[str, int]:
        return {
            "cells": self.cells,
            "chunks": self.chunks,
            "instances": self.instances,
            "redispatched": self.redispatched,
            "workers_used": len(self.worker_pids),
        }


class _QueueWorker:
    """One queue worker process plus its parent-side bookkeeping."""

    def __init__(self, ctx, result_queue) -> None:
        self.task_queue = ctx.Queue()
        self.process = ctx.Process(
            target=stream_worker_main,
            args=(self.task_queue, result_queue),
            daemon=True,
        )
        self.process.start()
        #: Dispatched-but-unfinished chunks, in dispatch order.
        self.assigned: deque[ChunkTask] = deque()

    @property
    def pid(self) -> int:
        return self.process.pid

    def dispatch(self, item: ChunkTask) -> None:
        self.assigned.append(item)
        self.task_queue.put(item)

    def is_dead(self) -> bool:
        return self.process.exitcode is not None

    def stop(self, timeout: float = 5.0) -> None:
        if not self.is_dead():
            try:
                self.task_queue.put(None)
            except (OSError, ValueError):
                pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=timeout)
        self.task_queue.close()


class StreamPool:
    """A set of queue workers sharing one result queue."""

    def __init__(self, workers: int) -> None:
        self.ctx = multiprocessing.get_context()
        self.result_queue = self.ctx.Queue()
        self.workers: dict[int, _QueueWorker] = {}
        for _ in range(workers):
            self._spawn()

    def _spawn(self) -> _QueueWorker:
        worker = _QueueWorker(self.ctx, self.result_queue)
        self.workers[worker.pid] = worker
        return worker

    def replace(self, dead: _QueueWorker) -> _QueueWorker:
        """Replace a crashed worker with a fresh one (fresh task queue).

        The dead worker's queue may still hold undelivered items; a
        fresh queue guarantees the replacement never double-pulls them.
        """
        self.workers.pop(dead.pid, None)
        dead.process.join(timeout=1.0)
        return self._spawn()

    def live_workers(self) -> list[_QueueWorker]:
        return [w for w in self.workers.values() if not w.is_dead()]

    def close(self) -> None:
        """Graceful shutdown: poison pills, join, terminate stragglers."""
        for worker in list(self.workers.values()):
            worker.stop()
        self.workers.clear()
        self.result_queue.close()
        self.result_queue.join_thread()


def _rechunk(segments: Iterator[list], chunk_size: int) -> Iterator[list]:
    """Re-slice a stream of lists into ``chunk_size``-sized lists."""
    flat = chain.from_iterable(segments)
    while True:
        chunk = list(islice(flat, chunk_size))
        if not chunk:
            return
        yield chunk


class StreamingEvaluator:
    """Runs grid cells through the chunked work-queue data path."""

    def __init__(self, engine: "ExperimentEngine") -> None:
        self.engine = engine
        self.stats = StreamStats()
        #: Test-only injected fault; cleared responsibility is the test's.
        self.fault: Optional[StreamFault] = None
        self._pool: Optional[StreamPool] = None
        self._cell_counter = 0

    # -- lifecycle ---------------------------------------------------------

    def _get_pool(self) -> StreamPool:
        if self._pool is None:
            self._pool = StreamPool(self.engine.config.workers)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # -- cell evaluation ---------------------------------------------------

    def evaluate_cell(
        self,
        profile: ModelProfile,
        task: str,
        workload_name: str,
        prompt: Optional[PromptTemplate],
    ) -> tuple[StreamedCellResult, bool, float]:
        """One streamed cell: ``(result, served_from_cache, seconds)``."""
        engine = self.engine
        key: Optional[str] = None
        if engine.cache is not None and not engine._backend_is_recording():
            key = cell_key(
                engine.config.seed,
                profile,
                task,
                workload_name,
                engine.config.max_instances,
                prompt,
                backend=engine.config.backend,
                backend_state=engine._backend_state(),
            )
            warm = self._serve_warm(profile, task, workload_name, key)
            if warm is not None:
                return warm, True, 0.0
        started = time.perf_counter()
        try:
            result = self._evaluate_cold(profile, task, workload_name, prompt, key)
        except CacheSegmentError:
            # A dataset segment went bad mid-generation read: drop the
            # entry and recompute from a clean generator pass.
            if engine.cache is not None:
                engine.cache.discard_segments(
                    engine._dataset_disk_key(task, workload_name)
                )
            result = self._evaluate_cold(profile, task, workload_name, prompt, key)
        return result, False, round(time.perf_counter() - started, 6)

    # -- warm path ---------------------------------------------------------

    def _serve_warm(
        self,
        profile: ModelProfile,
        task: str,
        workload_name: str,
        key: str,
    ) -> Optional[StreamedCellResult]:
        """Serve a cell from committed answer segments, or None.

        Validation is id-for-id while streaming, the same alignment
        guarantee the materialised cache gives: any mismatch, truncated
        segment, or length drift aborts to a clean recompute.
        """
        cache = self.engine.cache
        chunk_size = self.engine.config.chunk_size
        manifest = cache.get_cell_manifest(key)
        if manifest is not None:
            answer_chunks = cache.iter_cell_segments(key)
        else:
            # A materialised run may have cached this cell monolithically;
            # stream the answer list in chunks (answers are small — the
            # instances, which dominate memory, stay streamed).
            answers = cache.get(key)
            if answers is None:
                return None  # get() counted the miss
            answer_chunks = iter(
                [answers[i : i + chunk_size] for i in range(0, len(answers), chunk_size)]
                or [[]]
            )
        acc = CellAccumulator(model=profile.name, task=task, workload=workload_name)
        try:
            instance_chunks, _ = self._instance_chunks(task, workload_name)
            instance_iter = chain.from_iterable(instance_chunks)
            for answers in answer_chunks:
                instances = list(islice(instance_iter, len(answers)))
                if len(instances) != len(answers) or any(
                    a.instance_id != i.instance_id
                    for a, i in zip(answers, instances)
                ):
                    if manifest is not None:
                        cache.stats.misses += 1
                    return None
                acc.add_chunk(instances, answers)
            if next(instance_iter, None) is not None:
                # The dataset has more instances than the entry answered.
                if manifest is not None:
                    cache.stats.misses += 1
                return None
        except CacheSegmentError:
            if manifest is not None:
                cache.stats.misses += 1
            return None
        if manifest is not None:
            cache.stats.hits += 1
        self.stats.cells += 1
        self.stats.chunks += acc.chunks
        self.stats.instances += acc.instances
        return acc.result(chunk_size)

    # -- instance production ----------------------------------------------

    def _instance_chunks(
        self, task: str, workload_name: str
    ) -> tuple[Iterator[list], bool]:
        """The cell's instance stream: ``(chunk iterator, from_cache)``.

        Warm: committed dataset segments (re-chunked to the configured
        chunk size), else a monolithic dataset entry.  Cold: the lazy
        task-instance generators, persisting segments as they pass so
        sibling cells (other models, warm reruns) stream from disk.
        """
        engine = self.engine
        cache = engine.cache
        chunk_size = engine.config.chunk_size
        dkey = engine._dataset_disk_key(task, workload_name)
        if cache is not None:
            manifest = cache.get_dataset_manifest(dkey)
            if manifest is not None:
                cache.stats.dataset_hits += 1
                return _rechunk(cache.iter_dataset_segments(dkey), chunk_size), True
            dataset = cache.get_dataset(dkey)
            if dataset is not None:
                return _rechunk(iter([dataset.instances]), chunk_size), True

        def generate() -> Iterator[list]:
            source = stream_workload(workload_name, engine.config.seed)
            counts: list[int] = []
            for chunk in iter_instance_chunks(
                task,
                source,
                seed=engine.config.seed,
                chunk_size=chunk_size,
                max_instances=engine.config.max_instances,
            ):
                if cache is not None:
                    cache.put_dataset_segment(dkey, len(counts), chunk)
                    counts.append(len(chunk))
                yield chunk
            if cache is not None:
                cache.commit_dataset_segments(
                    dkey,
                    chunk_size,
                    counts,
                    meta={"task": task, "workload": workload_name},
                )

        if cache is not None:
            cache.stats.dataset_misses += 1
        return generate(), False

    # -- cold path ---------------------------------------------------------

    def _evaluate_cold(
        self,
        profile: ModelProfile,
        task: str,
        workload_name: str,
        prompt: Optional[PromptTemplate],
        key: Optional[str],
    ) -> StreamedCellResult:
        engine = self.engine
        cache = engine.cache if key is not None else None
        chunk_size = engine.config.chunk_size
        self._cell_counter += 1
        cell_no = self._cell_counter
        acc = CellAccumulator(model=profile.name, task=task, workload=workload_name)
        counts: list[int] = []

        def make_task(chunk_index: int, instances: list) -> ChunkTask:
            fault = None
            if (
                self.fault is not None
                and self.fault.chunk == chunk_index
                and (not self.fault.once or self.fault.fired == 0)
            ):
                fault = self.fault.kind
                self.fault.fired += 1
            return ChunkTask(
                cell=cell_no,
                chunk=chunk_index,
                fault=fault,
                spec=ShardSpec(
                    profile=profile,
                    task=task,
                    workload=workload_name,
                    index=chunk_index,
                    start=0,
                    stop=len(instances),
                    seed=engine.config.seed,
                    max_instances=engine.config.max_instances,
                    instances=tuple(instances),
                    prompt=prompt,
                    backend=engine.config.backend,
                    max_concurrency=engine.config.max_concurrency,
                    rps=engine.config.rps,
                    request_timeout=engine.config.request_timeout,
                    deadline=engine.config.cell_deadline,
                    breaker_threshold=(
                        engine.config.resolved_breaker_threshold() or 0
                    ),
                ),
            )

        def on_merged(chunk_index: int, instances: list, answers: list) -> None:
            acc.add_chunk(instances, answers)
            if cache is not None:
                cache.put_cell_segment(key, chunk_index, answers)
                counts.append(len(answers))

        instance_chunks, _ = self._instance_chunks(task, workload_name)
        try:
            if engine.config.workers == 1:
                self._run_serial(instance_chunks, make_task, on_merged)
            else:
                self._run_queued(instance_chunks, make_task, on_merged)
        except BaseException:
            # No partial cache writes: the manifest was never written,
            # so the entry is already invisible — drop the orphaned
            # segments too.
            if cache is not None:
                cache.discard_segments(key)
            raise
        if cache is not None:
            cache.commit_cell_segments(
                key,
                chunk_size,
                counts,
                meta={
                    "model": profile.name,
                    "task": task,
                    "workload": workload_name,
                    "seed": engine.config.seed,
                    "max_instances": engine.config.max_instances,
                },
            )
        self.stats.cells += 1
        self.stats.chunks += acc.chunks
        self.stats.instances += acc.instances
        return acc.result(chunk_size)

    def _run_serial(self, instance_chunks, make_task, on_merged) -> None:
        """In-process chunk loop (workers=1): no pool, same code path."""
        for chunk_index, instances in enumerate(instance_chunks):
            # Chunk boundaries are the streaming path's interrupt
            # checkpoints: everything merged so far is in segments, and
            # the BaseException handler in _evaluate_cold discards them
            # — no partial cache entry ever becomes visible.
            self.engine._checkpoint()
            item = make_task(chunk_index, instances)
            if item.fault == "crash":
                raise StreamWorkerCrash(
                    f"chunk {chunk_index} crashed its worker (serial mode)"
                )
            if item.fault == "poison":
                raise StreamChunkError(
                    f"chunk {chunk_index} failed: RuntimeError: injected poison fault"
                )
            _, answers, _ = evaluate_shard(item.spec)
            on_merged(chunk_index, instances, answers)
            self.stats.worker_pids.add(multiprocessing.current_process().pid)

    # -- work-queue scheduling ---------------------------------------------

    def _run_queued(self, instance_chunks, make_task, on_merged) -> None:
        """Dispatch chunks to queue workers; merge results in order.

        In-flight work is bounded at ``workers x PREFETCH`` chunks: the
        producer (which holds each dispatched chunk's instances for the
        merge) only advances when a worker slot frees up, which is the
        backpressure that keeps parent memory flat.
        """
        pool = self._get_pool()
        producer = enumerate(instance_chunks)
        exhausted = False
        inflight: dict[int, list] = {}  # chunk -> instances (for the merge)
        attempts: dict[int, int] = {}
        completed: set[int] = set()
        buffered: dict[int, list] = {}  # chunk -> answers, out-of-order
        next_merge = 0
        pending_error: Optional[StreamError] = None

        def dispatch_capacity() -> list[_QueueWorker]:
            return [
                w
                for w in pool.live_workers()
                if len(w.assigned) < PREFETCH
            ]

        def top_up() -> None:
            nonlocal exhausted
            while not exhausted:
                free = dispatch_capacity()
                if not free:
                    return
                try:
                    chunk_index, instances = next(producer)
                except StopIteration:
                    exhausted = True
                    return
                item = make_task(chunk_index, instances)
                inflight[chunk_index] = instances
                attempts[chunk_index] = attempts.get(chunk_index, 0) + 1
                min(free, key=lambda w: len(w.assigned)).dispatch(item)

        def handle_dead_workers() -> None:
            nonlocal pending_error
            for worker in [w for w in pool.workers.values() if w.is_dead()]:
                orphaned = list(worker.assigned)
                worker.assigned.clear()
                replacement = pool.replace(worker)
                for item in orphaned:
                    if item.chunk in completed:
                        continue
                    attempts[item.chunk] = attempts.get(item.chunk, 0) + 1
                    if attempts[item.chunk] > MAX_ATTEMPTS:
                        pending_error = StreamWorkerCrash(
                            f"chunk {item.chunk} killed its worker "
                            f"{MAX_ATTEMPTS} times; giving up"
                        )
                        return
                    self.stats.redispatched += 1
                    refault = None
                    if (
                        self.fault is not None
                        and not self.fault.once
                        and self.fault.chunk == item.chunk
                    ):
                        refault = self.fault.kind
                    replacement.dispatch(
                        ChunkTask(
                            cell=item.cell,
                            chunk=item.chunk,
                            spec=item.spec,
                            fault=refault,
                        )
                    )

        try:
            top_up()
            while inflight or not exhausted:
                # Interrupt checkpoint: raising here lands in the
                # BaseException handler below, which drains the pool's
                # in-flight chunks before the caller discards segments.
                self.engine._checkpoint()
                if pending_error is not None:
                    raise pending_error
                if not inflight:
                    top_up()
                    if not inflight and exhausted:
                        break
                    continue
                try:
                    kind, pid, _cell, chunk, payload = pool.result_queue.get(
                        timeout=POLL_SECONDS
                    )
                except queue_module.Empty:
                    handle_dead_workers()
                    continue
                worker = pool.workers.get(pid)
                if worker is not None and worker.assigned:
                    # Per-worker results arrive in dispatch order.
                    if worker.assigned[0].chunk == chunk:
                        worker.assigned.popleft()
                if kind == "error":
                    raise StreamChunkError(f"chunk {chunk} failed: {payload}")
                if chunk in completed:
                    continue  # a re-dispatch raced a slow original
                answers, _seconds = payload
                completed.add(chunk)
                self.stats.worker_pids.add(pid)
                buffered[chunk] = answers
                while next_merge in buffered:
                    on_merged(
                        next_merge, inflight.pop(next_merge), buffered.pop(next_merge)
                    )
                    next_merge += 1
                top_up()
        except BaseException:
            self._drain(pool)
            raise

    def _drain(self, pool: StreamPool, timeout: float = 10.0) -> None:
        """Graceful shutdown of in-flight chunks after a failure.

        Live workers finish (and we discard) what they already pulled,
        so they end at a clean queue boundary; then every worker gets
        its poison pill and the pool is torn down.  The next cold cell
        starts a fresh pool.
        """
        deadline = time.monotonic() + timeout
        while any(w.assigned for w in pool.live_workers()):
            if time.monotonic() > deadline:
                break
            try:
                _kind, pid, _cell, chunk, _payload = pool.result_queue.get(
                    timeout=POLL_SECONDS
                )
            except queue_module.Empty:
                for worker in pool.workers.values():
                    if worker.is_dead():
                        worker.assigned.clear()
                continue
            worker = pool.workers.get(pid)
            if worker is not None and worker.assigned:
                if worker.assigned[0].chunk == chunk:
                    worker.assigned.popleft()
        pool.close()
        self._pool = None
