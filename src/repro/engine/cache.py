"""Content-addressed on-disk cache for evaluated cells and datasets.

Three namespaces under one cache root:

* ``cells/`` — each (model, task, workload) cell's answers, stored as
  JSON under a key that hashes everything the answers depend on: the
  generation seed, the model profile fingerprint, the task, the
  workload, ``max_instances``, the prompt template, and a cache format
  version;
* ``datasets/`` — each built :class:`TaskDataset`, pickled under a key
  hashing (task, workload, seed, max_instances).  Dataset construction
  (parsing, corruption injection, pair generation) dominates a cold
  grid run, so warm runs load instead of rebuilding.  Worker processes
  materialize shard instances from this namespace, which is what lets
  shard dispatch ship keys instead of pickled instance payloads;
* ``workloads/`` — each loaded :class:`Workload`, pickled under a key
  hashing (workload, seed), so workers that must *build* a dataset load
  the workload in milliseconds instead of regenerating it per process.

Change any input and the key changes, so stale entries are never served
— they are simply never looked up again.  Writes go through a
per-process temp file and an atomic rename, so a cache directory is safe
to share between concurrent processes.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.llm.backends.base import SIMULATED_SPEC, BackendSpec
from repro.llm.profiles import ModelProfile
from repro.prompts.templates import PromptTemplate, prompt_for
from repro.tasks.base import ModelAnswer, TaskDataset

#: Bump when the serialized answer format changes; old entries miss.
CACHE_VERSION = 1


class CacheSegmentError(Exception):
    """A segmented cache entry is unreadable or inconsistent mid-stream.

    Raised by the segment iterators (not the monolithic getters, which
    translate problems into misses) because a streamed read may already
    have handed out earlier segments when the problem surfaces; the
    streaming engine catches this and falls back to a clean recompute.
    """


@functools.lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """Hash of the whole ``repro`` package source, computed once.

    Folded into every cache key so that *code* changes — a tweaked
    penalty curve, a new corruption type — invalidate cached results
    just like input changes do.  Without this, a default-on cache would
    silently serve numbers produced by old code.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
    return digest.hexdigest()


def prompt_fingerprint(task: str, prompt: Optional[PromptTemplate]) -> str:
    """Stable hash of the prompt template a cell is evaluated with.

    ``None`` resolves to the task's tuned default first, so an explicit
    ``prompt=TUNED_PROMPTS[task]`` and the default share one cache entry.
    """
    template = prompt or prompt_for(task)
    payload = json.dumps(
        {
            "task": template.task,
            "name": template.name,
            "text": template.text,
            "quality": template.quality,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def rewrite_fingerprint(task: str, workload: str) -> str:
    """Rewrite-catalog fingerprint for a cell, "" for non-rewrite cells.

    Rewrite-task answers depend on the transform catalog (which families
    exist, what each one does) and on the workload's family restriction;
    folding the catalog fingerprint into the key gives rewrite cells an
    explicit provenance line instead of leaning on the whole-source
    hash alone — the same fingerprint lands in the RunRecord.
    """
    from repro.tasks.base import REWRITE_TASKS

    if task not in REWRITE_TASKS:
        return ""
    from repro.rewrite.catalog import catalog_fingerprint
    from repro.workloads.synthetic import rewrite_families_of

    try:
        families = rewrite_families_of(workload) or None
    except ValueError:
        families = None
    return catalog_fingerprint(families)


def cell_key(
    seed: int,
    profile: ModelProfile,
    task: str,
    workload: str,
    max_instances: Optional[int],
    prompt: Optional[PromptTemplate],
    backend: Optional[BackendSpec] = None,
    backend_state: str = "",
) -> str:
    """Content address of one evaluated cell.

    ``backend`` (None means the default in-process simulator) folds the
    backend identity — registry name plus every option, including the
    endpoint URL — into the key, so answers obtained from one backend
    can never be served to a run using another backend or another
    endpoint of the same backend.  ``backend_state`` additionally folds
    mutable external state feeding the backend's answers (the replay
    backend's fixture-content hash), so editing that state invalidates
    cells cached against the old responses.
    """
    spec = backend if backend is not None else SIMULATED_SPEC
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "source": source_fingerprint(),
            "seed": seed,
            "profile": profile.fingerprint(),
            "task": task,
            "workload": workload,
            "max_instances": max_instances,
            "prompt": prompt_fingerprint(task, prompt),
            "backend": spec.fingerprint(),
            "backend_state": backend_state,
            "rewrite_catalog": rewrite_fingerprint(task, workload),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def dataset_key(
    task: str, workload: str, seed: int, max_instances: Optional[int]
) -> str:
    """Content address of one built dataset (model/prompt independent)."""
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "kind": "dataset",
            "source": source_fingerprint(),
            "task": task,
            "workload": workload,
            "seed": seed,
            "max_instances": max_instances,
            "rewrite_catalog": rewrite_fingerprint(task, workload),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def workload_key(workload: str, seed: int) -> str:
    """Content address of one loaded workload (task independent).

    Workload construction costs a sizable fraction of a cold run and
    used to be repeated inside *every* worker process; pickling it once
    lets workers load in milliseconds instead.
    """
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "kind": "workload",
            "source": source_fingerprint(),
            "workload": workload,
            "seed": seed,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def answer_to_dict(answer: ModelAnswer) -> dict:
    return {
        "instance_id": answer.instance_id,
        "model": answer.model,
        "response_text": answer.response_text,
        "predicted": answer.predicted,
        "predicted_type": answer.predicted_type,
        "predicted_position": answer.predicted_position,
        "explanation": answer.explanation,
        "flaws": list(answer.flaws),
    }


def answer_from_dict(data: dict) -> ModelAnswer:
    return ModelAnswer(
        instance_id=data["instance_id"],
        model=data["model"],
        response_text=data["response_text"],
        predicted=data["predicted"],
        predicted_type=data["predicted_type"],
        predicted_position=data["predicted_position"],
        explanation=data.get("explanation", ""),
        flaws=tuple(data.get("flaws", ())),
    )


@dataclass
class CacheStats:
    """Hit/miss counters for one engine lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    dataset_hits: int = 0
    dataset_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "dataset_hits": self.dataset_hits,
            "dataset_misses": self.dataset_misses,
        }


@dataclass
class ResultCache:
    """On-disk cell + dataset cache rooted at ``root``."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def _path(self, key: str) -> Path:
        return self.root / "cells" / key[:2] / f"{key}.json"

    def _dataset_path(self, key: str) -> Path:
        return self.root / "datasets" / f"{key}.pkl"

    def _workload_path(self, key: str) -> Path:
        return self.root / "workloads" / f"{key}.pkl"

    def get(
        self, key: str, expected_ids: Optional[Sequence[str]] = None
    ) -> Optional[list[ModelAnswer]]:
        """Cached answers for ``key``, or None on miss.

        Unreadable or version-mismatched entries count as misses, as do
        entries whose answers do not align id-for-id with
        ``expected_ids`` — the cache is an optimisation, never a source
        of errors or misaligned metrics.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("version") != CACHE_VERSION:
                raise ValueError("cache version mismatch")
            answers = [answer_from_dict(item) for item in payload["answers"]]
        except (OSError, ValueError, KeyError, TypeError):
            # Warm-path reassembly: a cell written by a streaming run
            # lives as segments; materialised readers stitch them back.
            answers = self._reassemble_cell(key)
            if answers is None:
                self.stats.misses += 1
                return None
        if expected_ids is not None and [
            answer.instance_id for answer in answers
        ] != list(expected_ids):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return answers

    def _reassemble_cell(self, key: str) -> Optional[list[ModelAnswer]]:
        if self.get_cell_manifest(key) is None:
            return None
        answers: list[ModelAnswer] = []
        try:
            for segment in self.iter_cell_segments(key):
                answers.extend(segment)
        except CacheSegmentError:
            return None
        return answers

    def put(
        self, key: str, answers: list[ModelAnswer], meta: Optional[dict] = None
    ) -> Path:
        """Store a cell's answers atomically; returns the entry path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "meta": meta or {},
            "answers": [answer_to_dict(answer) for answer in answers],
        }
        temporary = path.with_suffix(f".tmp.{os.getpid()}")
        temporary.write_text(json.dumps(payload))
        temporary.replace(path)
        self.stats.writes += 1
        return path

    # -- datasets ----------------------------------------------------------

    def get_dataset(self, key: str) -> Optional[TaskDataset]:
        """Cached dataset for ``key``, or None (corrupt entries miss)."""
        path = self._dataset_path(key)
        try:
            with path.open("rb") as handle:
                dataset = pickle.load(handle)
            if not isinstance(dataset, TaskDataset):
                raise ValueError("not a TaskDataset")
        except (OSError, ValueError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError):
            # Warm-path reassembly from a streaming run's segments.
            dataset = self._reassemble_dataset(key)
            if dataset is None:
                self.stats.dataset_misses += 1
                return None
        self.stats.dataset_hits += 1
        return dataset

    def _reassemble_dataset(self, key: str) -> Optional[TaskDataset]:
        manifest = self.get_dataset_manifest(key)
        if manifest is None:
            return None
        meta = manifest.get("meta", {})
        task = meta.get("task")
        workload = meta.get("workload")
        if not task or not workload:
            return None
        dataset = TaskDataset(task=task, workload=workload)
        try:
            for segment in self.iter_dataset_segments(key):
                dataset.instances.extend(segment)
        except CacheSegmentError:
            return None
        return dataset

    def put_dataset(self, key: str, dataset: TaskDataset) -> Path:
        """Store a built dataset atomically; returns the entry path."""
        path = self._dataset_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_suffix(f".tmp.{os.getpid()}")
        with temporary.open("wb") as handle:
            pickle.dump(dataset, handle, protocol=pickle.HIGHEST_PROTOCOL)
        temporary.replace(path)
        return path

    # -- workloads ---------------------------------------------------------

    def get_workload(self, key: str):
        """Cached workload for ``key``, or None (corrupt entries miss)."""
        from repro.workloads.base import Workload

        path = self._workload_path(key)
        try:
            with path.open("rb") as handle:
                workload = pickle.load(handle)
            if not isinstance(workload, Workload):
                raise ValueError("not a Workload")
        except (OSError, ValueError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError):
            return None
        return workload

    def put_workload(self, key: str, workload) -> Path:
        """Store a loaded workload atomically; returns the entry path."""
        path = self._workload_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_suffix(f".tmp.{os.getpid()}")
        with temporary.open("wb") as handle:
            pickle.dump(workload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        temporary.replace(path)
        return path

    # -- segmented entries -------------------------------------------------
    #
    # Chunked storage for streaming runs: one directory per key holding
    # fixed-size segments plus a manifest.  The manifest is written LAST
    # (after every segment landed via temp+rename), so it doubles as the
    # commit record — a crash mid-run leaves segments without a
    # manifest, which readers treat as "entry absent".  No partial entry
    # is ever visible.

    def _dataset_segment_dir(self, key: str) -> Path:
        return self.root / "datasets" / key

    def _cell_segment_dir(self, key: str) -> Path:
        return self.root / "cells" / key[:2] / key

    @staticmethod
    def _segment_name(index: int, suffix: str) -> str:
        return f"seg-{index:05d}{suffix}"

    def _write_atomic_bytes(self, path: Path, data: bytes) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        temporary.write_bytes(data)
        temporary.replace(path)
        return path

    def _read_manifest(self, directory: Path, kind: str) -> Optional[dict]:
        try:
            manifest = json.loads((directory / "manifest.json").read_text())
            if manifest.get("version") != CACHE_VERSION:
                raise ValueError("segment manifest version mismatch")
            if manifest.get("kind") != kind:
                raise ValueError("segment manifest kind mismatch")
            counts = manifest["counts"]
            if not isinstance(counts, list) or manifest["total"] != sum(counts):
                raise ValueError("segment manifest counts inconsistent")
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return manifest

    def _commit_manifest(
        self,
        directory: Path,
        kind: str,
        chunk_size: int,
        counts: Sequence[int],
        meta: Optional[dict],
    ) -> Path:
        manifest = {
            "version": CACHE_VERSION,
            "kind": kind,
            "chunk_size": chunk_size,
            "counts": list(counts),
            "total": sum(counts),
            "meta": meta or {},
        }
        return self._write_atomic_bytes(
            directory / "manifest.json", json.dumps(manifest).encode("utf-8")
        )

    def put_dataset_segment(self, key: str, index: int, instances: list) -> Path:
        """Store one dataset segment (a list of TaskInstance) atomically."""
        path = self._dataset_segment_dir(key) / self._segment_name(index, ".pkl")
        return self._write_atomic_bytes(
            path, pickle.dumps(instances, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def commit_dataset_segments(
        self,
        key: str,
        chunk_size: int,
        counts: Sequence[int],
        meta: Optional[dict] = None,
    ) -> Path:
        """Write the dataset manifest — the commit point for the entry."""
        return self._commit_manifest(
            self._dataset_segment_dir(key),
            "dataset-segments",
            chunk_size,
            counts,
            meta,
        )

    def get_dataset_manifest(self, key: str) -> Optional[dict]:
        """The committed dataset-segment manifest, or None."""
        return self._read_manifest(
            self._dataset_segment_dir(key), "dataset-segments"
        )

    def iter_dataset_segments(self, key: str):
        """Yield committed dataset segments in order.

        Raises :class:`CacheSegmentError` when a segment is missing,
        truncated, or the wrong length — callers recompute from scratch.
        """
        manifest = self.get_dataset_manifest(key)
        if manifest is None:
            raise CacheSegmentError(f"no committed dataset segments for {key}")
        directory = self._dataset_segment_dir(key)
        for index, count in enumerate(manifest["counts"]):
            path = directory / self._segment_name(index, ".pkl")
            try:
                with path.open("rb") as handle:
                    instances = pickle.load(handle)
                if not isinstance(instances, list) or len(instances) != count:
                    raise ValueError("segment length mismatch")
            except (OSError, ValueError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError, IndexError) as error:
                raise CacheSegmentError(
                    f"dataset segment {index} of {key} unreadable: {error}"
                ) from error
            yield instances

    def put_cell_segment(
        self, key: str, index: int, answers: list[ModelAnswer]
    ) -> Path:
        """Store one cell segment (a list of answers) atomically."""
        path = self._cell_segment_dir(key) / self._segment_name(index, ".json")
        payload = json.dumps([answer_to_dict(answer) for answer in answers])
        return self._write_atomic_bytes(path, payload.encode("utf-8"))

    def commit_cell_segments(
        self,
        key: str,
        chunk_size: int,
        counts: Sequence[int],
        meta: Optional[dict] = None,
    ) -> Path:
        """Write the cell manifest — the commit point for the entry."""
        self.stats.writes += 1
        return self._commit_manifest(
            self._cell_segment_dir(key), "cell-segments", chunk_size, counts, meta
        )

    def get_cell_manifest(self, key: str) -> Optional[dict]:
        """The committed cell-segment manifest, or None."""
        return self._read_manifest(self._cell_segment_dir(key), "cell-segments")

    def iter_cell_segments(self, key: str):
        """Yield committed cell answer segments in order.

        Raises :class:`CacheSegmentError` when a segment is missing,
        truncated, or the wrong length — callers recompute from scratch.
        """
        manifest = self.get_cell_manifest(key)
        if manifest is None:
            raise CacheSegmentError(f"no committed cell segments for {key}")
        directory = self._cell_segment_dir(key)
        for index, count in enumerate(manifest["counts"]):
            path = directory / self._segment_name(index, ".json")
            try:
                items = json.loads(path.read_text())
                answers = [answer_from_dict(item) for item in items]
                if len(answers) != count:
                    raise ValueError("segment length mismatch")
            except (OSError, ValueError, KeyError, TypeError) as error:
                raise CacheSegmentError(
                    f"cell segment {index} of {key} unreadable: {error}"
                ) from error
            yield answers

    def discard_segments(self, key: str) -> None:
        """Drop any (possibly uncommitted) segment files for ``key``.

        Used by failed streamed cells so orphaned segments don't linger;
        removing the manifest first keeps the entry invisible throughout.
        """
        for directory in (
            self._cell_segment_dir(key),
            self._dataset_segment_dir(key),
        ):
            if not directory.is_dir():
                continue
            (directory / "manifest.json").unlink(missing_ok=True)
            for path in sorted(directory.glob("seg-*")):
                path.unlink(missing_ok=True)
            try:
                directory.rmdir()
            except OSError:
                pass

    # -- maintenance -------------------------------------------------------

    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("cells/*/*.json"))

    def dataset_entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("datasets/*.pkl"))

    def workload_entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("workloads/*.pkl"))

    def segment_entries(self) -> list[Path]:
        """Every segment file and manifest across both namespaces."""
        if not self.root.is_dir():
            return []
        return sorted(
            [
                *self.root.glob("datasets/*/seg-*.pkl"),
                *self.root.glob("datasets/*/manifest.json"),
                *self.root.glob("cells/*/*/seg-*.json"),
                *self.root.glob("cells/*/*/manifest.json"),
            ]
        )

    def size_bytes(self) -> int:
        return sum(
            path.stat().st_size
            for path in (
                *self.entries(),
                *self.dataset_entries(),
                *self.workload_entries(),
                *self.segment_entries(),
            )
        )

    def clear(self) -> int:
        """Delete every cell and dataset entry; returns how many.

        Also sweeps ``*.tmp.*`` files orphaned by interrupted atomic
        writes (they are invisible to ``entries()`` and would otherwise
        accumulate forever).
        """
        removed = 0
        for path in (
            *self.entries(),
            *self.dataset_entries(),
            *self.workload_entries(),
            *self.segment_entries(),
        ):
            path.unlink(missing_ok=True)
            removed += 1
        for orphan in self.root.glob("**/*.tmp.*"):
            if orphan.is_file():
                orphan.unlink(missing_ok=True)
        for bucket in sorted(self.root.glob("**/*"), reverse=True):
            if bucket.is_dir() and not any(bucket.iterdir()):
                bucket.rmdir()
        return removed
