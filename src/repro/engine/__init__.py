"""Parallel, sharded, cache-backed experiment engine.

Public surface:

* :class:`ExperimentEngine` / :class:`EngineConfig` — evaluate grid
  cells across a process pool (or deterministically in-process at
  ``workers=1``), with identical outputs either way;
* :class:`ResultCache` and :func:`cell_key` / :func:`dataset_key` /
  :func:`workload_key` — the content-addressed on-disk cache for cells,
  datasets and workloads;
* :func:`plan_shards` / :func:`merge_shards` — the deterministic shard
  plan shared by both execution paths;
* :class:`ShardSpec` — the zero-copy shard unit workers evaluate:
  a dataset cache key plus a ``[start, stop)`` range (instances travel
  inline only when no cache directory is configured).
"""

from repro.engine.cache import (
    CACHE_VERSION,
    CacheStats,
    ResultCache,
    answer_from_dict,
    answer_to_dict,
    cell_key,
    dataset_key,
    prompt_fingerprint,
    workload_key,
)
from repro.engine.core import EngineConfig, ExperimentEngine
from repro.engine.sharding import (
    DEFAULT_SHARD_SIZE,
    Shard,
    merge_shards,
    plan_shards,
)
from repro.engine.worker import (
    ShardSpec,
    build_dataset_remote,
    evaluate_shard,
    reset_worker_caches,
)

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "DEFAULT_SHARD_SIZE",
    "EngineConfig",
    "ExperimentEngine",
    "ResultCache",
    "Shard",
    "ShardSpec",
    "answer_from_dict",
    "answer_to_dict",
    "build_dataset_remote",
    "cell_key",
    "dataset_key",
    "evaluate_shard",
    "merge_shards",
    "plan_shards",
    "prompt_fingerprint",
    "reset_worker_caches",
    "workload_key",
]
