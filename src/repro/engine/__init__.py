"""Parallel, sharded, cache-backed experiment engine.

Public surface:

* :class:`ExperimentEngine` / :class:`EngineConfig` — evaluate grid
  cells across a process pool (or deterministically in-process at
  ``workers=1``), with identical outputs either way;
* :class:`ResultCache` and :func:`cell_key` — the content-addressed
  on-disk cell cache;
* :func:`plan_shards` / :func:`merge_shards` — the deterministic shard
  plan shared by both execution paths.
"""

from repro.engine.cache import (
    CACHE_VERSION,
    CacheStats,
    ResultCache,
    answer_from_dict,
    answer_to_dict,
    cell_key,
    dataset_key,
    prompt_fingerprint,
)
from repro.engine.core import EngineConfig, ExperimentEngine
from repro.engine.sharding import (
    DEFAULT_SHARD_SIZE,
    Shard,
    merge_shards,
    plan_shards,
)
from repro.engine.worker import (
    ShardTask,
    build_dataset_remote,
    evaluate_shard,
    reset_worker_caches,
)

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "DEFAULT_SHARD_SIZE",
    "EngineConfig",
    "ExperimentEngine",
    "ResultCache",
    "Shard",
    "ShardTask",
    "answer_from_dict",
    "answer_to_dict",
    "build_dataset_remote",
    "cell_key",
    "dataset_key",
    "evaluate_shard",
    "merge_shards",
    "plan_shards",
    "prompt_fingerprint",
    "reset_worker_caches",
]
