"""Task layer: dataset builders and model-interaction functions."""

from repro.tasks.base import (
    MISS_TOKEN,
    PERFORMANCE_PRED,
    PRIMARY_TASKS,
    QUERY_EQUIV,
    QUERY_EXP,
    REWRITE_EQUIVALENCE,
    REWRITE_SPEEDUP,
    REWRITE_TASKS,
    SECONDARY_TASKS,
    SYNTAX_ERROR,
    ModelAnswer,
    TaskDataset,
    TaskInstance,
)
from repro.tasks.equivalence import ask_query_equiv, build_query_equiv_dataset
from repro.tasks.explanation import (
    ask_query_exp,
    build_query_exp_dataset,
    explanation_overlap_f1,
)
from repro.tasks.miss_token import ask_miss_token, build_miss_token_dataset
from repro.tasks.performance import ask_performance_pred, build_performance_dataset
from repro.tasks.registry import TASK_WORKLOADS, ask, build_dataset
from repro.tasks.rewrite import (
    ask_rewrite_equivalence,
    ask_rewrite_speedup,
    build_rewrite_equivalence_dataset,
    build_rewrite_speedup_dataset,
)
from repro.tasks.skills import SKILL_TASK_MAP, render_skill_table, skill_marks
from repro.tasks.syntax_error import ask_syntax_error, build_syntax_error_dataset

__all__ = [
    "TaskInstance",
    "TaskDataset",
    "ModelAnswer",
    "PRIMARY_TASKS",
    "SECONDARY_TASKS",
    "SYNTAX_ERROR",
    "MISS_TOKEN",
    "QUERY_EQUIV",
    "PERFORMANCE_PRED",
    "QUERY_EXP",
    "REWRITE_EQUIVALENCE",
    "REWRITE_SPEEDUP",
    "REWRITE_TASKS",
    "TASK_WORKLOADS",
    "build_dataset",
    "ask",
    "build_syntax_error_dataset",
    "ask_syntax_error",
    "build_miss_token_dataset",
    "ask_miss_token",
    "build_query_equiv_dataset",
    "ask_query_equiv",
    "build_performance_dataset",
    "ask_performance_pred",
    "build_query_exp_dataset",
    "ask_query_exp",
    "build_rewrite_equivalence_dataset",
    "ask_rewrite_equivalence",
    "build_rewrite_speedup_dataset",
    "ask_rewrite_speedup",
    "explanation_overlap_f1",
    "SKILL_TASK_MAP",
    "skill_marks",
    "render_skill_table",
]
