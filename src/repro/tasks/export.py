"""Benchmark dataset export.

The paper releases its task-driven labeled datasets publicly (section 1,
"Our SQL task-driven data benchmark is publicly available").  This module
serialises any :class:`~repro.tasks.base.TaskDataset` to JSON so the
reproduction's datasets can be shipped, diffed, and reloaded without
rerunning generation.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable

from repro.sql.properties import QueryProperties
from repro.tasks.base import TaskDataset, TaskInstance

#: Format version written into every export for forward compatibility.
EXPORT_VERSION = 1


def dataset_to_dict(dataset: TaskDataset) -> dict:
    """A JSON-serialisable view of a dataset."""
    return {
        "version": EXPORT_VERSION,
        "task": dataset.task,
        "workload": dataset.workload,
        "size": len(dataset),
        "instances": [_instance_to_dict(instance) for instance in dataset],
    }


def _instance_to_dict(instance: TaskInstance) -> dict:
    record = {
        "instance_id": instance.instance_id,
        "task": instance.task,
        "workload": instance.workload,
        "schema_name": instance.schema_name,
        "payload": dict(instance.payload),
        "label": instance.label,
        "label_type": instance.label_type,
        "position": instance.position,
        "removed_token": instance.removed_token,
        "gold_text": instance.gold_text,
        "source_query_id": instance.source_query_id,
        "detail": instance.detail,
        "properties": asdict(instance.props),
    }
    return record


def dataset_from_dict(payload: dict) -> TaskDataset:
    """Reload a dataset exported by :func:`dataset_to_dict`."""
    if payload.get("version") != EXPORT_VERSION:
        raise ValueError(
            f"unsupported export version {payload.get('version')!r}"
        )
    dataset = TaskDataset(task=payload["task"], workload=payload["workload"])
    for record in payload["instances"]:
        properties = QueryProperties(**record.pop("properties"))
        dataset.instances.append(
            TaskInstance(
                instance_id=record["instance_id"],
                task=record["task"],
                workload=record["workload"],
                schema_name=record["schema_name"],
                payload=dict(record["payload"]),
                label=record["label"],
                label_type=record["label_type"],
                position=record["position"],
                removed_token=record["removed_token"],
                gold_text=record["gold_text"],
                source_query_id=record["source_query_id"],
                detail=record["detail"],
                props=properties,
            )
        )
    return dataset


def export_dataset(dataset: TaskDataset, path: Path) -> Path:
    """Write one dataset to ``path`` (JSON, UTF-8, stable key order)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(dataset_to_dict(dataset), indent=1, sort_keys=True)
    )
    return path


def load_dataset(path: Path) -> TaskDataset:
    """Reload a dataset written by :func:`export_dataset`."""
    return dataset_from_dict(json.loads(path.read_text()))


def export_benchmark(
    out_dir: Path,
    seed: int = 0,
    tasks: Iterable[str] | None = None,
) -> list[Path]:
    """Export the full labeled benchmark (all tasks x their workloads)."""
    from repro.tasks.registry import TASK_WORKLOADS, build_dataset
    from repro.workloads import load_workload

    written: list[Path] = []
    workload_cache: dict[str, object] = {}
    for task, workload_names in TASK_WORKLOADS.items():
        if tasks is not None and task not in tasks:
            continue
        for name in workload_names:
            if name not in workload_cache:
                workload_cache[name] = load_workload(name, seed)
            dataset = build_dataset(task, workload_cache[name], seed=seed)
            written.append(
                export_dataset(dataset, out_dir / f"{task}__{name}.json")
            )
    return written
