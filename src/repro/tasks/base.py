"""Task data model.

A :class:`TaskInstance` is one labeled example of one SQL task; a
:class:`TaskDataset` is the labeled set for one (task, workload) cell of
the paper's evaluation grid.  :class:`ModelAnswer` is what the pipeline
extracts from a model's verbose response — predictions only ever come
from parsing the response *text*, never from simulation metadata, so the
full prompt → response → post-processing path of section 3.4 is always
exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sql.properties import QueryProperties

SYNTAX_ERROR = "syntax_error"
MISS_TOKEN = "miss_token"
QUERY_EQUIV = "query_equiv"
PERFORMANCE_PRED = "performance_pred"
QUERY_EXP = "query_exp"

PRIMARY_TASKS: tuple[str, ...] = (
    SYNTAX_ERROR,
    MISS_TOKEN,
    QUERY_EQUIV,
    PERFORMANCE_PRED,
    QUERY_EXP,
)

#: Secondary (derived) tasks of section 3.1.2: same datasets, different
#: extraction/metric.
SECONDARY_TASKS: tuple[str, ...] = (
    "syntax_error_type",
    "miss_token_type",
    "miss_token_loc",
    "query_equiv_type",
)

#: Rewrite tasks (extension): judged only on ``synthetic:rewrite``
#: workloads, whose pairs come from the semantics-preserving rewrite
#: catalog (:mod:`repro.rewrite`) instead of the paper's equivalence
#: transforms.  Kept out of ``PRIMARY_TASKS`` so the paper grid is
#: unchanged.
REWRITE_EQUIVALENCE = "rewrite_equivalence"
REWRITE_SPEEDUP = "rewrite_speedup"

REWRITE_TASKS: tuple[str, ...] = (
    REWRITE_EQUIVALENCE,
    REWRITE_SPEEDUP,
)


@dataclass
class TaskInstance:
    """One labeled example."""

    instance_id: str
    task: str
    workload: str
    schema_name: str
    payload: dict[str, str]
    label: Optional[bool] = None
    label_type: Optional[str] = None
    position: Optional[int] = None
    removed_token: Optional[str] = None
    gold_text: str = ""
    source_query_id: str = ""
    props: QueryProperties = field(default_factory=QueryProperties)
    detail: str = ""

    @property
    def is_positive(self) -> bool:
        return bool(self.label)


@dataclass
class TaskDataset:
    """All instances for one (task, workload) cell."""

    task: str
    workload: str
    instances: list[TaskInstance] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self):
        return iter(self.instances)

    @property
    def positives(self) -> list[TaskInstance]:
        return [i for i in self.instances if i.is_positive]

    @property
    def negatives(self) -> list[TaskInstance]:
        return [i for i in self.instances if not i.is_positive]

    def types_present(self) -> list[str]:
        return sorted(
            {i.label_type for i in self.instances if i.label_type is not None}
        )

    def instance_ids(self) -> list[str]:
        """Instance ids in evaluation order.

        The engine aligns cached answers against these: a cached cell is
        only served when its answers match the dataset id-for-id, so a
        stale or corrupted entry can never be silently zipped against
        the wrong instances.
        """
        return [instance.instance_id for instance in self.instances]


@dataclass
class ModelAnswer:
    """Labels extracted from one model response."""

    instance_id: str
    model: str
    response_text: str
    predicted: Optional[bool] = None
    predicted_type: Optional[str] = None
    predicted_position: Optional[int] = None
    explanation: str = ""
    flaws: tuple[str, ...] = ()
