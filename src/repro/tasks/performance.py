"""performance_pred task (sections 3.1-3.2, 4.3).

Only SDSS carries runtime ground truth; queries above 200 ms form the
positive (costly) class.
"""

from __future__ import annotations

from typing import Optional

from repro.llm.simulated import SimulatedLLM
from repro.parsing import extract_yes_no
from repro.perf.cost_model import is_high_cost
from repro.prompts.templates import PERFORMANCE_PRED as PROMPT_KEY
from repro.prompts.templates import PromptTemplate, prompt_for
from repro.tasks.base import (
    PERFORMANCE_PRED,
    ModelAnswer,
    TaskDataset,
    TaskInstance,
)
from repro.workloads.base import Workload


def iter_performance_instances(source):
    """Yield performance_pred instances lazily, one per logged query.

    ``source`` is a :class:`Workload` or ``WorkloadStream``; both the
    materialised builder and the streaming engine consume this
    generator, so their instances are identical by construction.
    """
    for query in source:
        if query.elapsed_ms is None:
            continue
        yield TaskInstance(
            instance_id=f"{query.query_id}-perf",
            task=PERFORMANCE_PRED,
            workload=source.name,
            schema_name=query.schema_name,
            payload={"query": query.text},
            label=is_high_cost(query.elapsed_ms),
            source_query_id=query.query_id,
            props=query.properties,
            detail=f"elapsed_ms={query.elapsed_ms}",
        )


def build_performance_dataset(workload: Workload) -> TaskDataset:
    """Label every logged query as costly (>200 ms) or cheap."""
    dataset = TaskDataset(task=PERFORMANCE_PRED, workload=workload.name)
    dataset.instances.extend(iter_performance_instances(workload))
    return dataset


def parse_performance_pred_response(
    instance: TaskInstance, text: str, model_name: str
) -> ModelAnswer:
    """Extract the costly/cheap judgement from one response text."""
    return ModelAnswer(
        instance_id=instance.instance_id,
        model=model_name,
        response_text=text,
        predicted=extract_yes_no(text),
    )


def ask_performance_pred(
    model: SimulatedLLM,
    instance: TaskInstance,
    prompt: Optional[PromptTemplate] = None,
) -> ModelAnswer:
    """Prompt the model and extract its costly/cheap judgement."""
    template = prompt or prompt_for(PROMPT_KEY)
    response = model.answer_performance(
        instance.instance_id,
        instance.payload["query"],
        instance.props,
        truth_costly=bool(instance.label),
        prompt_quality=template.quality,
    )
    return parse_performance_pred_response(instance, response.text, model.name)
