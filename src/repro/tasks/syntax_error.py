"""syntax_error and syntax_error_type tasks (sections 3.1.1, 3.2, 4.1)."""

from __future__ import annotations

from typing import Optional

from repro.corrupt.structural import STRUCTURAL_TYPES, inject_structural_error
from repro.corrupt.syntax_errors import ERROR_TYPES, inject_syntax_error
from repro.llm.simulated import SimulatedLLM
from repro.parsing import extract_label, extract_yes_no
from repro.prompts.templates import SYNTAX_ERROR as PROMPT_KEY
from repro.prompts.templates import PromptTemplate, prompt_for
from repro.tasks.base import SYNTAX_ERROR, ModelAnswer, TaskDataset, TaskInstance
from repro.util import derive_rng
from repro.workloads.base import Workload

#: Share of instances left uncorrupted ("error-free" class, section 3.2).
ERROR_FREE_FRACTION = 0.3

#: Per-workload injection weights: SQLShare's many small schemas make
#: alias errors endemic (Figure 7b shows them dominating FNs there).
TYPE_WEIGHTS: dict[str, dict[str, float]] = {
    "sqlshare": {"alias-ambiguous": 3.0, "alias-undefined": 1.5},
}

#: Share of *corrupted* synthetic instances carrying a structural error
#: (clause-order / dangling-alias / paren-imbalance) instead of one of
#: the paper's six semantic types.  The paper workloads keep their exact
#: historical generation — structural corruption only applies where
#: AST-level generation guarantees clean inputs (the synthetic family).
STRUCTURAL_FRACTION = 0.3

#: Every error-type label a response may carry (semantic + structural).
ALL_ERROR_TYPES: tuple[str, ...] = ERROR_TYPES + STRUCTURAL_TYPES


def iter_syntax_error_instances(source, seed: int = 0):
    """Yield syntax_error instances lazily, one per parseable query.

    ``source`` is a :class:`Workload` or
    :class:`~repro.workloads.streaming.WorkloadStream` — anything with
    ``name``, ``schema_for`` and query iteration.  Both the materialised
    builder and the streaming engine consume this generator, so their
    instances are identical by construction.
    """
    from repro.workloads.synthetic import is_synthetic

    structural_eligible = is_synthetic(source.name)
    for query in source:
        statement = query.statement
        if statement is None:
            continue
        rng = derive_rng("syntax-error-dataset", seed, query.query_id)
        make_error = rng.random() >= ERROR_FREE_FRACTION
        corruption = None
        if make_error:
            if structural_eligible and rng.random() < STRUCTURAL_FRACTION:
                corruption = inject_structural_error(statement, rng)
            if corruption is None:
                corruption = inject_syntax_error(
                    statement,
                    source.schema_for(query),
                    rng,
                    type_weights=TYPE_WEIGHTS.get(source.name),
                )
        if corruption is not None:
            yield TaskInstance(
                instance_id=f"{query.query_id}-syn",
                task=SYNTAX_ERROR,
                workload=source.name,
                schema_name=query.schema_name,
                payload={"query": corruption.text},
                label=True,
                label_type=corruption.error_type,
                source_query_id=query.query_id,
                props=query.properties,
                detail=corruption.detail,
            )
        else:
            yield TaskInstance(
                instance_id=f"{query.query_id}-syn",
                task=SYNTAX_ERROR,
                workload=source.name,
                schema_name=query.schema_name,
                payload={"query": query.text},
                label=False,
                label_type=None,
                source_query_id=query.query_id,
                props=query.properties,
            )


def build_syntax_error_dataset(workload: Workload, seed: int = 0) -> TaskDataset:
    """Inject errors into a random ~70% of queries; leave the rest clean.

    The error type for each corrupted query is drawn uniformly from the
    types applicable to that query, mirroring the paper's generation.
    Synthetic workloads additionally devote ``STRUCTURAL_FRACTION`` of
    their corrupted instances to the structural error classes.
    """
    dataset = TaskDataset(task=SYNTAX_ERROR, workload=workload.name)
    dataset.instances.extend(iter_syntax_error_instances(workload, seed))
    return dataset


def parse_syntax_error_response(
    instance: TaskInstance, text: str, model_name: str
) -> ModelAnswer:
    """Extract the syntax_error labels from one verbose response text.

    Shared by every backend: predictions only ever come from parsing
    the response text, never from transport metadata.
    """
    return ModelAnswer(
        instance_id=instance.instance_id,
        model=model_name,
        response_text=text,
        predicted=extract_yes_no(text),
        predicted_type=extract_label(text, ALL_ERROR_TYPES),
    )


def ask_syntax_error(
    model: SimulatedLLM,
    instance: TaskInstance,
    prompt: Optional[PromptTemplate] = None,
) -> ModelAnswer:
    """Prompt the model and post-process its verbose response."""
    template = prompt or prompt_for(PROMPT_KEY)
    response = model.answer_syntax_error(
        instance.instance_id,
        instance.payload["query"],
        instance.workload,
        instance.props,
        truth_has_error=bool(instance.label),
        truth_error_type=instance.label_type,
        prompt_quality=template.quality,
    )
    return parse_syntax_error_response(instance, response.text, model.name)
