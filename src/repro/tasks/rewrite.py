"""rewrite_equivalence and rewrite_speedup tasks (rewrite extension).

Both tasks consume the labeled pair stream of
:func:`repro.rewrite.pairs.iter_rewrite_pairs`:

* ``rewrite_equivalence`` shows the model an original query and a
  candidate rewrite and asks whether the rewrite preserves semantics.
  Positives are multi-step catalog chains (hard positives); negatives
  are counter-transform lookalikes.  ``label_type`` carries the
  "+"-joined family chain for positives and the counter-transform type
  for negatives, which is what the per-family report sections group by.
* ``rewrite_speedup`` takes only the *equivalent* pairs and asks whether
  the rewritten form is cheaper.  Ground truth comes from the analytical
  cost model (:func:`repro.perf.cost_model.base_cost_ms`) evaluated on
  both sides' extracted properties — deterministic, so labels never
  depend on simulation noise.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.llm.simulated import SimulatedLLM
from repro.parsing import extract_equivalence, extract_label, extract_yes_no
from repro.perf.cost_model import base_cost_ms
from repro.prompts.templates import (
    REWRITE_EQUIVALENCE as EQUIV_PROMPT_KEY,
)
from repro.prompts.templates import (
    REWRITE_SPEEDUP as SPEEDUP_PROMPT_KEY,
)
from repro.prompts.templates import PromptTemplate, prompt_for
from repro.rewrite.pairs import iter_rewrite_pairs
from repro.sql.properties import extract_properties
from repro.tasks.base import (
    REWRITE_EQUIVALENCE,
    REWRITE_SPEEDUP,
    ModelAnswer,
    TaskDataset,
    TaskInstance,
)
from repro.workloads.base import Workload


def _workload_families(source) -> Optional[tuple[str, ...]]:
    """The family restriction baked into a workload spec (None = all)."""
    from repro.workloads.synthetic import rewrite_families_of

    families = rewrite_families_of(source.name)
    return families or None


# -- rewrite_equivalence ----------------------------------------------------


def iter_rewrite_equivalence_instances(
    source,
    seed: int = 0,
    max_pairs: Optional[int] = None,
    verify: bool = True,
) -> Iterator[TaskInstance]:
    """Yield rewrite_equivalence instances lazily from the pair stream.

    ``source`` is a :class:`Workload` or ``WorkloadStream``; both the
    materialised builder and the streaming engine consume this
    generator, so their instances are identical by construction.
    """
    for pair in iter_rewrite_pairs(
        source,
        seed=seed,
        max_pairs=max_pairs,
        verify=verify,
        families=_workload_families(source),
    ):
        props = extract_properties(pair.first_text)
        yield TaskInstance(
            instance_id=pair.pair_id,
            task=REWRITE_EQUIVALENCE,
            workload=source.name,
            schema_name=pair.schema_name,
            payload={"query_1": pair.first_text, "query_2": pair.second_text},
            label=pair.equivalent,
            label_type=pair.pair_type,
            source_query_id=pair.source_query_id,
            props=props,
            detail=pair.detail,
        )


def build_rewrite_equivalence_dataset(
    workload: Workload,
    seed: int = 0,
    max_pairs: Optional[int] = None,
    verify: bool = True,
) -> TaskDataset:
    """Build the labeled rewrite-pair dataset via verified chains."""
    dataset = TaskDataset(task=REWRITE_EQUIVALENCE, workload=workload.name)
    dataset.instances.extend(
        iter_rewrite_equivalence_instances(
            workload, seed=seed, max_pairs=max_pairs, verify=verify
        )
    )
    return dataset


def parse_rewrite_equivalence_response(
    instance: TaskInstance, text: str, model_name: str
) -> ModelAnswer:
    """Extract the equivalence verdict (and any named rewrite) from text."""
    return ModelAnswer(
        instance_id=instance.instance_id,
        model=model_name,
        response_text=text,
        predicted=extract_equivalence(text),
        predicted_type=_extract_pair_type(instance, text),
    )


def _extract_pair_type(instance: TaskInstance, text: str) -> Optional[str]:
    """Match the response against the instance's own label vocabulary.

    Chain labels are open-ended ("or-in+const-fold"), so unlike
    query_equiv there is no closed pool to scan for; the secondary
    signal worth extracting is whether the model named *this* pair's
    label.
    """
    if instance.label_type is None:
        return None
    return extract_label(text, (instance.label_type,))


def ask_rewrite_equivalence(
    model: SimulatedLLM,
    instance: TaskInstance,
    prompt: Optional[PromptTemplate] = None,
) -> ModelAnswer:
    """Prompt the model with both queries and post-process the response."""
    template = prompt or prompt_for(EQUIV_PROMPT_KEY)
    response = model.answer_equivalence(
        instance.instance_id,
        instance.payload["query_1"],
        instance.payload["query_2"],
        instance.workload,
        instance.props,
        truth_equivalent=bool(instance.label),
        truth_pair_type=instance.label_type,
        prompt_quality=template.quality,
    )
    return parse_rewrite_equivalence_response(instance, response.text, model.name)


# -- rewrite_speedup --------------------------------------------------------


def iter_rewrite_speedup_instances(
    source,
    seed: int = 0,
    max_instances: Optional[int] = None,
    verify: bool = True,
) -> Iterator[TaskInstance]:
    """Yield rewrite_speedup instances from the *equivalent* pairs only.

    Labels compare the analytical base cost of both sides; the cap
    counts emitted instances (roughly half the pair stream carries a
    positive equivalence label and so survives the filter).
    """
    produced = 0
    for pair in iter_rewrite_pairs(
        source,
        seed=seed,
        verify=verify,
        families=_workload_families(source),
    ):
        if max_instances is not None and produced >= max_instances:
            break
        if not pair.equivalent:
            continue
        props_first = extract_properties(pair.first_text)
        props_second = extract_properties(pair.second_text)
        cost_first = base_cost_ms(props_first)
        cost_second = base_cost_ms(props_second)
        yield TaskInstance(
            instance_id=f"{pair.pair_id}-speed",
            task=REWRITE_SPEEDUP,
            workload=source.name,
            schema_name=pair.schema_name,
            payload={"query_1": pair.first_text, "query_2": pair.second_text},
            label=cost_second < cost_first,
            # No label_type: the model is never asked to name the
            # transform, so typed.* metrics would be vacuously zero.
            # The family chain rides in ``detail`` for the per-family
            # report sections instead.
            source_query_id=pair.source_query_id,
            props=props_first,
            detail=(
                f"families={pair.pair_type} "
                f"cost_original={cost_first:.2f}ms "
                f"cost_rewritten={cost_second:.2f}ms"
            ),
        )
        produced += 1


def build_rewrite_speedup_dataset(
    workload: Workload,
    seed: int = 0,
    max_instances: Optional[int] = None,
    verify: bool = True,
) -> TaskDataset:
    """Label each equivalent rewrite chain as a speedup or not."""
    dataset = TaskDataset(task=REWRITE_SPEEDUP, workload=workload.name)
    dataset.instances.extend(
        iter_rewrite_speedup_instances(
            workload, seed=seed, max_instances=max_instances, verify=verify
        )
    )
    return dataset


def parse_rewrite_speedup_response(
    instance: TaskInstance, text: str, model_name: str
) -> ModelAnswer:
    """Extract the faster/not-faster judgement from one response text."""
    return ModelAnswer(
        instance_id=instance.instance_id,
        model=model_name,
        response_text=text,
        predicted=extract_yes_no(text),
    )


def ask_rewrite_speedup(
    model: SimulatedLLM,
    instance: TaskInstance,
    prompt: Optional[PromptTemplate] = None,
) -> ModelAnswer:
    """Prompt the model and extract its speedup judgement."""
    template = prompt or prompt_for(SPEEDUP_PROMPT_KEY)
    response = model.answer_speedup(
        instance.instance_id,
        instance.payload["query_1"],
        instance.payload["query_2"],
        instance.props,
        truth_faster=bool(instance.label),
        prompt_quality=template.quality,
    )
    return parse_rewrite_speedup_response(instance, response.text, model.name)
