"""miss_token, miss_token_type and miss_token_loc tasks (sections 3.1-3.2, 4.2)."""

from __future__ import annotations

from typing import Optional

from repro.corrupt.missing_tokens import TOKEN_TYPES, remove_token
from repro.llm.simulated import SimulatedLLM
from repro.parsing import extract_label, extract_position, extract_yes_no
from repro.prompts.templates import MISS_TOKEN as PROMPT_KEY
from repro.prompts.templates import PromptTemplate, prompt_for
from repro.tasks.base import MISS_TOKEN, ModelAnswer, TaskDataset, TaskInstance
from repro.util import derive_rng
from repro.workloads.base import Workload

#: Share of instances left intact (the negative class).
INTACT_FRACTION = 0.3


def iter_miss_token_instances(source, seed: int = 0):
    """Yield miss_token instances lazily, one per query.

    ``source`` is a :class:`Workload` or ``WorkloadStream``; both the
    materialised builder and the streaming engine consume this
    generator, so their instances are identical by construction.
    """
    for query in source:
        rng = derive_rng("miss-token-dataset", seed, query.query_id)
        corrupt = rng.random() >= INTACT_FRACTION
        removal = remove_token(query.text, rng) if corrupt else None
        if removal is not None:
            yield TaskInstance(
                instance_id=f"{query.query_id}-tok",
                task=MISS_TOKEN,
                workload=source.name,
                schema_name=query.schema_name,
                payload={"query": removal.text},
                label=True,
                label_type=removal.token_type,
                position=removal.position,
                removed_token=removal.removed,
                source_query_id=query.query_id,
                props=query.properties,
            )
        else:
            yield TaskInstance(
                instance_id=f"{query.query_id}-tok",
                task=MISS_TOKEN,
                workload=source.name,
                schema_name=query.schema_name,
                payload={"query": query.text},
                label=False,
                source_query_id=query.query_id,
                props=query.properties,
            )


def build_miss_token_dataset(workload: Workload, seed: int = 0) -> TaskDataset:
    """Remove one token from a random ~70% of queries; keep the rest intact."""
    dataset = TaskDataset(task=MISS_TOKEN, workload=workload.name)
    dataset.instances.extend(iter_miss_token_instances(workload, seed))
    return dataset


def parse_miss_token_response(
    instance: TaskInstance, text: str, model_name: str
) -> ModelAnswer:
    """Extract the compound miss_token labels from one response text."""
    return ModelAnswer(
        instance_id=instance.instance_id,
        model=model_name,
        response_text=text,
        predicted=extract_yes_no(text),
        predicted_type=extract_label(text, TOKEN_TYPES),
        predicted_position=extract_position(text),
    )


def ask_miss_token(
    model: SimulatedLLM,
    instance: TaskInstance,
    prompt: Optional[PromptTemplate] = None,
) -> ModelAnswer:
    """Prompt the model and post-process its compound response."""
    template = prompt or prompt_for(PROMPT_KEY)
    response = model.answer_miss_token(
        instance.instance_id,
        instance.payload["query"],
        instance.workload,
        instance.props,
        truth_missing=bool(instance.label),
        truth_token_type=instance.label_type,
        truth_token=instance.removed_token,
        truth_position=instance.position,
        prompt_quality=template.quality,
    )
    return parse_miss_token_response(instance, response.text, model.name)
