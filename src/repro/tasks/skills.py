"""Skill-to-task mapping (paper Table 1).

The paper grades each SQL task by which understanding skills it probes —
recognition, semantics, context, coherence — on a 1-3 scale (one to
three check marks).
"""

from __future__ import annotations

RECOGNITION = "Recognition"
SEMANTICS = "Semantics"
CONTEXT = "Context"
COHERENCE = "Coherence"

SKILLS: tuple[str, ...] = (RECOGNITION, SEMANTICS, CONTEXT, COHERENCE)

#: Table 1, verbatim: skill -> task -> check-mark count.
SKILL_TASK_MAP: dict[str, dict[str, int]] = {
    RECOGNITION: {
        "syntax_error": 3,
        "miss_token": 1,
        "performance_pred": 1,
        "query_equiv": 0,
        "query_exp": 2,
    },
    SEMANTICS: {
        "syntax_error": 3,
        "miss_token": 1,
        "performance_pred": 1,
        "query_equiv": 0,
        "query_exp": 2,
    },
    CONTEXT: {
        "syntax_error": 3,
        "miss_token": 1,
        "performance_pred": 2,
        "query_equiv": 1,
        "query_exp": 2,
    },
    COHERENCE: {
        "syntax_error": 3,
        "miss_token": 1,
        "performance_pred": 2,
        "query_equiv": 1,
        "query_exp": 2,
    },
}


def skill_marks(skill: str, task: str) -> int:
    """Check-mark count for (skill, task); 0 when unmapped."""
    return SKILL_TASK_MAP.get(skill, {}).get(task, 0)


def render_skill_table() -> list[dict[str, object]]:
    """Table 1 as printable rows."""
    rows = []
    tasks = ("syntax_error", "miss_token", "performance_pred", "query_equiv", "query_exp")
    for skill in SKILLS:
        row: dict[str, object] = {"Skill": skill}
        for task in tasks:
            row[task] = "✓" * skill_marks(skill, task) or "-"
        rows.append(row)
    return rows
