"""query_exp task (sections 3.1.3, 4.5).

Spider-only and qualitative in the paper: model explanations are compared
against gold descriptions.  The reproduction scores explanations with a
token-overlap F1 (for aggregate trends) and keeps the per-response flaw
annotations for the section 4.5 case study.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.llm.simulated import SimulatedLLM
from repro.prompts.templates import QUERY_EXP as PROMPT_KEY
from repro.prompts.templates import PromptTemplate, prompt_for
from repro.tasks.base import QUERY_EXP, ModelAnswer, TaskDataset, TaskInstance
from repro.workloads.base import Workload

_STOPWORDS = frozenset(
    "the a an of for in on to and or with from where by is are that "
    "this find show list each every".split()
)


def iter_query_exp_instances(source):
    """Yield query_exp instances lazily, one per query.

    ``source`` is a :class:`Workload` or ``WorkloadStream``; both the
    materialised builder and the streaming engine consume this
    generator, so their instances are identical by construction.
    """
    for query in source:
        yield TaskInstance(
            instance_id=f"{query.query_id}-exp",
            task=QUERY_EXP,
            workload=source.name,
            schema_name=query.schema_name,
            payload={"query": query.text},
            gold_text=query.description,
            source_query_id=query.query_id,
            props=query.properties,
        )


def build_query_exp_dataset(workload: Workload) -> TaskDataset:
    """One instance per Spider query, gold description attached."""
    dataset = TaskDataset(task=QUERY_EXP, workload=workload.name)
    dataset.instances.extend(iter_query_exp_instances(workload))
    return dataset


def parse_query_exp_response(
    instance: TaskInstance,
    text: str,
    model_name: str,
    flaws: tuple[str, ...] = (),
) -> ModelAnswer:
    """Wrap an explanation response; ``flaws`` is simulator provenance.

    Real backends carry no flaw annotations — their explanations are
    scored purely by token overlap against the gold description.
    """
    return ModelAnswer(
        instance_id=instance.instance_id,
        model=model_name,
        response_text=text,
        explanation=text,
        flaws=tuple(flaws),
    )


def ask_query_exp(
    model: SimulatedLLM,
    instance: TaskInstance,
    prompt: Optional[PromptTemplate] = None,
    statement=None,
) -> ModelAnswer:
    """Prompt the model for an explanation."""
    template = prompt or prompt_for(PROMPT_KEY)
    if statement is None:
        from repro.sql.analysis_cache import try_parse_cached

        statement = try_parse_cached(instance.payload["query"])
    response = model.answer_explanation(
        instance.instance_id,
        instance.payload["query"],
        statement,
        prompt_quality=template.quality,
    )
    return parse_query_exp_response(
        instance,
        response.text,
        model.name,
        flaws=tuple(response.metadata.get("flaws", ())),
    )


def _tokens(text: str) -> set[str]:
    words = re.findall(r"[a-z0-9_]+", text.lower())
    return {w for w in words if w not in _STOPWORDS and len(w) > 1}


def explanation_overlap_f1(gold: str, explanation: str) -> float:
    """Token-overlap F1 between gold description and model explanation.

    A crude but monotone proxy for explanation fidelity: detail-dropping
    lowers recall, hallucinated content lowers precision.
    """
    gold_tokens = _tokens(gold)
    pred_tokens = _tokens(explanation)
    if not gold_tokens or not pred_tokens:
        return 0.0
    overlap = len(gold_tokens & pred_tokens)
    if overlap == 0:
        return 0.0
    precision = overlap / len(pred_tokens)
    recall = overlap / len(gold_tokens)
    return 2 * precision * recall / (precision + recall)
