"""query_equiv and query_equiv_type tasks (sections 3.1-3.2, 4.4)."""

from __future__ import annotations

from typing import Optional

from repro.equivalence.counter_transforms import NON_EQUIVALENCE_TYPES
from repro.equivalence.pairs import iter_equivalence_pairs
from repro.equivalence.transforms import EQUIVALENCE_TYPES
from repro.llm.simulated import SimulatedLLM
from repro.parsing import extract_equivalence, extract_label
from repro.prompts.templates import QUERY_EQUIV as PROMPT_KEY
from repro.prompts.templates import PromptTemplate, prompt_for
from repro.sql.properties import extract_properties
from repro.tasks.base import QUERY_EQUIV, ModelAnswer, TaskDataset, TaskInstance
from repro.workloads.base import Workload

ALL_PAIR_TYPES: tuple[str, ...] = EQUIVALENCE_TYPES + NON_EQUIVALENCE_TYPES


def iter_query_equiv_instances(
    source,
    seed: int = 0,
    max_pairs: Optional[int] = None,
    verify: bool = True,
):
    """Yield query_equiv instances lazily from the sequential pair stream.

    ``source`` is a :class:`Workload` or ``WorkloadStream``; both the
    materialised builder and the streaming engine consume this
    generator, so their instances are identical by construction.
    """
    for pair in iter_equivalence_pairs(
        source, seed=seed, max_pairs=max_pairs, verify=verify
    ):
        props = extract_properties(pair.first_text)
        yield TaskInstance(
            instance_id=pair.pair_id,
            task=QUERY_EQUIV,
            workload=source.name,
            schema_name=pair.schema_name,
            payload={"query_1": pair.first_text, "query_2": pair.second_text},
            label=pair.equivalent,
            label_type=pair.pair_type,
            source_query_id=pair.source_query_id,
            props=props,
            detail=pair.detail,
        )


def build_query_equiv_dataset(
    workload: Workload,
    seed: int = 0,
    max_pairs: Optional[int] = None,
    verify: bool = True,
) -> TaskDataset:
    """Build the labeled pair dataset via verified transforms."""
    dataset = TaskDataset(task=QUERY_EQUIV, workload=workload.name)
    dataset.instances.extend(
        iter_query_equiv_instances(
            workload, seed=seed, max_pairs=max_pairs, verify=verify
        )
    )
    return dataset


def parse_query_equiv_response(
    instance: TaskInstance, text: str, model_name: str
) -> ModelAnswer:
    """Extract the equivalence verdict and pair type from one response."""
    return ModelAnswer(
        instance_id=instance.instance_id,
        model=model_name,
        response_text=text,
        predicted=extract_equivalence(text),
        predicted_type=extract_label(text, ALL_PAIR_TYPES),
    )


def ask_query_equiv(
    model: SimulatedLLM,
    instance: TaskInstance,
    prompt: Optional[PromptTemplate] = None,
) -> ModelAnswer:
    """Prompt the model with both queries and post-process the response."""
    template = prompt or prompt_for(PROMPT_KEY)
    response = model.answer_equivalence(
        instance.instance_id,
        instance.payload["query_1"],
        instance.payload["query_2"],
        instance.workload,
        instance.props,
        truth_equivalent=bool(instance.label),
        truth_pair_type=instance.label_type,
        prompt_quality=template.quality,
    )
    return parse_query_equiv_response(instance, response.text, model.name)
