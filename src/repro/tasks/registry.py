"""Task registry: builders, ask-functions and backend request/parse
plumbing, keyed by task name."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.llm.backends.base import ModelRequest
from repro.llm.base import LLMResponse
from repro.prompts.templates import PromptTemplate, prompt_for
from repro.tasks.base import (
    MISS_TOKEN,
    PERFORMANCE_PRED,
    PRIMARY_TASKS,
    QUERY_EQUIV,
    QUERY_EXP,
    REWRITE_EQUIVALENCE,
    REWRITE_SPEEDUP,
    REWRITE_TASKS,
    SYNTAX_ERROR,
    ModelAnswer,
    TaskDataset,
    TaskInstance,
)
from repro.tasks.equivalence import (
    ask_query_equiv,
    build_query_equiv_dataset,
    parse_query_equiv_response,
)
from repro.tasks.explanation import (
    ask_query_exp,
    build_query_exp_dataset,
    parse_query_exp_response,
)
from repro.tasks.miss_token import (
    ask_miss_token,
    build_miss_token_dataset,
    parse_miss_token_response,
)
from repro.tasks.performance import (
    ask_performance_pred,
    build_performance_dataset,
    parse_performance_pred_response,
)
from repro.tasks.rewrite import (
    ask_rewrite_equivalence,
    ask_rewrite_speedup,
    build_rewrite_equivalence_dataset,
    build_rewrite_speedup_dataset,
    parse_rewrite_equivalence_response,
    parse_rewrite_speedup_response,
)
from repro.tasks.syntax_error import (
    ask_syntax_error,
    build_syntax_error_dataset,
    parse_syntax_error_response,
)
from repro.workloads.base import Workload

#: Which workloads each task evaluates on (Table 2 usage note + section 3.2).
TASK_WORKLOADS: dict[str, tuple[str, ...]] = {
    SYNTAX_ERROR: ("sdss", "sqlshare", "join_order"),
    MISS_TOKEN: ("sdss", "sqlshare", "join_order"),
    QUERY_EQUIV: ("sdss", "sqlshare", "join_order"),
    PERFORMANCE_PRED: ("sdss",),
    QUERY_EXP: ("spider",),
}


def tasks_for_workload(workload_name: str) -> tuple[str, ...]:
    """The tasks a workload carries ground truth for.

    Paper workloads follow the Table 2 usage note (inverted from
    ``TASK_WORKLOADS``); synthetic workloads support all five primary
    tasks — generated queries carry elapsed-time labels and gold
    descriptions in addition to being corruptible and pairable — and
    ``synthetic:rewrite`` workloads additionally carry the two rewrite
    tasks.  The CLI's ``run --workload`` grid mode uses this to avoid
    building datasets that would come out empty.
    """
    from repro.workloads.synthetic import is_rewrite_workload, is_synthetic

    if is_rewrite_workload(workload_name):
        return PRIMARY_TASKS + REWRITE_TASKS
    if is_synthetic(workload_name):
        return PRIMARY_TASKS
    return tuple(
        task
        for task in PRIMARY_TASKS
        if workload_name in TASK_WORKLOADS.get(task, ())
    )

ASK_FUNCTIONS: dict[str, Callable] = {
    SYNTAX_ERROR: ask_syntax_error,
    MISS_TOKEN: ask_miss_token,
    QUERY_EQUIV: ask_query_equiv,
    PERFORMANCE_PRED: ask_performance_pred,
    QUERY_EXP: ask_query_exp,
    REWRITE_EQUIVALENCE: ask_rewrite_equivalence,
    REWRITE_SPEEDUP: ask_rewrite_speedup,
}


def build_dataset(
    task: str, workload: Workload, seed: int = 0, max_instances: Optional[int] = None
) -> TaskDataset:
    """Build the labeled dataset for one (task, workload) cell."""
    if task == SYNTAX_ERROR:
        dataset = build_syntax_error_dataset(workload, seed)
    elif task == MISS_TOKEN:
        dataset = build_miss_token_dataset(workload, seed)
    elif task == QUERY_EQUIV:
        dataset = build_query_equiv_dataset(workload, seed, max_pairs=max_instances)
    elif task == PERFORMANCE_PRED:
        dataset = build_performance_dataset(workload)
    elif task == QUERY_EXP:
        dataset = build_query_exp_dataset(workload)
    elif task == REWRITE_EQUIVALENCE:
        dataset = build_rewrite_equivalence_dataset(
            workload, seed, max_pairs=max_instances
        )
    elif task == REWRITE_SPEEDUP:
        dataset = build_rewrite_speedup_dataset(
            workload, seed, max_instances=max_instances
        )
    else:
        raise KeyError(
            f"unknown task {task!r}; expected one of "
            f"{PRIMARY_TASKS + REWRITE_TASKS}"
        )
    if max_instances is not None and task not in (
        QUERY_EQUIV,
        REWRITE_EQUIVALENCE,
        REWRITE_SPEEDUP,
    ):
        dataset.instances = dataset.instances[:max_instances]
    return dataset


def ask(task: str, model, instance, prompt=None):
    """Dispatch to the task's ask-function."""
    try:
        fn = ASK_FUNCTIONS[task]
    except KeyError:
        raise KeyError(f"unknown task {task!r}") from None
    return fn(model, instance, prompt)


# -- backend plumbing (prompt rendering and response parsing) --------------

PARSE_FUNCTIONS: dict[str, Callable[..., ModelAnswer]] = {
    SYNTAX_ERROR: parse_syntax_error_response,
    MISS_TOKEN: parse_miss_token_response,
    QUERY_EQUIV: parse_query_equiv_response,
    PERFORMANCE_PRED: parse_performance_pred_response,
    QUERY_EXP: parse_query_exp_response,
    REWRITE_EQUIVALENCE: parse_rewrite_equivalence_response,
    REWRITE_SPEEDUP: parse_rewrite_speedup_response,
}


def build_request(
    task: str,
    model_name: str,
    instance: TaskInstance,
    prompt: Optional[PromptTemplate] = None,
) -> ModelRequest:
    """Render one instance into a backend-agnostic :class:`ModelRequest`.

    The rendered prompt text is exactly what a hosted backend sends over
    the wire; the instance rides along for backends that derive answers
    locally (the simulator's calibrated noise model).
    """
    if task not in ASK_FUNCTIONS:
        raise KeyError(f"unknown task {task!r}")
    template = prompt or prompt_for(task)
    return ModelRequest(
        request_id=instance.instance_id,
        task=task,
        model=model_name,
        prompt_text=template.render(**instance.payload),
        prompt_quality=template.quality,
        instance=instance,
    )


def parse_answer(
    task: str, instance: TaskInstance, response: LLMResponse, model_name: str
) -> ModelAnswer:
    """Extract a :class:`ModelAnswer` from one backend response.

    Predictions come only from the response *text* (plus, for
    query_exp, the simulator's flaw provenance when present) — the same
    post-processing regardless of which backend produced the response.
    """
    try:
        parser = PARSE_FUNCTIONS[task]
    except KeyError:
        raise KeyError(f"unknown task {task!r}") from None
    if task == QUERY_EXP:
        return parser(
            instance,
            response.text,
            model_name,
            flaws=tuple(response.metadata.get("flaws", ())),
        )
    return parser(instance, response.text, model_name)


def answers_from_responses(
    task: str,
    instances: Sequence[TaskInstance],
    responses: Sequence[LLMResponse],
    model_name: str,
) -> list[ModelAnswer]:
    """Parse a whole dispatched batch, aligned index-for-index."""
    if len(instances) != len(responses):
        raise ValueError(
            f"{len(instances)} instances but {len(responses)} responses"
        )
    return [
        parse_answer(task, instance, response, model_name)
        for instance, response in zip(instances, responses)
    ]
