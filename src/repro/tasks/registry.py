"""Task registry: builders and ask-functions keyed by task name."""

from __future__ import annotations

from typing import Callable, Optional

from repro.tasks.base import (
    MISS_TOKEN,
    PERFORMANCE_PRED,
    PRIMARY_TASKS,
    QUERY_EQUIV,
    QUERY_EXP,
    SYNTAX_ERROR,
    TaskDataset,
)
from repro.tasks.equivalence import ask_query_equiv, build_query_equiv_dataset
from repro.tasks.explanation import ask_query_exp, build_query_exp_dataset
from repro.tasks.miss_token import ask_miss_token, build_miss_token_dataset
from repro.tasks.performance import ask_performance_pred, build_performance_dataset
from repro.tasks.syntax_error import ask_syntax_error, build_syntax_error_dataset
from repro.workloads.base import Workload

#: Which workloads each task evaluates on (Table 2 usage note + section 3.2).
TASK_WORKLOADS: dict[str, tuple[str, ...]] = {
    SYNTAX_ERROR: ("sdss", "sqlshare", "join_order"),
    MISS_TOKEN: ("sdss", "sqlshare", "join_order"),
    QUERY_EQUIV: ("sdss", "sqlshare", "join_order"),
    PERFORMANCE_PRED: ("sdss",),
    QUERY_EXP: ("spider",),
}

ASK_FUNCTIONS: dict[str, Callable] = {
    SYNTAX_ERROR: ask_syntax_error,
    MISS_TOKEN: ask_miss_token,
    QUERY_EQUIV: ask_query_equiv,
    PERFORMANCE_PRED: ask_performance_pred,
    QUERY_EXP: ask_query_exp,
}


def build_dataset(
    task: str, workload: Workload, seed: int = 0, max_instances: Optional[int] = None
) -> TaskDataset:
    """Build the labeled dataset for one (task, workload) cell."""
    if task == SYNTAX_ERROR:
        dataset = build_syntax_error_dataset(workload, seed)
    elif task == MISS_TOKEN:
        dataset = build_miss_token_dataset(workload, seed)
    elif task == QUERY_EQUIV:
        dataset = build_query_equiv_dataset(workload, seed, max_pairs=max_instances)
    elif task == PERFORMANCE_PRED:
        dataset = build_performance_dataset(workload)
    elif task == QUERY_EXP:
        dataset = build_query_exp_dataset(workload)
    else:
        raise KeyError(f"unknown task {task!r}; expected one of {PRIMARY_TASKS}")
    if max_instances is not None and task != QUERY_EQUIV:
        dataset.instances = dataset.instances[:max_instances]
    return dataset


def ask(task: str, model, instance, prompt=None):
    """Dispatch to the task's ask-function."""
    try:
        fn = ASK_FUNCTIONS[task]
    except KeyError:
        raise KeyError(f"unknown task {task!r}") from None
    return fn(model, instance, prompt)
