"""Streaming task-instance production.

The chunked counterpart of :func:`repro.tasks.registry.build_dataset`:
one generator per task family, each consuming a query stream
(:class:`~repro.workloads.streaming.WorkloadStream` or a materialised
:class:`~repro.workloads.base.Workload`) and yielding
:class:`TaskInstance` values lazily.  Every generator here is the SAME
code the materialised builders drain, so chunking a stream and slicing
a built dataset cannot disagree.

Capping semantics mirror ``build_dataset`` exactly: non-equivalence
tasks truncate the instance stream after ``max_instances`` (the
materialised path slices after building — same prefix), query_equiv
caps during generation via ``max_pairs``.  The streaming win is that
truncation stops the *producer*: ``synthetic:default:n=1000000`` with
``--max-instances 1000000`` generates one million queries and then
stops, instead of materialising all twelve million the spec describes.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator, Optional

from repro.tasks.base import (
    MISS_TOKEN,
    PERFORMANCE_PRED,
    PRIMARY_TASKS,
    QUERY_EQUIV,
    QUERY_EXP,
    REWRITE_EQUIVALENCE,
    REWRITE_SPEEDUP,
    REWRITE_TASKS,
    SYNTAX_ERROR,
    TaskInstance,
)
from repro.tasks.equivalence import iter_query_equiv_instances
from repro.tasks.explanation import iter_query_exp_instances
from repro.tasks.miss_token import iter_miss_token_instances
from repro.tasks.performance import iter_performance_instances
from repro.tasks.rewrite import (
    iter_rewrite_equivalence_instances,
    iter_rewrite_speedup_instances,
)
from repro.tasks.syntax_error import iter_syntax_error_instances


def iter_task_instances(
    task: str,
    source,
    seed: int = 0,
    max_instances: Optional[int] = None,
) -> Iterator[TaskInstance]:
    """Yield one cell's task instances lazily, capped like build_dataset."""
    if task == SYNTAX_ERROR:
        instances = iter_syntax_error_instances(source, seed)
    elif task == MISS_TOKEN:
        instances = iter_miss_token_instances(source, seed)
    elif task == QUERY_EQUIV:
        # max_pairs caps during generation (identical to build_dataset);
        # no outer islice needed.
        return iter_query_equiv_instances(source, seed, max_pairs=max_instances)
    elif task == PERFORMANCE_PRED:
        instances = iter_performance_instances(source)
    elif task == QUERY_EXP:
        instances = iter_query_exp_instances(source)
    elif task == REWRITE_EQUIVALENCE:
        # max_pairs caps during generation (identical to build_dataset).
        return iter_rewrite_equivalence_instances(
            source, seed, max_pairs=max_instances
        )
    elif task == REWRITE_SPEEDUP:
        # the generator caps emitted instances itself (post-filter count).
        return iter_rewrite_speedup_instances(
            source, seed, max_instances=max_instances
        )
    else:
        raise KeyError(
            f"unknown task {task!r}; expected one of "
            f"{PRIMARY_TASKS + REWRITE_TASKS}"
        )
    if max_instances is not None:
        return islice(instances, max_instances)
    return instances


def iter_instance_chunks(
    task: str,
    source,
    seed: int = 0,
    chunk_size: int = 2000,
    max_instances: Optional[int] = None,
) -> Iterator[list[TaskInstance]]:
    """Yield the instance stream in fixed-size segments (last may be short)."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    instances = iter_task_instances(task, source, seed, max_instances)
    while True:
        chunk = list(islice(instances, chunk_size))
        if not chunk:
            return
        yield chunk
