"""Fault-injecting backend wrapper: deterministic flaky transport.

``ChaosBackend`` decorates any registered backend: a seeded fraction of
requests fail their first ``fail_attempts`` attempts with a chosen
fault kind (429, 500, or timeout), then recover.  Because the fault
schedule is a pure function of ``(chaos_seed, request_id, attempt)``
and the *answers* always come from the deterministic inner backend, a
flaky run that survives its retry ladders produces metrics
byte-identical to a clean run — which is exactly the invariant the
chaos harness asserts.

``fail_attempts`` picks the failure depth: ``1`` (default) means every
faulty request succeeds on its first retry; a value above the
dispatcher's retry budget makes faulty requests terminal, exercising
the ``--on-cell-error`` policy and the circuit breaker instead.
"""

from __future__ import annotations

from random import Random

from repro.llm.backends.base import (
    BackendSpec,
    BaseBackend,
    ModelRequest,
    TransientBackendError,
)
from repro.llm.base import LLMResponse
from repro.llm.profiles import ModelProfile

#: Options consumed by the wrapper itself; everything else is handed
#: through to the inner backend's spec.
CHAOS_OPTION_KEYS = frozenset(
    {"inner", "rate", "kind", "fail_attempts", "chaos_seed"}
)


class ChaosBackend(BaseBackend):
    """Wraps an inner backend with seeded transient faults."""

    name = "chaos"

    def __init__(self, profile: ModelProfile, spec: BackendSpec) -> None:
        from repro.llm.backends.registry import create_backend

        inner_name = spec.option("inner", "simulated")
        if inner_name == "chaos":
            raise ValueError("chaos backend cannot wrap itself")
        inner_options = {
            key: value
            for key, value in spec.as_dict().items()
            if key not in CHAOS_OPTION_KEYS
        }
        self.inner = create_backend(
            BackendSpec.build(inner_name, inner_options), profile
        )
        self.blocking_io = getattr(self.inner, "blocking_io", False)
        self.rate = float(spec.option("rate", "0.2"))
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"chaos rate must be in (0, 1], got {self.rate}")
        self.kind = spec.option("kind", "500")
        if self.kind not in ("429", "500", "timeout"):
            raise ValueError(
                f"chaos kind must be 429, 500 or timeout, got {self.kind!r}"
            )
        self.fail_attempts = int(spec.option("fail_attempts", "1"))
        if self.fail_attempts < 1:
            raise ValueError(
                f"chaos fail_attempts must be >= 1, got {self.fail_attempts}"
            )
        self.chaos_seed = spec.option("chaos_seed", "0")
        #: Per-request attempt counter (per process; retries of one
        #: request land on the same backend instance via the memo).
        self._attempts: dict[str, int] = {}
        #: Observability: how many faults this instance injected.
        self.injected = 0

    def _maybe_fault(self, request: ModelRequest) -> None:
        attempt = self._attempts.get(request.request_id, 0) + 1
        self._attempts[request.request_id] = attempt
        # Whether this request is faulty is decided once, per request,
        # by the seeded RNG — not per attempt — so the schedule is
        # reproducible no matter how the dispatcher interleaves retries.
        faulty = (
            Random(f"chaos:{self.chaos_seed}:{request.request_id}").random()
            < self.rate
        )
        if not faulty or attempt > self.fail_attempts:
            return
        self.injected += 1
        if self.kind == "429":
            raise TransientBackendError(
                f"chaos: injected HTTP 429 for {request.request_id} "
                f"(attempt {attempt})"
            )
        if self.kind == "timeout":
            raise TransientBackendError(
                f"chaos: injected timeout for {request.request_id} "
                f"(attempt {attempt})"
            )
        raise TransientBackendError(
            f"chaos: injected HTTP 500 for {request.request_id} "
            f"(attempt {attempt})"
        )

    def complete(self, request: ModelRequest) -> LLMResponse:
        self._maybe_fault(request)
        return self.inner.complete(request)

    async def acomplete(self, request: ModelRequest) -> LLMResponse:
        self._maybe_fault(request)
        return await self.inner.acomplete(request)

    def close(self) -> None:
        self.inner.close()
