"""Chaos plan parsing and arming.

Plan format: semicolon-separated events, each ``kind`` followed by
colon-separated ``key=value`` params::

    flaky:rate=0.3:kind=429
    kill-worker:chunk=2
    poison:chunk=1
    sigterm:after-cells=2
    corrupt-segment
    flaky:rate=0.2;kill-worker:chunk=1;sigterm:after-cells=3

Event semantics:

* ``flaky`` — wrap the run's backend in :class:`ChaosBackend`: a
  seeded ``rate`` fraction of requests fail their first
  ``fail_attempts`` attempts with the given ``kind`` (429/500/timeout).
  The wrapper is part of the backend spec, so chaos cells get their own
  cache identity and a resumed chaos run stays cache-consistent.
* ``kill-worker`` / ``poison`` — arm the streaming engine's existing
  :class:`~repro.engine.streaming.StreamFault` channel at the given
  chunk (``once=true`` by default; ``once=false`` exhausts the
  re-dispatch budget and must surface as a named error).
* ``sigint`` / ``sigterm`` / ``sigkill`` — deliver that signal to the
  run's own process after ``after-cells`` cells have committed.  Riding
  the cell-commit hook makes interrupt tests deterministic: the signal
  lands at an exact grid position, not a wall-clock race.
* ``corrupt-segment`` — flip bytes in one committed cache segment
  (seeded choice) before the run starts, exercising the
  corruption-detection → clean-recompute path.
"""

from __future__ import annotations

import os
import signal as signal_module
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import TYPE_CHECKING, Optional

from repro.llm.backends.base import BackendSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.core import ExperimentEngine


class ChaosPlanError(ValueError):
    """A chaos plan string could not be parsed or validated."""


#: kind -> allowed param keys.
_EVENT_PARAMS: dict[str, frozenset[str]] = {
    "flaky": frozenset({"rate", "kind", "fail_attempts"}),
    "kill-worker": frozenset({"chunk", "once"}),
    "poison": frozenset({"chunk", "once"}),
    "sigint": frozenset({"after-cells"}),
    "sigterm": frozenset({"after-cells"}),
    "sigkill": frozenset({"after-cells"}),
    "corrupt-segment": frozenset(),
}

_SIGNALS = {
    "sigint": signal_module.SIGINT,
    "sigterm": signal_module.SIGTERM,
    "sigkill": signal_module.SIGKILL,
}

_FLAKY_KINDS = ("429", "500", "timeout")


@dataclass(frozen=True)
class ChaosEvent:
    """One parsed fault event."""

    kind: str
    params: tuple[tuple[str, str], ...] = ()

    def param(self, key: str, default: Optional[str] = None) -> Optional[str]:
        for candidate, value in self.params:
            if candidate == key:
                return value
        return default

    def int_param(self, key: str, default: int) -> int:
        raw = self.param(key)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise ChaosPlanError(
                f"chaos event {self.kind!r}: param {key}={raw!r} is not an integer"
            ) from None


@dataclass(frozen=True)
class ChaosPlan:
    """A parsed, validated chaos plan."""

    events: tuple[ChaosEvent, ...] = ()
    text: str = ""

    @classmethod
    def parse(cls, text: str) -> "ChaosPlan":
        events = []
        for raw_event in text.split(";"):
            raw_event = raw_event.strip()
            if not raw_event:
                continue
            parts = raw_event.split(":")
            kind = parts[0].strip()
            if kind not in _EVENT_PARAMS:
                raise ChaosPlanError(
                    f"unknown chaos event {kind!r}; expected one of "
                    f"{', '.join(sorted(_EVENT_PARAMS))}"
                )
            params = []
            for raw_param in parts[1:]:
                key, sep, value = raw_param.partition("=")
                key = key.strip()
                if not sep or not key:
                    raise ChaosPlanError(
                        f"bad chaos param {raw_param!r} in event {kind!r}; "
                        "expected key=value"
                    )
                if key not in _EVENT_PARAMS[kind]:
                    raise ChaosPlanError(
                        f"unknown param {key!r} for chaos event {kind!r}; "
                        f"allowed: {', '.join(sorted(_EVENT_PARAMS[kind])) or '(none)'}"
                    )
                params.append((key, value.strip()))
            event = ChaosEvent(kind=kind, params=tuple(params))
            _validate_event(event)
            events.append(event)
        if not events:
            raise ChaosPlanError(f"empty chaos plan {text!r}")
        return cls(events=tuple(events), text=text)

    def first(self, kind: str) -> Optional[ChaosEvent]:
        for event in self.events:
            if event.kind == kind:
                return event
        return None

    @property
    def flaky(self) -> Optional[ChaosEvent]:
        return self.first("flaky")

    @property
    def stream_fault(self) -> Optional[ChaosEvent]:
        return self.first("kill-worker") or self.first("poison")

    @property
    def signal_event(self) -> Optional[ChaosEvent]:
        for event in self.events:
            if event.kind in _SIGNALS:
                return event
        return None

    @property
    def corrupts_segment(self) -> bool:
        return self.first("corrupt-segment") is not None


def _validate_event(event: ChaosEvent) -> None:
    if event.kind == "flaky":
        raw_rate = event.param("rate", "0.2")
        try:
            rate = float(raw_rate)
        except ValueError:
            raise ChaosPlanError(
                f"flaky rate {raw_rate!r} is not a number"
            ) from None
        if not 0.0 < rate <= 1.0:
            raise ChaosPlanError(f"flaky rate must be in (0, 1], got {rate}")
        kind = event.param("kind", "500")
        if kind not in _FLAKY_KINDS:
            raise ChaosPlanError(
                f"flaky kind {kind!r} not in {', '.join(_FLAKY_KINDS)}"
            )
    elif event.kind in ("kill-worker", "poison"):
        event.int_param("chunk", 0)
        once = event.param("once", "true").lower()
        if once not in ("true", "false"):
            raise ChaosPlanError(
                f"{event.kind} once={once!r}; expected true or false"
            )
    elif event.kind in _SIGNALS:
        after = event.int_param("after-cells", 1)
        if after < 1:
            raise ChaosPlanError(
                f"{event.kind} after-cells must be >= 1, got {after}"
            )


def wrap_backend_spec(spec: BackendSpec, plan: ChaosPlan, seed: int) -> BackendSpec:
    """Fold the plan's ``flaky`` event into the backend spec, if any.

    The chaos wrapper becomes *the* backend of record: it joins the
    spec fingerprint (chaos cells never alias clean cells in the
    cache) and it round-trips through the journal manifest, so a
    resumed chaos run re-creates the identical wrapper and its
    committed cells are warm hits.
    """
    flaky = plan.flaky
    if flaky is None:
        return spec
    if spec.name == "chaos":
        raise ChaosPlanError("backend is already chaos-wrapped")
    options = {
        "inner": spec.name,
        "rate": flaky.param("rate", "0.2"),
        "kind": flaky.param("kind", "500"),
        "fail_attempts": flaky.param("fail_attempts", "1"),
        "chaos_seed": str(seed),
    }
    options.update(spec.as_dict())
    return BackendSpec.build("chaos", options)


def apply_chaos(plan: ChaosPlan, engine: "ExperimentEngine") -> None:
    """Arm the plan's schedule events (faults + signals) on one run.

    Backend flakiness is *not* armed here — it travels inside the
    backend spec (see :func:`wrap_backend_spec`) so it survives the
    process boundary to pool workers.  Schedule events are one-shot by
    nature and are deliberately not re-armed on ``--resume``: resume
    is the recovery path, not a second chaos round.
    """
    from repro.engine.streaming import StreamFault

    fault_event = plan.stream_fault
    if fault_event is not None:
        engine.streaming.fault = StreamFault(
            kind="crash" if fault_event.kind == "kill-worker" else "poison",
            chunk=fault_event.int_param("chunk", 0),
            once=fault_event.param("once", "true").lower() == "true",
        )
    signal_event = plan.signal_event
    if signal_event is not None:
        target = _SIGNALS[signal_event.kind]
        remaining = signal_event.int_param("after-cells", 1)

        def deliver() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                os.kill(os.getpid(), target)

        engine.on_cell_commit = deliver


def corrupt_cache_segment(cache_dir: Path, seed: int = 0) -> Optional[Path]:
    """Flip bytes in one committed segment file (seeded choice).

    Returns the corrupted path, or None when the cache holds no cell
    files yet (nothing to corrupt — e.g. a cold first run).  Targets
    both cell layouts: single-file cells (``cells/xy/<key>.json``,
    materialised path) and chunk segments
    (``cells/xy/<key>/seg-*.json``, streaming path).  The engine must
    respond with a cache miss or a loud
    :class:`~repro.engine.cache.CacheSegmentError` → clean recompute,
    never by serving wrong bytes.
    """
    root = Path(cache_dir)
    segments = sorted(
        [*root.glob("cells/*/*.json"), *root.glob("cells/*/*/seg-*.json")]
    )
    if not segments:
        return None
    target = Random(f"chaos-corrupt:{seed}").choice(segments)
    payload = bytearray(target.read_bytes())
    if not payload:
        return None
    # Truncate to half and flip the first byte: breaks both JSON
    # structure and any content check, whatever the serialisation.
    payload = payload[: max(1, len(payload) // 2)]
    payload[0] ^= 0xFF
    target.write_bytes(bytes(payload))
    return target
