"""Chaos-injection harness: deliberately torture the run lifecycle.

A chaos plan is a small composable fault schedule — flaky backend
calls, a worker killed at chunk *k*, a poisoned chunk, a signal
delivered after *N* committed cells, a corrupted cache segment — parsed
from a compact string (``repro run --chaos PLAN``) and armed against
one engine run.  Every fault is seeded and deterministic, so a chaos
run either *recovers to byte-identical metrics* (transient faults are
retried/re-dispatched/recomputed) or *fails loudly with a named error*
— never a partial cache write, never a silently wrong answer.  The CI
chaos-smoke job asserts exactly that over a small plan matrix.
"""

from repro.chaos.backend import CHAOS_OPTION_KEYS, ChaosBackend
from repro.chaos.plan import (
    ChaosEvent,
    ChaosPlan,
    ChaosPlanError,
    apply_chaos,
    corrupt_cache_segment,
    wrap_backend_spec,
)

__all__ = [
    "ChaosBackend",
    "CHAOS_OPTION_KEYS",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosPlanError",
    "apply_chaos",
    "corrupt_cache_segment",
    "wrap_backend_spec",
]
