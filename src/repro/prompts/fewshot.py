"""Few-shot prompting (paper section 3.4 / future work, section 6).

The paper evaluates zero-shot only but names few-shot learning and
dynamic prompt adjustment as the next steps expected to "significantly
mitigate current limitations".  This module implements both:

* :func:`build_few_shot_prompt` prepends *k* labeled exemplars to a task
  prompt.  Example quality transfers to the model through an effective
  prompt-quality bonus (capped), so few-shot runs measurably improve the
  weaker models — the paper's stated expectation, testable via the
  ``bench_ablation_fewshot`` benchmark;
* :func:`dynamic_prompt_table` picks the best prompt variant *per
  workload* via mock experiments (the "dynamic prompt tuning" of
  section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.prompts.templates import PromptTemplate, prompt_for, variants_for
from repro.prompts.tuning import tune_prompt

if TYPE_CHECKING:  # avoid a tasks<->prompts import cycle at runtime
    from repro.tasks.base import TaskInstance

#: Accuracy bonus per exemplar, with diminishing returns and a hard cap.
_PER_EXAMPLE_BONUS = 0.02
_MAX_BONUS = 0.08


@dataclass(frozen=True)
class FewShotPrompt:
    """A task prompt carrying k worked examples."""

    base: PromptTemplate
    examples: tuple[str, ...]

    @property
    def task(self) -> str:
        return self.base.task

    @property
    def name(self) -> str:
        return f"{self.base.name}+{len(self.examples)}shot"

    @property
    def quality(self) -> float:
        """Effective quality: the base prompt plus the exemplar bonus.

        Bonus saturates at ``_MAX_BONUS`` — consistent with the common
        finding that the first few shots carry most of the gain.
        """
        bonus = min(len(self.examples) * _PER_EXAMPLE_BONUS, _MAX_BONUS)
        return min(self.base.quality + bonus, 1.1)

    def render(self, **payload: str) -> str:
        blocks = ["Here are solved examples:"]
        for index, example in enumerate(self.examples, start=1):
            blocks.append(f"Example {index}: {example}")
        blocks.append(self.base.render(**payload))
        return "\n".join(blocks)


def format_example(instance: "TaskInstance") -> str:
    """One exemplar line built from a labeled instance."""
    if instance.task == "syntax_error":
        verdict = (
            f"yes, a {instance.label_type} error" if instance.label else "no error"
        )
        return f"Query: {instance.payload['query']} -> {verdict}"
    if instance.task == "miss_token":
        if instance.label:
            verdict = (
                f"yes, a missing {instance.label_type} at word position "
                f"{instance.position}"
            )
        else:
            verdict = "nothing missing"
        return f"Query: {instance.payload['query']} -> {verdict}"
    if instance.task == "query_equiv":
        verdict = "equivalent" if instance.label else "not equivalent"
        return (
            f"Q1: {instance.payload['query_1']} / Q2: "
            f"{instance.payload['query_2']} -> {verdict}"
        )
    if instance.task == "performance_pred":
        verdict = "slow" if instance.label else "fast"
        return f"Query: {instance.payload['query']} -> {verdict}"
    return f"Query: {instance.payload.get('query', '')} -> {instance.gold_text}"


def build_few_shot_prompt(
    task: str,
    exemplars: Sequence["TaskInstance"],
    shots: int = 3,
    base: PromptTemplate | None = None,
) -> FewShotPrompt:
    """Build a k-shot prompt from labeled exemplar instances.

    Exemplars should come from a *held-out* slice; the caller is
    responsible for not leaking evaluation instances.
    """
    if shots < 1:
        raise ValueError("shots must be >= 1")
    chosen = tuple(format_example(instance) for instance in exemplars[:shots])
    if not chosen:
        raise ValueError("need at least one exemplar instance")
    return FewShotPrompt(base=base or prompt_for(task), examples=chosen)


def dynamic_prompt_table(
    task: str,
    instances_by_workload: dict[str, Sequence[object]],
    run_trial: Callable,
) -> dict[str, PromptTemplate]:
    """Per-workload prompt selection (section 6 'dynamic prompt tuning').

    Runs the mock-experiment tuner once per workload and returns the
    winning variant for each, so heterogeneous workloads can use
    different phrasings.
    """
    table: dict[str, PromptTemplate] = {}
    for workload, instances in instances_by_workload.items():
        result = tune_prompt(task, list(instances), run_trial)
        table[workload] = result.best
    if not table:
        raise ValueError("no workloads supplied")
    # Sanity: every selected prompt must be a known variant.
    known = {variant.name for variant in variants_for(task)}
    for workload, template in table.items():
        if template.name not in known:
            raise RuntimeError(
                f"tuner returned unknown variant {template.name!r} for "
                f"{workload!r}"
            )
    return table
