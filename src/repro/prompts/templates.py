"""Task prompts (paper section 3.4).

The default templates are the paper's tuned prompts, verbatim.  Each task
also ships *untuned* variants with lower ``quality``; the tuning harness
(:mod:`repro.prompts.tuning`) runs mock experiments to pick the best one,
reproducing the paper's two-step prompt-engineering process.  Simulated
models multiply their competence by the chosen prompt's quality, so
tuning has a measurable effect.
"""

from __future__ import annotations

from dataclasses import dataclass

SYNTAX_ERROR = "syntax_error"
MISS_TOKEN = "miss_token"
QUERY_EQUIV = "query_equiv"
PERFORMANCE_PRED = "performance_pred"
QUERY_EXP = "query_exp"
REWRITE_EQUIVALENCE = "rewrite_equivalence"
REWRITE_SPEEDUP = "rewrite_speedup"

TASK_NAMES: tuple[str, ...] = (
    SYNTAX_ERROR,
    MISS_TOKEN,
    QUERY_EQUIV,
    PERFORMANCE_PRED,
    QUERY_EXP,
    REWRITE_EQUIVALENCE,
    REWRITE_SPEEDUP,
)


@dataclass(frozen=True)
class PromptTemplate:
    """One prompt variant for a task.

    ``quality`` in (0, 1] models how well the phrasing guides the model;
    the paper's tuned prompts sit at 1.0.
    """

    task: str
    name: str
    text: str
    quality: float = 1.0

    def render(self, **payload: str) -> str:
        return self.text.format(**payload)


#: The paper's tuned prompts, quoted from section 3.4.
TUNED_PROMPTS: dict[str, PromptTemplate] = {
    SYNTAX_ERROR: PromptTemplate(
        task=SYNTAX_ERROR,
        name="tuned",
        text=(
            "Does the following query contain any syntax errors? "
            "If so, explain the error. {query}"
        ),
        quality=1.0,
    ),
    MISS_TOKEN: PromptTemplate(
        task=MISS_TOKEN,
        name="tuned",
        text=(
            "Does the following query have any syntax errors? (yes/no) "
            "If yes, is there a missing word? (yes/no) "
            "If yes, what is the type of the missing word? "
            "If yes, what is the missing word? "
            "If yes, what is the position of the missing word? "
            "(Provide the word count position where the word is missing.) "
            "{query}"
        ),
        quality=1.0,
    ),
    QUERY_EQUIV: PromptTemplate(
        task=QUERY_EQUIV,
        name="tuned",
        text=(
            "Are the following two queries equivalent (do they produce the "
            "same results on the same database schema)? "
            "If yes, why are they equivalent? {query_1} {query_2}"
        ),
        quality=1.0,
    ),
    PERFORMANCE_PRED: PromptTemplate(
        task=PERFORMANCE_PRED,
        name="tuned",
        text="Does the following query take longer than usual to run? {query}",
        quality=1.0,
    ),
    QUERY_EXP: PromptTemplate(
        task=QUERY_EXP,
        name="tuned",
        text="Provide a single statement describing this query: {query}",
        quality=1.0,
    ),
    REWRITE_EQUIVALENCE: PromptTemplate(
        task=REWRITE_EQUIVALENCE,
        name="tuned",
        text=(
            "The second query was produced by rewriting the first. "
            "Is the rewrite semantics-preserving (do both queries produce "
            "the same results on the same database schema)? "
            "If yes, name the rewrite applied. {query_1} {query_2}"
        ),
        quality=1.0,
    ),
    REWRITE_SPEEDUP: PromptTemplate(
        task=REWRITE_SPEEDUP,
        name="tuned",
        text=(
            "The second query is a semantics-preserving rewrite of the "
            "first. Would the rewritten form run faster than the original "
            "on a typical engine? {query_1} {query_2}"
        ),
        quality=1.0,
    ),
}

#: Weaker variants the tuning harness must reject.
VARIANT_PROMPTS: dict[str, list[PromptTemplate]] = {
    SYNTAX_ERROR: [
        TUNED_PROMPTS[SYNTAX_ERROR],
        PromptTemplate(
            task=SYNTAX_ERROR,
            name="terse",
            text="Any errors here? {query}",
            quality=0.88,
        ),
        PromptTemplate(
            task=SYNTAX_ERROR,
            name="rambling",
            text=(
                "Please review the following SQL carefully, considering all "
                "aspects of style, performance and correctness, and share "
                "your thoughts: {query}"
            ),
            quality=0.92,
        ),
    ],
    MISS_TOKEN: [
        TUNED_PROMPTS[MISS_TOKEN],
        PromptTemplate(
            task=MISS_TOKEN,
            name="terse",
            text="Is a word missing? {query}",
            quality=0.90,
        ),
    ],
    QUERY_EQUIV: [
        TUNED_PROMPTS[QUERY_EQUIV],
        PromptTemplate(
            task=QUERY_EQUIV,
            name="terse",
            text="Same results? {query_1} {query_2}",
            quality=0.9,
        ),
    ],
    PERFORMANCE_PRED: [
        TUNED_PROMPTS[PERFORMANCE_PRED],
        PromptTemplate(
            task=PERFORMANCE_PRED,
            name="terse",
            text="Fast or slow? {query}",
            quality=0.9,
        ),
    ],
    QUERY_EXP: [
        TUNED_PROMPTS[QUERY_EXP],
        PromptTemplate(
            task=QUERY_EXP,
            name="terse",
            text="Explain: {query}",
            quality=0.93,
        ),
    ],
    REWRITE_EQUIVALENCE: [
        TUNED_PROMPTS[REWRITE_EQUIVALENCE],
        PromptTemplate(
            task=REWRITE_EQUIVALENCE,
            name="terse",
            text="Valid rewrite? {query_1} {query_2}",
            quality=0.9,
        ),
    ],
    REWRITE_SPEEDUP: [
        TUNED_PROMPTS[REWRITE_SPEEDUP],
        PromptTemplate(
            task=REWRITE_SPEEDUP,
            name="terse",
            text="Is the rewrite faster? {query_1} {query_2}",
            quality=0.9,
        ),
    ],
}


def prompt_for(task: str) -> PromptTemplate:
    """The tuned prompt for a task."""
    try:
        return TUNED_PROMPTS[task]
    except KeyError:
        raise KeyError(f"unknown task {task!r}") from None


def variants_for(task: str) -> list[PromptTemplate]:
    """All prompt variants (tuned first) for a task."""
    try:
        return list(VARIANT_PROMPTS[task])
    except KeyError:
        raise KeyError(f"unknown task {task!r}") from None
