"""Prompt templates and the tuning harness."""

from repro.prompts.fewshot import (
    FewShotPrompt,
    build_few_shot_prompt,
    dynamic_prompt_table,
    format_example,
)
from repro.prompts.templates import (
    MISS_TOKEN,
    PERFORMANCE_PRED,
    QUERY_EQUIV,
    QUERY_EXP,
    SYNTAX_ERROR,
    TASK_NAMES,
    PromptTemplate,
    prompt_for,
    variants_for,
)
from repro.prompts.tuning import TuningResult, tune_prompt

__all__ = [
    "PromptTemplate",
    "prompt_for",
    "variants_for",
    "TASK_NAMES",
    "SYNTAX_ERROR",
    "MISS_TOKEN",
    "QUERY_EQUIV",
    "PERFORMANCE_PRED",
    "QUERY_EXP",
    "TuningResult",
    "tune_prompt",
    "FewShotPrompt",
    "build_few_shot_prompt",
    "dynamic_prompt_table",
    "format_example",
]
