"""Prompt-tuning harness (paper section 3.4, "Prompt Tuning").

The paper's process: (1) generate and refine prompt candidates, then
(2) run *mock experiments* on a small labeled subset and keep the top
performer.  ``tune_prompt`` reproduces step (2): it scores each variant
by accuracy on a trial set and returns the winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.prompts.templates import PromptTemplate, variants_for

#: A trial evaluates one (variant, instance) and returns 1.0 when the
#: extracted label matched ground truth, else 0.0.
TrialFn = Callable[[PromptTemplate, object], float]


@dataclass
class TuningResult:
    """Outcome of one mock-experiment sweep."""

    task: str
    best: PromptTemplate
    scores: dict[str, float]

    def ranking(self) -> list[tuple[str, float]]:
        return sorted(self.scores.items(), key=lambda item: -item[1])


def tune_prompt(
    task: str,
    trial_instances: Sequence[object],
    run_trial: TrialFn,
) -> TuningResult:
    """Score each variant over *trial_instances*; return the best.

    Ties break toward the earlier variant in the candidate list (the
    manually refined ones come first, as in the paper's workflow).
    """
    variants = variants_for(task)
    if not trial_instances:
        raise ValueError("prompt tuning needs at least one trial instance")
    scores: dict[str, float] = {}
    best: PromptTemplate | None = None
    best_score = -1.0
    for variant in variants:
        total = 0.0
        for instance in trial_instances:
            total += run_trial(variant, instance)
        score = total / len(trial_instances)
        scores[variant.name] = round(score, 4)
        if score > best_score:
            best = variant
            best_score = score
    assert best is not None
    return TuningResult(task=task, best=best, scores=scores)
