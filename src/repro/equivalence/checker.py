"""Execution-based equivalence checking.

The ground-truth oracle for query_equiv: two queries are judged
equivalent when they return the same bag of rows on every generated
database instance.  This is sound for non-equivalence (a witness instance
proves inequivalence) and sharp in practice for equivalence when checked
over several diverse instances — the standard testing approach when
formal equivalence proving is out of scope.
"""

from __future__ import annotations

from typing import Optional

from repro.data.sqlite_backend import ExecutionError, SqliteDatabase, results_equal
from repro.schema.model import Schema
from repro.sql import nodes as n
from repro.sql.parser import try_parse
from repro.sql.render import SQLITE, render

#: Default instance seeds; diversity across instances is what gives the
#: bag-comparison oracle its discriminating power.
DEFAULT_SEEDS: tuple[int, ...] = (11, 23, 57)


class EquivalenceChecker:
    """Caches generated instances per schema and compares query results."""

    def __init__(
        self,
        schema: Schema,
        seeds: tuple[int, ...] = DEFAULT_SEEDS,
        rows_per_table: int = 80,
        dangling_fraction: float = 0.08,
    ) -> None:
        self.schema = schema
        self.seeds = seeds
        self.rows_per_table = rows_per_table
        self.dangling_fraction = dangling_fraction
        self._databases: list[SqliteDatabase] | None = None

    @property
    def databases(self) -> list[SqliteDatabase]:
        if self._databases is None:
            self._databases = [
                SqliteDatabase.from_schema(
                    self.schema,
                    seed=seed,
                    rows_per_table=self.rows_per_table,
                    dangling_fraction=self.dangling_fraction,
                )
                for seed in self.seeds
            ]
        return self._databases

    def close(self) -> None:
        if self._databases is not None:
            for database in self._databases:
                database.close()
            self._databases = None

    def _to_sqlite_sql(self, text: str) -> Optional[str]:
        statement = try_parse(text)
        if statement is None or not isinstance(statement, n.SelectStatement):
            return None
        return render(statement, SQLITE)

    def verdict(self, first_text: str, second_text: str) -> Optional[bool]:
        """True = same results everywhere; False = witness found; None =
        undecidable (parse or execution failure)."""
        first_sql = self._to_sqlite_sql(first_text)
        second_sql = self._to_sqlite_sql(second_text)
        if first_sql is None or second_sql is None:
            return None
        for database in self.databases:
            try:
                first_result = database.execute(first_sql)
                second_result = database.execute(second_sql)
            except ExecutionError:
                return None
            if not results_equal(first_result, second_result):
                return False
        return True

    def __enter__(self) -> "EquivalenceChecker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
