"""Execution-based equivalence checking.

The ground-truth oracle for query_equiv: two queries are judged
equivalent when they return the same bag of rows on every generated
database instance.  This is sound for non-equivalence (a witness instance
proves inequivalence) and sharp in practice for equivalence when checked
over several diverse instances — the standard testing approach when
formal equivalence proving is out of scope.
"""

from __future__ import annotations

import functools
from typing import Optional

from repro.data.sqlite_backend import ExecutionError, SqliteDatabase, results_equal
from repro.schema.model import Schema
from repro.sql import nodes as n
from repro.sql.analysis_cache import try_parse_cached
from repro.sql.render import SQLITE, render


@functools.lru_cache(maxsize=8192)
def _sqlite_sql_cached(text: str) -> Optional[str]:
    """Memoized text -> SQLite-dialect SQL (None for non-SELECT/unparsable).

    Pair generation calls :meth:`EquivalenceChecker.verdict` with the
    *same* original text for every transform attempt on a query, so the
    parse+render half of a verdict is pure repetition — rendering is a
    read-only function of the (shared, cached) AST, making the result
    safe to memoize process-wide.
    """
    statement = try_parse_cached(text)
    if statement is None or not isinstance(statement, n.SelectStatement):
        return None
    return render(statement, SQLITE)

#: Default instance seeds; diversity across instances is what gives the
#: bag-comparison oracle its discriminating power.
DEFAULT_SEEDS: tuple[int, ...] = (11, 23, 57)


class EquivalenceChecker:
    """Caches generated instances per schema and compares query results."""

    def __init__(
        self,
        schema: Schema,
        seeds: tuple[int, ...] = DEFAULT_SEEDS,
        rows_per_table: int = 80,
        dangling_fraction: float = 0.08,
    ) -> None:
        self.schema = schema
        self.seeds = seeds
        self.rows_per_table = rows_per_table
        self.dangling_fraction = dangling_fraction
        self._databases: list[SqliteDatabase] | None = None

    @property
    def databases(self) -> list[SqliteDatabase]:
        if self._databases is None:
            self._databases = [
                SqliteDatabase.from_schema(
                    self.schema,
                    seed=seed,
                    rows_per_table=self.rows_per_table,
                    dangling_fraction=self.dangling_fraction,
                )
                for seed in self.seeds
            ]
        return self._databases

    def close(self) -> None:
        if self._databases is not None:
            for database in self._databases:
                database.close()
            self._databases = None

    def _to_sqlite_sql(
        self, text: str, statement: Optional[n.Statement] = None
    ) -> Optional[str]:
        if statement is not None:
            # Callers that already hold the AST (the pair generator just
            # rendered it) skip the parse-the-text round trip entirely.
            # ``render(parse(render(ast)), SQLITE) == render(ast, SQLITE)``
            # holds for every transform output (verified corpus-wide by
            # tests/equivalence/test_checker_ast_path.py), so both paths
            # produce identical verdicts.
            if not isinstance(statement, n.SelectStatement):
                return None
            return render(statement, SQLITE)
        return _sqlite_sql_cached(text)

    def verdict(
        self,
        first_text: str,
        second_text: str,
        first_statement: Optional[n.Statement] = None,
        second_statement: Optional[n.Statement] = None,
    ) -> Optional[bool]:
        """True = same results everywhere; False = witness found; None =
        undecidable (parse or execution failure).

        The optional statements are the already-parsed ASTs of the two
        texts; when given, the checker renders them directly instead of
        re-parsing text it was handed seconds after it was rendered.
        """
        first_sql = self._to_sqlite_sql(first_text, first_statement)
        second_sql = self._to_sqlite_sql(second_text, second_statement)
        if first_sql is None or second_sql is None:
            return None
        for database in self.databases:
            try:
                first_result = database.execute(first_sql)
                second_result = database.execute(second_sql)
            except ExecutionError:
                return None
            if not results_equal(first_result, second_result):
                return False
        return True

    def __enter__(self) -> "EquivalenceChecker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
