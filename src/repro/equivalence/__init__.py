"""Equivalence engine: transforms, counter-transforms, checker, pairs."""

from repro.equivalence.checker import EquivalenceChecker
from repro.equivalence.counter_transforms import (
    NON_EQUIVALENCE_TYPES,
    NonEquivalentRewrite,
    apply_non_equivalence_transform,
)
from repro.equivalence.pairs import QueryPair, generate_equivalence_pairs
from repro.equivalence.transforms import (
    EQUIVALENCE_TYPES,
    EquivalentRewrite,
    apply_equivalence_transform,
)

__all__ = [
    "EquivalenceChecker",
    "EQUIVALENCE_TYPES",
    "NON_EQUIVALENCE_TYPES",
    "EquivalentRewrite",
    "NonEquivalentRewrite",
    "apply_equivalence_transform",
    "apply_non_equivalence_transform",
    "QueryPair",
    "generate_equivalence_pairs",
]
