"""Labeled query-pair generation for the query_equiv tasks (section 3.2).

For each eligible workload query the generator produces one pair —
alternating equivalent / non-equivalent for class balance — and *verifies
the label by execution* on generated instances before accepting it:

* equivalent pairs must return identical bags on every instance;
* non-equivalent pairs must differ on at least one instance (ruling out
  rewrites that happen to be no-ops on the given data).

Queries carrying TOP/LIMIT are skipped: bag comparison after a row-limit
is plan-dependent under ties, which would poison ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.equivalence.checker import EquivalenceChecker
from repro.equivalence.counter_transforms import (
    NON_EQUIVALENCE_TYPES,
    apply_non_equivalence_transform,
)
from repro.equivalence.transforms import (
    EQUIVALENCE_TYPES,
    apply_equivalence_transform,
)
from repro.sql import nodes as n
from repro.sql.render import render
from repro.util import derive_rng
from repro.workloads.base import Workload, WorkloadQuery


@dataclass
class QueryPair:
    """A labeled (first, second) query pair."""

    pair_id: str
    workload: str
    schema_name: str
    source_query_id: str
    first_text: str
    second_text: str
    equivalent: bool
    pair_type: str
    detail: str = ""


def eligible_for_pairing(query: WorkloadQuery) -> bool:
    """SELECT statements without TOP/LIMIT (shared with the rewrite pairs)."""
    statement = query.statement
    if statement is None or not isinstance(statement, n.SelectStatement):
        return False
    body = statement.query.body
    if isinstance(body, n.SelectCore) and (
        body.top is not None or body.limit is not None
    ):
        return False
    if isinstance(body, n.Compound) and body.limit is not None:
        return False
    return True


#: Per-workload checker settings.  Join-Order needs denser, better-connected
#: instances: its MIN-aggregate join queries return a single row, so
#: non-equivalence witnesses are scarce on sparse data.
CHECKER_SETTINGS: dict[str, dict[str, object]] = {
    "join_order": {"rows_per_table": 50, "dangling_fraction": 0.02},
}


def iter_equivalence_pairs(
    source,
    seed: int = 0,
    max_pairs: Optional[int] = None,
    verify: bool = True,
    rows_per_table: int = 80,
    dangling_fraction: float = 0.08,
):
    """Yield verified pairs lazily from eligible SELECT queries.

    ``source`` is a :class:`Workload` or
    :class:`~repro.workloads.streaming.WorkloadStream`.  Pair generation
    is inherently sequential — the rng state and the alternating
    equivalent/non-equivalent polarity both carry across accepted pairs
    — so this generator IS the single source of truth: the materialised
    :func:`generate_equivalence_pairs` drains it, and the streaming
    engine chunks it, with identical output by construction.  Checker
    databases are closed when the generator is exhausted or closed.
    """
    rng = derive_rng("equivalence-pairs", source.name, seed)
    overrides = CHECKER_SETTINGS.get(source.name, {})
    rows_per_table = int(overrides.get("rows_per_table", rows_per_table))
    dangling_fraction = float(
        overrides.get("dangling_fraction", dangling_fraction)
    )
    checkers: dict[str, EquivalenceChecker] = {}
    try:
        produced = 0
        want_equivalent = True
        for query in source:
            if max_pairs is not None and produced >= max_pairs:
                break
            if query.properties.query_type not in ("SELECT", "WITH"):
                continue
            if not eligible_for_pairing(query):
                continue
            schema = source.schema_for(query)
            if verify and query.schema_name not in checkers:
                checkers[query.schema_name] = EquivalenceChecker(
                    schema,
                    rows_per_table=rows_per_table,
                    dangling_fraction=dangling_fraction,
                )
            checker = checkers.get(query.schema_name)
            pair = _build_pair(query, source, checker, rng, want_equivalent)
            if pair is None:  # try the other polarity before giving up
                pair = _build_pair(query, source, checker, rng, not want_equivalent)
            if pair is None:
                continue
            yield pair
            produced += 1
            want_equivalent = not want_equivalent
    finally:
        for checker in checkers.values():
            checker.close()


def generate_equivalence_pairs(
    workload: Workload,
    seed: int = 0,
    max_pairs: Optional[int] = None,
    verify: bool = True,
    rows_per_table: int = 80,
    dangling_fraction: float = 0.08,
) -> list[QueryPair]:
    """Build verified pairs from a workload's eligible SELECT queries."""
    return list(
        iter_equivalence_pairs(
            workload,
            seed=seed,
            max_pairs=max_pairs,
            verify=verify,
            rows_per_table=rows_per_table,
            dangling_fraction=dangling_fraction,
        )
    )


#: Non-equivalence types that are semantics-changing *by construction*:
#: for each there provably exists a database instance distinguishing the
#: pair (the formal definition of non-equivalence), so when the small
#: generated instances yield no witness — common for Join-Order queries
#: whose heavy filters empty every join — the label still stands.
SOUND_BY_CONSTRUCTION: frozenset[str] = frozenset(
    {
        "value-change",
        "comparison-op",
        "agg-function",
        "column-swap",
        "change-join-condition",
    }
)


def _build_pair(
    query: WorkloadQuery,
    workload: Workload,
    checker: Optional[EquivalenceChecker],
    rng,
    equivalent: bool,
) -> Optional[QueryPair]:
    statement = query.statement
    schema = workload.schema_for(query)
    # Rendered once: the attempt loop below retries up to 2x the type
    # pool, and every attempt needs the original text for comparison.
    original_text = render(statement)
    type_pool = EQUIVALENCE_TYPES if equivalent else NON_EQUIVALENCE_TYPES
    # Two full passes over the types: a transform may fail verification
    # with one random draw yet succeed with another (e.g. value-change
    # picking a filter that happens to be vacuous on the instances).
    tried: list[str] = []
    for _ in range(2 * len(type_pool)):
        remaining = [t for t in type_pool if t not in tried]
        if not remaining:
            tried = []
            remaining = list(type_pool)
        pair_type = rng.choice(remaining)
        tried.append(pair_type)
        if equivalent:
            rewrite = apply_equivalence_transform(
                statement,
                schema,
                rng,
                pair_type=pair_type,
                original_text=original_text,
            )
        else:
            rewrite = apply_non_equivalence_transform(
                statement,
                schema,
                rng,
                pair_type=pair_type,
                original_text=original_text,
            )
        if rewrite is None:
            continue
        if checker is not None:
            # Both ASTs are in hand (the original from the analysis
            # cache, the rewrite fresh from the transform), so the
            # checker renders them directly instead of re-parsing.
            verdict = checker.verdict(
                rewrite.original_text,
                rewrite.text,
                first_statement=statement,
                second_statement=rewrite.statement,
            )
            if equivalent and verdict is not True:
                continue
            if (
                not equivalent
                and verdict is not False
                and pair_type not in SOUND_BY_CONSTRUCTION
            ):
                continue
        return QueryPair(
            pair_id=f"{query.query_id}-pair",
            workload=workload.name,
            schema_name=query.schema_name,
            source_query_id=query.query_id,
            first_text=rewrite.original_text,
            second_text=rewrite.text,
            equivalent=equivalent,
            pair_type=rewrite.pair_type,
            detail=rewrite.detail,
        )
    return None
