"""Non-equivalence transforms (paper section 3.1, Listing 2, Q11-Q14).

Eight *subtle* rewrites that change query semantics while keeping the two
texts superficially similar — the paper stresses that pairing random
queries would make the task trivially easy.  The pair generator verifies
on live instances that each rewrite observably changes results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.schema.model import ColType, Schema
from repro.sql import nodes as n
from repro.sql.keywords import AGGREGATE_FUNCTIONS
from repro.sql.render import render
from repro.sql.transform import (
    and_leaves,
    apply_typed_transform,
    named_tables_with_labels,
    rebuild_and,
    sample_order,
)

AGG_FUNCTION = "agg-function"
CHANGE_JOIN_CONDITION = "change-join-condition"
LOGICAL_CONDITIONS = "logical-conditions"
VALUE_CHANGE = "value-change"
COMPARISON_OP = "comparison-op"
DROP_CONDITION = "drop-condition"
COLUMN_SWAP = "column-swap"
DISTINCT_CHANGE = "distinct-change"

#: The eight non-equivalence types, paper-listed ones first.
NON_EQUIVALENCE_TYPES: tuple[str, ...] = (
    AGG_FUNCTION,
    CHANGE_JOIN_CONDITION,
    LOGICAL_CONDITIONS,
    VALUE_CHANGE,
    COMPARISON_OP,
    DROP_CONDITION,
    COLUMN_SWAP,
    DISTINCT_CHANGE,
)


@dataclass
class NonEquivalentRewrite:
    """A semantics-changing rewrite plus its label.

    ``statement`` is the mutated AST ``text`` was rendered from — the
    execution checker renders it directly rather than re-parsing
    ``text``.
    """

    text: str
    pair_type: str
    detail: str
    original_text: str
    statement: Optional[n.SelectStatement] = None


_AGG_SWAPS = {"AVG": "SUM", "SUM": "AVG", "MIN": "MAX", "MAX": "MIN"}
_OP_SWAPS = {">": "<", "<": ">", ">=": "<=", "<=": ">=", "=": "<>"}


def _t_agg_function(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    calls = [
        e
        for e in n.walk(statement)
        if isinstance(e, n.FuncCall) and e.name.upper() in _AGG_SWAPS
    ]
    if not calls:
        return None
    target = rng.choice(calls)
    old = target.name.upper()
    target.name = _AGG_SWAPS[old]
    return f"aggregate {old} changed to {target.name}"


def _t_change_join_condition(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    joins = [j for j in n.walk(statement) if isinstance(j, n.Join)]
    candidates = [j for j in joins if j.kind in ("INNER", "LEFT")]
    if not candidates:
        return None
    target = rng.choice(candidates)
    old = target.kind
    target.kind = "LEFT" if old == "INNER" else "INNER"
    return f"{old} JOIN changed to {target.kind} JOIN"


def _t_logical_conditions(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    booleans = [
        e
        for e in n.walk(statement)
        if isinstance(e, n.Binary) and e.op in ("AND", "OR")
    ]
    # Only flip conditions in WHERE/HAVING trees, not join ON equalities.
    if not booleans:
        return None
    target = rng.choice(booleans)
    old = target.op
    target.op = "OR" if old == "AND" else "AND"
    return f"logical operator {old} changed to {target.op}"


def _t_value_change(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    comparisons = [
        e
        for e in n.walk(statement)
        if isinstance(e, n.Binary)
        and e.op in ("=", "<>", "<", ">", "<=", ">=")
        and isinstance(e.right, n.Literal)
        and e.right.kind == "number"
        and isinstance(e.left, n.ColumnRef)
    ]
    if not comparisons:
        return None
    target = rng.choice(comparisons)
    literal = target.right
    if isinstance(literal.value, int):
        new_value: float | int = literal.value * 10 + 7
        text = str(new_value)
    else:
        new_value = round(literal.value * 10 + 0.7, 3)
        text = str(new_value)
    target.right = n.Literal(value=new_value, kind="number", text=text)
    return f"comparison value {literal.text} changed to {text}"


def _t_comparison_op(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    comparisons = [
        e
        for e in n.walk(statement)
        if isinstance(e, n.Binary)
        and e.op in _OP_SWAPS
        and isinstance(e.right, n.Literal)
    ]
    if not comparisons:
        return None
    target = rng.choice(comparisons)
    old = target.op
    target.op = _OP_SWAPS[old]
    return f"comparison operator {old} changed to {target.op}"


def _t_drop_condition(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    cores = [c for c in n.walk(statement) if isinstance(c, n.SelectCore)]
    candidates = []
    for core in cores:
        if core.where is None:
            continue
        leaves = and_leaves(core.where)
        droppable = [
            leaf
            for leaf in leaves
            if not _is_join_condition(leaf) and len(leaves) >= 2
        ]
        if droppable:
            candidates.append((core, leaves, droppable))
    if not candidates:
        return None
    core, leaves, droppable = rng.choice(candidates)
    victim = rng.choice(droppable)
    remaining = [leaf for leaf in leaves if leaf is not victim]
    core.where = rebuild_and(remaining)
    return f"dropped condition {render(victim)!r}"


def _is_join_condition(leaf: n.Expr) -> bool:
    """Column-to-column equality (dropping those changes too much)."""
    return (
        isinstance(leaf, n.Binary)
        and leaf.op == "="
        and isinstance(leaf.left, n.ColumnRef)
        and isinstance(leaf.right, n.ColumnRef)
    )


def _t_column_swap(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    body = statement.query.body
    if not isinstance(body, n.SelectCore):
        return None
    sources = named_tables_with_labels(body)
    swappable: list[n.ColumnRef] = []
    for item in body.items:
        if isinstance(item.expr, n.ColumnRef):
            swappable.append(item.expr)
        elif isinstance(item.expr, n.FuncCall):
            # JOB-style MIN(t.col) items: swap the aggregated column.
            swappable.extend(
                arg for arg in item.expr.args if isinstance(arg, n.ColumnRef)
            )
    if not swappable or not sources:
        return None
    rng.shuffle(swappable)
    for ref in swappable:
        for label, table_name in sources:
            if ref.table is not None and ref.table.lower() != label.lower():
                continue
            table = schema.table(table_name)
            if table is None or not table.has_column(ref.name):
                continue
            original_column = table.column(ref.name)
            alternatives = [
                c
                for c in table.columns
                if c.name.lower() != ref.name.lower()
                and c.col_type is original_column.col_type
            ]
            if not alternatives:
                continue
            replacement = rng.choice(alternatives)
            old_name = ref.name
            ref.name = replacement.name
            return f"selected column {old_name!r} swapped for {replacement.name!r}"
    return None


def _t_distinct_change(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    body = statement.query.body
    if not isinstance(body, n.SelectCore):
        return None
    if any(
        isinstance(node, n.FuncCall)
        and node.name.upper() in AGGREGATE_FUNCTIONS
        for item in body.items
        for node in n.walk(item.expr)
    ):
        return None  # aggregates make DISTINCT a no-op too often
    body.distinct = not body.distinct
    return "DISTINCT toggled" if body.distinct else "DISTINCT removed"


_TRANSFORMS: dict[str, Callable] = {
    AGG_FUNCTION: _t_agg_function,
    CHANGE_JOIN_CONDITION: _t_change_join_condition,
    LOGICAL_CONDITIONS: _t_logical_conditions,
    VALUE_CHANGE: _t_value_change,
    COMPARISON_OP: _t_comparison_op,
    DROP_CONDITION: _t_drop_condition,
    COLUMN_SWAP: _t_column_swap,
    DISTINCT_CHANGE: _t_distinct_change,
}


def apply_non_equivalence_transform(
    statement: n.SelectStatement,
    schema: Schema,
    rng: random.Random,
    pair_type: Optional[str] = None,
    original_text: Optional[str] = None,
) -> Optional[NonEquivalentRewrite]:
    """Apply one semantics-changing transform to a copy of *statement*.

    Callers retrying many types for one statement can pass the
    pre-rendered *original_text* to skip the per-attempt re-render.
    """
    order = (
        [pair_type]
        if pair_type is not None
        else sample_order(rng, NON_EQUIVALENCE_TYPES)
    )
    applied = apply_typed_transform(
        statement,
        schema,
        rng,
        _TRANSFORMS,
        order,
        original_text=original_text,
        kind="non-equivalence",
    )
    if applied is None:
        return None
    return NonEquivalentRewrite(
        text=applied.text,
        pair_type=applied.name,
        detail=applied.detail,
        original_text=applied.original_text,
        statement=applied.statement,
    )
