"""Equivalence-preserving query transforms (paper section 3.1, Listing 2).

Ten rewrite types.  Each transform takes a parsed SELECT statement and
returns a rewritten copy that provably returns the same bag of rows on
every database instance — subject to the structural preconditions each
transform enforces (e.g. join-to-IN rewrites require the joined key to be
unique).  The pair generator additionally *verifies* every pair on live
SQLite instances before labeling it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.schema.model import Schema
from repro.sql import nodes as n
from repro.sql.transform import (
    and_leaves,
    apply_typed_transform,
    outer_core,
    qualify_core_refs,
    qualify_shallow,
    rebuild_and,
    replace_expr,
    sample_order,
)

SWAP_SUBQUERIES = "swap-subqueries"
JOIN_NESTED = "join-nested"
NESTED_JOIN = "nested-join"
CTE = "cte"
REORDER_CONDITIONS = "reorder-conditions"
BETWEEN_SPLIT = "between-split"
IN_EXPANSION = "in-expansion"
JOIN_COMMUTE = "join-commute"
ALIAS_RENAME = "alias-rename"
COMPARISON_FLIP = "comparison-flip"

#: The ten equivalence types, paper-listed ones first.
EQUIVALENCE_TYPES: tuple[str, ...] = (
    SWAP_SUBQUERIES,
    JOIN_NESTED,
    NESTED_JOIN,
    CTE,
    REORDER_CONDITIONS,
    BETWEEN_SPLIT,
    IN_EXPANSION,
    JOIN_COMMUTE,
    ALIAS_RENAME,
    COMPARISON_FLIP,
)


@dataclass
class EquivalentRewrite:
    """A rewritten query plus its transform label.

    ``statement`` is the mutated AST ``text`` was rendered from — the
    execution checker renders it directly rather than re-parsing
    ``text``.
    """

    text: str
    pair_type: str
    detail: str
    original_text: str
    statement: Optional[n.SelectStatement] = None


# ---------------------------------------------------------------------------
# Shared helpers (tree walking/rebuilding and scope qualification live in
# repro.sql.transform; only precondition probes are local to this module)
# ---------------------------------------------------------------------------


def _membership_conjuncts(core: n.SelectCore) -> list[n.InSubquery]:
    """Non-negated IN-subqueries appearing as top-level conjuncts."""
    if core.where is None:
        return []
    return [
        leaf
        for leaf in and_leaves(core.where)
        if isinstance(leaf, n.InSubquery) and not leaf.negated
    ]


def _simple_subquery(query: n.Query) -> Optional[tuple[n.SelectCore, n.NamedTable]]:
    """A single-core, single-table, single-column subquery (or None)."""
    if query.ctes:
        return None
    body = query.body
    if not isinstance(body, n.SelectCore):
        return None
    if len(body.items) != 1 or body.group_by or body.having:
        return None
    if body.top is not None or body.limit is not None or body.distinct:
        return None
    if not isinstance(body.items[0].expr, n.ColumnRef):
        return None
    if len(body.from_items) != 1 or not isinstance(body.from_items[0], n.NamedTable):
        return None
    return body, body.from_items[0]


def _single_named_table(core: n.SelectCore) -> Optional[n.NamedTable]:
    if len(core.from_items) == 1 and isinstance(core.from_items[0], n.NamedTable):
        return core.from_items[0]
    return None


def _collect_labels(statement: n.Statement) -> set[str]:
    labels: set[str] = set()
    for node in n.walk(statement):
        if isinstance(node, n.NamedTable):
            labels.add((node.alias or node.name).lower())
    return labels


# ---------------------------------------------------------------------------
# Transforms.  Each mutates a deep copy and returns a detail string, or
# None when inapplicable.
# ---------------------------------------------------------------------------


def _t_reorder_conditions(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    cores = [c for c in n.walk(statement) if isinstance(c, n.SelectCore)]
    candidates = [
        core
        for core in cores
        if core.where is not None and len(and_leaves(core.where)) >= 2
    ]
    if not candidates:
        return None
    core = rng.choice(candidates)
    leaves = and_leaves(core.where)
    original = list(leaves)
    for _ in range(6):
        rng.shuffle(leaves)
        if leaves != original:
            break
    else:
        leaves.reverse()
    core.where = rebuild_and(leaves)
    return f"shuffled {len(leaves)} WHERE conjuncts"


def _t_cte(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    if statement.query.ctes:
        return None
    inner = n.Query(body=statement.query.body)
    name = f"base_{rng.randint(1, 99)}"
    outer = n.SelectCore(
        items=[n.SelectItem(expr=n.Star())],
        from_items=[n.NamedTable(name=name)],
    )
    statement.query = n.Query(
        body=outer, ctes=[n.CommonTableExpr(name=name, query=inner)]
    )
    return f"wrapped the query in CTE {name!r}"


def _t_join_nested(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    core = outer_core(statement)
    if core is None or len(core.from_items) != 1:
        return None
    join = core.from_items[0]
    if not isinstance(join, n.Join) or join.kind != "INNER":
        return None
    right = join.right
    if not isinstance(right, n.NamedTable):
        return None
    condition = join.condition
    if not (
        isinstance(condition, n.Binary)
        and condition.op == "="
        and isinstance(condition.left, n.ColumnRef)
        and isinstance(condition.right, n.ColumnRef)
    ):
        return None
    right_label = (right.alias or right.name).lower()
    if (condition.right.table or "").lower() == right_label:
        left_key, right_key = condition.left, condition.right
    elif (condition.left.table or "").lower() == right_label:
        left_key, right_key = condition.right, condition.left
    else:
        return None
    # Bag-safety: the joined key must be unique on the right side.
    right_table = schema.table(right.name)
    if right_table is None:
        return None
    key_column = right_table.column(right_key.name)
    if key_column is None or not key_column.primary_key:
        return None
    # The right source must not be referenced outside the ON condition.
    for node in _refs_outside_join_condition(core, join):
        if (node.table or "").lower() == right_label:
            return None
    subquery = n.Query(
        body=n.SelectCore(
            items=[n.SelectItem(expr=n.ColumnRef(name=right_key.name))],
            from_items=[n.NamedTable(name=right.name)],
        )
    )
    core.from_items[0] = join.left
    membership = n.InSubquery(expr=left_key, query=subquery)
    core.where = (
        membership
        if core.where is None
        else n.Binary(op="AND", left=core.where, right=membership)
    )
    return f"join with {right.name!r} rewritten as IN-subquery"


def _refs_outside_join_condition(
    core: n.SelectCore, join: n.Join
) -> list[n.ColumnRef]:
    skip = set()
    if join.condition is not None:
        skip = {id(node) for node in n.walk(join.condition)}
    refs = []
    for node in n.walk(core):
        if isinstance(node, n.ColumnRef) and id(node) not in skip:
            refs.append(node)
    return refs


def _t_nested_join(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    core = outer_core(statement)
    if core is None:
        return None
    outer_table = _single_named_table(core)
    if outer_table is None:
        return None
    memberships = _membership_conjuncts(core)
    for membership in memberships:
        simple = _simple_subquery(membership.query)
        if simple is None:
            continue
        sub_core, sub_table = simple
        if sub_core.where is not None and any(
            isinstance(leaf, n.InSubquery) for leaf in and_leaves(sub_core.where)
        ):
            continue  # deeper nests stay as nests; keep the rewrite local
        inner_schema_table = schema.table(sub_table.name)
        if inner_schema_table is None:
            continue
        inner_key = sub_core.items[0].expr
        key_column = inner_schema_table.column(inner_key.name)
        if key_column is None or not key_column.primary_key:
            continue
        if not isinstance(membership.expr, n.ColumnRef):
            continue
        # Qualify the outer level so the new source cannot capture refs.
        outer_alias = outer_table.alias or "t0"
        outer_table.alias = outer_alias
        qualify_core_refs(core, outer_alias)
        join_alias = "jt"
        condition = n.Binary(
            op="=",
            left=membership.expr,
            right=n.ColumnRef(name=inner_key.name, table=join_alias),
        )
        inner_where = sub_core.where
        if inner_where is not None:
            qualify_shallow(inner_where, join_alias)
        core.from_items[0] = n.Join(
            left=n.NamedTable(name=outer_table.name, alias=outer_alias),
            right=n.NamedTable(name=sub_table.name, alias=join_alias),
            kind="INNER",
            condition=condition,
        )
        leaves = [
            leaf for leaf in and_leaves(core.where) if leaf is not membership
        ]
        if inner_where is not None:
            leaves.append(inner_where)
        core.where = rebuild_and(leaves)
        return f"IN-subquery on {sub_table.name!r} rewritten as join"
    return None


def _t_swap_subqueries(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    """IN <-> correlated EXISTS (the membership test swaps scope)."""
    cores = [c for c in n.walk(statement) if isinstance(c, n.SelectCore)]
    for core in cores:
        outer_table = _single_named_table(core)
        if outer_table is None or core.where is None:
            continue
        for membership in and_leaves(core.where):
            if not isinstance(membership, n.InSubquery):
                continue
            simple = _simple_subquery(membership.query)
            if simple is None:
                continue
            sub_core, sub_table = simple
            if not isinstance(membership.expr, n.ColumnRef):
                continue
            outer_alias = outer_table.alias or "t0"
            outer_table.alias = outer_alias
            qualify_core_refs(core, outer_alias)
            inner_label = sub_table.alias or sub_table.name
            inner_key = sub_core.items[0].expr
            correlation = n.Binary(
                op="=",
                left=n.ColumnRef(name=inner_key.name, table=inner_label),
                right=membership.expr,
            )
            new_core = n.SelectCore(
                items=[
                    n.SelectItem(
                        expr=n.Literal(value=1, kind="number", text="1")
                    )
                ],
                from_items=[sub_table],
                where=(
                    n.Binary(op="AND", left=sub_core.where, right=correlation)
                    if sub_core.where is not None
                    else correlation
                ),
            )
            if sub_core.where is not None:
                qualify_shallow(sub_core.where, inner_label)
            replacement = n.Exists(
                query=n.Query(body=new_core), negated=membership.negated
            )
            if replace_expr(core, membership, replacement):
                return (
                    f"IN over {sub_table.name!r} swapped to correlated EXISTS"
                )
    return None


def _t_between_split(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    betweens = [e for e in n.walk(statement) if isinstance(e, n.Between)]
    if not betweens:
        return None
    target = rng.choice(betweens)
    if target.negated:
        replacement: n.Expr = n.Binary(
            op="OR",
            left=n.Binary(op="<", left=target.expr, right=target.low),
            right=n.Binary(
                op=">", left=n.clone(target.expr), right=target.high
            ),
        )
    else:
        replacement = n.Binary(
            op="AND",
            left=n.Binary(op=">=", left=target.expr, right=target.low),
            right=n.Binary(
                op="<=", left=n.clone(target.expr), right=target.high
            ),
        )
    if replace_expr(statement, target, replacement):
        return "BETWEEN split into two comparisons"
    return None


def _t_in_expansion(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    in_lists = [
        e
        for e in n.walk(statement)
        if isinstance(e, n.InList) and 1 <= len(e.items) <= 6
    ]
    if not in_lists:
        return None
    target = rng.choice(in_lists)
    op = "<>" if target.negated else "="
    joiner = "AND" if target.negated else "OR"
    parts = [
        n.Binary(op=op, left=n.clone(target.expr), right=item)
        for item in target.items
    ]
    combined = parts[0]
    for part in parts[1:]:
        combined = n.Binary(op=joiner, left=combined, right=part)
    if replace_expr(statement, target, combined):
        return f"IN list expanded into {joiner} chain of {len(parts)}"
    return None


def _t_join_commute(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    if any(
        isinstance(item.expr, n.Star)
        for core in n.walk(statement)
        if isinstance(core, n.SelectCore)
        for item in core.items
    ):
        return None  # '*' column order would change
    joins = [
        j
        for j in n.walk(statement)
        if isinstance(j, n.Join)
        and j.kind == "INNER"
        and not isinstance(j.left, n.Join)
    ]
    if not joins:
        return None
    target = rng.choice(joins)
    target.left, target.right = target.right, target.left
    return "INNER JOIN operands swapped"


def _t_alias_rename(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    tables = [
        t for t in n.walk(statement) if isinstance(t, n.NamedTable) and t.alias
    ]
    labels = _collect_labels(statement)
    for table in tables:
        alias = table.alias
        definitions = sum(
            1
            for t in n.walk(statement)
            if isinstance(t, n.NamedTable)
            and (t.alias or t.name).lower() == alias.lower()
        )
        if definitions != 1:
            continue
        new_alias = f"{alias}_r"
        while new_alias.lower() in labels:
            new_alias += "x"
        for node in n.walk(statement):
            if (
                isinstance(node, n.ColumnRef)
                and node.table is not None
                and node.table.lower() == alias.lower()
            ):
                node.table = new_alias
        table.alias = new_alias
        return f"alias {alias!r} renamed to {new_alias!r}"
    return None


def _t_comparison_flip(
    statement: n.SelectStatement, schema: Schema, rng: random.Random
) -> Optional[str]:
    mirror = {"=": "=", "<>": "<>", "<": ">", ">": "<", "<=": ">=", ">=": "<="}
    comparisons = [
        e
        for e in n.walk(statement)
        if isinstance(e, n.Binary)
        and e.op in mirror
        and isinstance(e.left, n.ColumnRef)
        and isinstance(e.right, n.Literal)
    ]
    if not comparisons:
        return None
    target = rng.choice(comparisons)
    target.left, target.right = target.right, target.left
    target.op = mirror[target.op]
    return "comparison operands mirrored"


_TRANSFORMS: dict[str, Callable] = {
    SWAP_SUBQUERIES: _t_swap_subqueries,
    JOIN_NESTED: _t_join_nested,
    NESTED_JOIN: _t_nested_join,
    CTE: _t_cte,
    REORDER_CONDITIONS: _t_reorder_conditions,
    BETWEEN_SPLIT: _t_between_split,
    IN_EXPANSION: _t_in_expansion,
    JOIN_COMMUTE: _t_join_commute,
    ALIAS_RENAME: _t_alias_rename,
    COMPARISON_FLIP: _t_comparison_flip,
}


def apply_equivalence_transform(
    statement: n.SelectStatement,
    schema: Schema,
    rng: random.Random,
    pair_type: Optional[str] = None,
    original_text: Optional[str] = None,
) -> Optional[EquivalentRewrite]:
    """Apply one equivalence transform to a copy of *statement*.

    With *pair_type* None, applicable transforms are tried in random order.
    Returns None when nothing applies.  Callers retrying many types for
    one statement can pass the pre-rendered *original_text* to skip the
    per-attempt re-render.
    """
    order = (
        [pair_type]
        if pair_type is not None
        else sample_order(rng, EQUIVALENCE_TYPES)
    )
    applied = apply_typed_transform(
        statement,
        schema,
        rng,
        _TRANSFORMS,
        order,
        original_text=original_text,
        kind="equivalence",
    )
    if applied is None:
        return None
    return EquivalentRewrite(
        text=applied.text,
        pair_type=applied.name,
        detail=applied.detail,
        original_text=applied.original_text,
        statement=applied.statement,
    )
