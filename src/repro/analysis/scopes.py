"""Name-resolution scopes for the semantic analyzer.

A :class:`Scope` models what one SELECT block can see: its FROM sources
(base tables, derived tables, CTEs), plus everything visible in enclosing
blocks (for correlated subqueries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.schema.model import ColType, Schema, Table
from repro.sql import nodes as n


@dataclass
class Source:
    """One FROM-clause source visible inside a scope.

    ``label`` is the name a qualifier must use (the alias when present,
    else the table/CTE name).  ``table`` is set for base tables;
    ``columns`` carries best-effort output columns for derived tables
    and CTEs (type None when unknown).
    """

    label: str
    table: Optional[Table] = None
    columns: dict[str, Optional[ColType]] = field(default_factory=dict)

    def column_type(self, name: str) -> Optional[ColType]:
        if self.table is not None:
            column = self.table.column(name)
            return column.col_type if column is not None else None
        return self.columns.get(name.lower())

    def has_column(self, name: str) -> bool:
        if self.table is not None:
            return self.table.has_column(name)
        return name.lower() in self.columns

    def all_columns(self) -> list[str]:
        if self.table is not None:
            return self.table.column_names
        return list(self.columns)


@dataclass
class Scope:
    """Visibility context for one SELECT block."""

    sources: list[Source] = field(default_factory=list)
    parent: Optional["Scope"] = None

    def find_source(self, label: str) -> Optional[Source]:
        """Resolve a qualifier, walking outward through parent scopes."""
        lowered = label.lower()
        for source in self.sources:
            if source.label.lower() == lowered:
                return source
        if self.parent is not None:
            return self.parent.find_source(label)
        return None

    def sources_with_column(self, column_name: str) -> list[Source]:
        """Sources *in this scope only* that expose *column_name*.

        Ambiguity is judged per-scope: an unqualified column matching two
        sources of the same SELECT is ambiguous, but one matching a local
        source and an outer source is not (local wins, as in SQL).
        """
        return [s for s in self.sources if s.has_column(column_name)]

    def resolve_column(
        self, column_name: str
    ) -> tuple[Optional[Source], Optional[ColType]]:
        """Find the source for an unqualified column, searching outward."""
        scope: Optional[Scope] = self
        while scope is not None:
            matches = scope.sources_with_column(column_name)
            if matches:
                return matches[0], matches[0].column_type(column_name)
            scope = scope.parent
        return None, None


def build_sources(
    schema: Schema,
    from_items: list[n.TableRef],
    cte_columns: dict[str, dict[str, Optional[ColType]]],
) -> list[Source]:
    """Flatten a FROM clause into Source entries.

    ``cte_columns`` maps visible CTE names to their output columns; CTE
    references become column-backed sources rather than base tables.
    """
    sources: list[Source] = []

    def add(ref: n.TableRef) -> None:
        if isinstance(ref, n.NamedTable):
            label = ref.alias or ref.name
            lowered = ref.name.lower()
            if lowered in cte_columns:
                sources.append(Source(label=label, columns=cte_columns[lowered]))
                return
            sources.append(Source(label=label, table=schema.table(ref.name)))
        elif isinstance(ref, n.DerivedTable):
            sources.append(
                Source(
                    label=ref.alias,
                    columns=derive_output_columns(schema, ref.query, cte_columns),
                )
            )
        elif isinstance(ref, n.Join):
            add(ref.left)
            add(ref.right)

    for item in from_items:
        add(item)
    return sources


def derive_output_columns(
    schema: Schema,
    query: n.Query,
    cte_columns: dict[str, dict[str, Optional[ColType]]],
) -> dict[str, Optional[ColType]]:
    """Best-effort output column map of a subquery or CTE body."""
    visible = dict(cte_columns)
    for cte in query.ctes:
        visible[cte.name.lower()] = derive_output_columns(schema, cte.query, visible)
    body = query.body
    while isinstance(body, n.Compound):
        body = body.left
    inner_sources = build_sources(schema, body.from_items, visible)
    columns: dict[str, Optional[ColType]] = {}
    for item in body.items:
        if isinstance(item.expr, n.Star):
            for source in inner_sources:
                if item.expr.table and source.label.lower() != item.expr.table.lower():
                    continue
                for name in source.all_columns():
                    columns[name.lower()] = source.column_type(name)
            continue
        name = item.alias
        if name is None and isinstance(item.expr, n.ColumnRef):
            name = item.expr.name
        if name is None:
            continue
        col_type: Optional[ColType] = None
        if isinstance(item.expr, n.ColumnRef):
            if item.expr.table:
                for source in inner_sources:
                    if source.label.lower() == item.expr.table.lower():
                        col_type = source.column_type(item.expr.name)
                        break
            else:
                for source in inner_sources:
                    if source.has_column(item.expr.name):
                        col_type = source.column_type(item.expr.name)
                        break
        columns[name.lower()] = col_type
    return columns
