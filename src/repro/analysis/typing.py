"""Expression type inference for the semantic analyzer.

Inference is deliberately conservative: ``None`` means "unknown", and the
analyzer never reports a condition-mismatch unless both sides have known,
provably incompatible types.  That keeps the oracle free of false
positives on clean workload queries.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.schema.model import ColType
from repro.sql import nodes as n
from repro.sql.keywords import AGGREGATE_FUNCTIONS

#: Known scalar function result types.
_FUNCTION_RESULTS: dict[str, ColType] = {
    "ABS": ColType.FLOAT,
    "ROUND": ColType.FLOAT,
    "FLOOR": ColType.FLOAT,
    "CEILING": ColType.FLOAT,
    "SQRT": ColType.FLOAT,
    "POWER": ColType.FLOAT,
    "LOG": ColType.FLOAT,
    "LOG10": ColType.FLOAT,
    "EXP": ColType.FLOAT,
    "SIN": ColType.FLOAT,
    "COS": ColType.FLOAT,
    "TAN": ColType.FLOAT,
    "RADIANS": ColType.FLOAT,
    "DEGREES": ColType.FLOAT,
    "SIGN": ColType.INT,
    "LEN": ColType.INT,
    "LENGTH": ColType.INT,
    "CHARINDEX": ColType.INT,
    "DATEDIFF": ColType.INT,
    "UPPER": ColType.TEXT,
    "LOWER": ColType.TEXT,
    "LTRIM": ColType.TEXT,
    "RTRIM": ColType.TEXT,
    "TRIM": ColType.TEXT,
    "SUBSTRING": ColType.TEXT,
    "SUBSTR": ColType.TEXT,
    "REPLACE": ColType.TEXT,
    "CONCAT": ColType.TEXT,
    "STR": ColType.TEXT,
    "GETDATE": ColType.DATE,
    "YEAR": ColType.INT,
    "MONTH": ColType.INT,
    "DAY": ColType.INT,
}

#: Resolver signature: a ColumnRef to its (possibly unknown) column type.
ColumnResolver = Callable[[n.ColumnRef], Optional[ColType]]


def literal_type(literal: n.Literal) -> Optional[ColType]:
    if literal.kind == "number":
        if isinstance(literal.value, int):
            return ColType.INT
        return ColType.FLOAT
    if literal.kind == "string":
        return ColType.TEXT
    if literal.kind == "boolean":
        return ColType.BOOL
    return None  # NULL compares with anything


def _cast_type(type_name: str) -> Optional[ColType]:
    base = type_name.split("(")[0].upper()
    if base in ("INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT", "BIT"):
        return ColType.INT
    if base in ("FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC"):
        return ColType.FLOAT
    if base in ("VARCHAR", "NVARCHAR", "CHAR", "TEXT"):
        return ColType.TEXT
    if base in ("DATE", "DATETIME", "TIME"):
        return ColType.DATE
    if base == "BOOLEAN":
        return ColType.BOOL
    return None


def infer_type(expr: n.Expr, resolve: ColumnResolver) -> Optional[ColType]:
    """Infer the value type of *expr* (``None`` when unknown)."""
    if isinstance(expr, n.Literal):
        return literal_type(expr)
    if isinstance(expr, n.ColumnRef):
        return resolve(expr)
    if isinstance(expr, n.Cast):
        return _cast_type(expr.type_name)
    if isinstance(expr, n.Unary):
        if expr.op in ("-", "+"):
            inner = infer_type(expr.operand, resolve)
            return inner if inner is not None and inner.is_numeric else inner
        return ColType.BOOL
    if isinstance(expr, n.Binary):
        if expr.op in ("AND", "OR") or expr.op in ("=", "<>", "!=", "<", ">", "<=", ">="):
            return ColType.BOOL
        if expr.op == "||":
            return ColType.TEXT
        left = infer_type(expr.left, resolve)
        right = infer_type(expr.right, resolve)
        if left is ColType.FLOAT or right is ColType.FLOAT or expr.op == "/":
            return ColType.FLOAT
        if left is ColType.INT and right is ColType.INT:
            return ColType.INT
        if left is None or right is None:
            return None
        return ColType.FLOAT
    if isinstance(expr, n.FuncCall):
        upper = expr.name.upper()
        if upper == "COUNT":
            return ColType.INT
        if upper in AGGREGATE_FUNCTIONS:
            if expr.args:
                arg = infer_type(expr.args[0], resolve)
                return arg if arg is not None else ColType.FLOAT
            return ColType.FLOAT
        if upper in ("COALESCE", "ISNULL", "IFNULL", "NULLIF"):
            for arg in expr.args:
                inferred = infer_type(arg, resolve)
                if inferred is not None:
                    return inferred
            return None
        if upper in _FUNCTION_RESULTS:
            return _FUNCTION_RESULTS[upper]
        if expr.schema:  # SDSS dbo.f* UDFs are numeric
            return ColType.FLOAT
        return None
    if isinstance(expr, n.Case):
        for _, result in expr.whens:
            inferred = infer_type(result, resolve)
            if inferred is not None:
                return inferred
        if expr.default is not None:
            return infer_type(expr.default, resolve)
        return None
    if isinstance(
        expr, (n.Between, n.InList, n.InSubquery, n.Exists, n.Like, n.IsNull)
    ):
        return ColType.BOOL
    if isinstance(expr, n.ScalarSubquery):
        return None  # handled separately by the cardinality check
    if isinstance(expr, (n.Variable, n.Star)):
        return None
    return None


def types_comparable(
    left: Optional[ColType], right: Optional[ColType]
) -> bool:
    """True unless both types are known and provably incompatible."""
    if left is None or right is None:
        return True
    return left.compatible_with(right)
