"""Semantic analysis: name resolution, typing, violations, complexity."""

from repro.analysis.complexity import complexity_score, property_complexity
from repro.analysis.semantics import (
    AGGR_ATTR,
    AGGR_HAVING,
    ALIAS_AMBIGUOUS,
    ALIAS_UNDEFINED,
    CONDITION_MISMATCH,
    NESTED_MISMATCH,
    PAPER_ERROR_TYPES,
    UNKNOWN_COLUMN,
    UNKNOWN_TABLE,
    SemanticAnalyzer,
    Violation,
    paper_violations,
)

__all__ = [
    "SemanticAnalyzer",
    "Violation",
    "paper_violations",
    "PAPER_ERROR_TYPES",
    "AGGR_ATTR",
    "AGGR_HAVING",
    "NESTED_MISMATCH",
    "CONDITION_MISMATCH",
    "ALIAS_UNDEFINED",
    "ALIAS_AMBIGUOUS",
    "UNKNOWN_TABLE",
    "UNKNOWN_COLUMN",
    "complexity_score",
    "property_complexity",
]
