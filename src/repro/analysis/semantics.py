"""Semantic analyzer: the ground-truth oracle for the paper's error types.

The six "syntax error" types of section 3.1 are semantic violations that
parse fine; this module detects them against a schema:

* ``aggr-attr`` — aggregates mixed with ungrouped bare columns;
* ``aggr-having`` — HAVING filtering bare (non-aggregated, ungrouped) columns;
* ``nested-mismatch`` — a subquery used in scalar position that may return
  multiple rows (or multiple columns);
* ``condition-mismatch`` — comparisons between provably incompatible types;
* ``alias-undefined`` — a qualifier that no FROM source defines;
* ``alias-ambiguous`` — an unqualified column matching several sources.

Two auxiliary codes (``unknown-table``, ``unknown-column``) support other
parts of the pipeline and are excluded from the "paper six" by
:func:`paper_violations`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.scopes import Scope, Source, derive_output_columns
from repro.analysis.typing import infer_type, literal_type, types_comparable
from repro.schema.model import ColType, Schema
from repro.sql import nodes as n
from repro.sql.keywords import AGGREGATE_FUNCTIONS
from repro.sql.render import render

AGGR_ATTR = "aggr-attr"
AGGR_HAVING = "aggr-having"
NESTED_MISMATCH = "nested-mismatch"
CONDITION_MISMATCH = "condition-mismatch"
ALIAS_UNDEFINED = "alias-undefined"
ALIAS_AMBIGUOUS = "alias-ambiguous"
UNKNOWN_TABLE = "unknown-table"
UNKNOWN_COLUMN = "unknown-column"

#: The six error types studied in the paper (Listing 1).
PAPER_ERROR_TYPES: tuple[str, ...] = (
    AGGR_ATTR,
    AGGR_HAVING,
    NESTED_MISMATCH,
    CONDITION_MISMATCH,
    ALIAS_UNDEFINED,
    ALIAS_AMBIGUOUS,
)


@dataclass(frozen=True)
class Violation:
    """One detected semantic violation."""

    code: str
    message: str
    clause: str = ""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        where = f" [{self.clause}]" if self.clause else ""
        return f"{self.code}{where}: {self.message}"


def paper_violations(violations: list[Violation]) -> list[Violation]:
    """Filter to the six error types the paper's tasks use."""
    return [v for v in violations if v.code in PAPER_ERROR_TYPES]


@dataclass
class _OpaqueSource(Source):
    """Source for an unknown table: accepts any column with unknown type."""

    def has_column(self, name: str) -> bool:  # noqa: ARG002
        return True

    def column_type(self, name: str) -> Optional[ColType]:  # noqa: ARG002
        return None

    def all_columns(self) -> list[str]:
        return []


class SemanticAnalyzer:
    """Checks statements against a schema and reports violations."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    # -- public API ----------------------------------------------------------

    def analyze(self, statement: n.Statement) -> list[Violation]:
        """Analyze one statement, returning all detected violations."""
        violations: list[Violation] = []
        if isinstance(statement, n.SelectStatement):
            self._query(statement.query, None, {}, violations)
        elif isinstance(statement, n.CreateView):
            self._query(statement.query, None, {}, violations)
        elif isinstance(statement, n.CreateTable) and statement.as_query is not None:
            self._query(statement.as_query, None, {}, violations)
        elif isinstance(statement, (n.Insert, n.Update, n.Delete)):
            self._dml(statement, violations)
        return violations

    def analyze_sql(self, text: str) -> list[Violation]:
        """Parse and analyze SQL text (parse failures yield no violations).

        Parsing goes through the process-wide memo layer; the analyzer
        never mutates the (shared) statement.
        """
        from repro.sql.analysis_cache import try_parse_cached

        statement = try_parse_cached(text)
        if statement is None:
            return []
        return self.analyze(statement)

    def is_clean(self, statement: n.Statement) -> bool:
        """True when the statement has none of the paper's six violations."""
        return not paper_violations(self.analyze(statement))

    # -- traversal -----------------------------------------------------------

    def _query(
        self,
        query: n.Query,
        parent: Optional[Scope],
        cte_columns: dict[str, dict[str, Optional[ColType]]],
        out: list[Violation],
    ) -> None:
        visible = dict(cte_columns)
        for cte in query.ctes:
            self._query(cte.query, parent, visible, out)
            visible[cte.name.lower()] = derive_output_columns(
                self.schema, cte.query, visible
            )
        self._body(query.body, parent, visible, out)

    def _body(
        self,
        body: n.QueryBody,
        parent: Optional[Scope],
        cte_columns: dict[str, dict[str, Optional[ColType]]],
        out: list[Violation],
    ) -> None:
        if isinstance(body, n.Compound):
            self._body(body.left, parent, cte_columns, out)
            self._body(body.right, parent, cte_columns, out)
            return
        self._select_core(body, parent, cte_columns, out)

    def _select_core(
        self,
        core: n.SelectCore,
        parent: Optional[Scope],
        cte_columns: dict[str, dict[str, Optional[ColType]]],
        out: list[Violation],
    ) -> None:
        scope = Scope(parent=parent)
        for ref in core.from_items:
            self._add_sources(ref, scope, cte_columns, out)
        select_aliases = {
            item.alias.lower() for item in core.items if item.alias
        }

        # Resolve and type-check every clause.
        for item in core.items:
            self._check_expr(item.expr, scope, core, cte_columns, out, "SELECT")
        for ref in core.from_items:
            self._check_join_conditions(ref, scope, core, cte_columns, out)
        if core.where is not None:
            self._check_expr(core.where, scope, core, cte_columns, out, "WHERE")
        for expr in core.group_by:
            self._check_expr(
                expr, scope, core, cte_columns, out, "GROUP BY", select_aliases
            )
        if core.having is not None:
            self._check_expr(
                core.having, scope, core, cte_columns, out, "HAVING", select_aliases
            )
        for item in core.order_by:
            self._check_expr(
                item.expr, scope, core, cte_columns, out, "ORDER BY", select_aliases
            )

        self._check_aggregation(core, out)

    def _add_sources(
        self,
        ref: n.TableRef,
        scope: Scope,
        cte_columns: dict[str, dict[str, Optional[ColType]]],
        out: list[Violation],
    ) -> None:
        if isinstance(ref, n.NamedTable):
            label = ref.alias or ref.name
            lowered = ref.name.lower()
            if lowered in cte_columns:
                scope.sources.append(
                    Source(label=label, columns=cte_columns[lowered])
                )
                return
            table = self.schema.table(ref.name)
            if table is None:
                out.append(
                    Violation(
                        UNKNOWN_TABLE,
                        f"table {ref.name!r} is not in schema "
                        f"{self.schema.name!r}",
                        "FROM",
                    )
                )
                scope.sources.append(_OpaqueSource(label=label))
                return
            scope.sources.append(Source(label=label, table=table))
        elif isinstance(ref, n.DerivedTable):
            self._query(ref.query, scope, cte_columns, out)
            scope.sources.append(
                Source(
                    label=ref.alias,
                    columns=derive_output_columns(
                        self.schema, ref.query, cte_columns
                    ),
                )
            )
        elif isinstance(ref, n.Join):
            self._add_sources(ref.left, scope, cte_columns, out)
            self._add_sources(ref.right, scope, cte_columns, out)

    def _check_join_conditions(
        self,
        ref: n.TableRef,
        scope: Scope,
        core: n.SelectCore,
        cte_columns: dict[str, dict[str, Optional[ColType]]],
        out: list[Violation],
    ) -> None:
        if isinstance(ref, n.Join):
            self._check_join_conditions(ref.left, scope, core, cte_columns, out)
            self._check_join_conditions(ref.right, scope, core, cte_columns, out)
            if ref.condition is not None:
                self._check_expr(ref.condition, scope, core, cte_columns, out, "ON")

    # -- expression checks ----------------------------------------------------

    def _check_expr(
        self,
        expr: n.Expr,
        scope: Scope,
        core: n.SelectCore,
        cte_columns: dict[str, dict[str, Optional[ColType]]],
        out: list[Violation],
        clause: str,
        extra_names: Optional[set[str]] = None,
    ) -> None:
        resolve = self._resolver(scope, out, clause, extra_names)
        stack: list[n.Expr] = [expr]
        while stack:
            current = stack.pop()
            if isinstance(current, n.ColumnRef):
                resolve(current)
            elif isinstance(current, n.Binary):
                if current.op in ("=", "<>", "!=", "<", ">", "<=", ">="):
                    self._check_comparison(current, scope, out, clause, extra_names)
                stack.append(current.left)
                stack.append(current.right)
            elif isinstance(current, n.Between):
                self._check_between(current, scope, out, clause, extra_names)
                stack.extend([current.expr, current.low, current.high])
            elif isinstance(current, n.InList):
                self._check_in_list(current, scope, out, clause, extra_names)
                stack.append(current.expr)
                stack.extend(current.items)
            elif isinstance(current, n.Like):
                self._check_like(current, scope, out, clause, extra_names)
                stack.append(current.expr)
                stack.append(current.pattern)
            elif isinstance(current, n.InSubquery):
                self._check_in_subquery(current, scope, cte_columns, out, clause)
                stack.append(current.expr)
            elif isinstance(current, (n.ScalarSubquery, n.Exists)):
                self._query(current.query, scope, cte_columns, out)
            elif isinstance(current, n.Case):
                if current.operand is not None:
                    stack.append(current.operand)
                for condition, result in current.whens:
                    stack.append(condition)
                    stack.append(result)
                if current.default is not None:
                    stack.append(current.default)
            else:
                for child in current.children():
                    if isinstance(child, n.Query):
                        self._query(child, scope, cte_columns, out)
                    elif isinstance(child, n.Expr):
                        stack.append(child)

    def _resolver(
        self,
        scope: Scope,
        out: list[Violation],
        clause: str,
        extra_names: Optional[set[str]] = None,
    ):
        """Build a ColumnRef resolver that also records violations."""

        def resolve(ref: n.ColumnRef) -> Optional[ColType]:
            if ref.table is not None:
                source = scope.find_source(ref.table)
                if source is None:
                    out.append(
                        Violation(
                            ALIAS_UNDEFINED,
                            f"qualifier {ref.table!r} is not defined",
                            clause,
                        )
                    )
                    return None
                if not source.has_column(ref.name):
                    out.append(
                        Violation(
                            UNKNOWN_COLUMN,
                            f"column {ref.name!r} not found in {ref.table!r}",
                            clause,
                        )
                    )
                    return None
                return source.column_type(ref.name)
            if extra_names and ref.name.lower() in extra_names:
                return None  # a select-list alias; type unknown, no violation
            matches = scope.sources_with_column(ref.name)
            if len(matches) > 1:
                out.append(
                    Violation(
                        ALIAS_AMBIGUOUS,
                        f"column {ref.name!r} is ambiguous across "
                        f"{[s.label for s in matches]}",
                        clause,
                    )
                )
                return matches[0].column_type(ref.name)
            if len(matches) == 1:
                return matches[0].column_type(ref.name)
            if scope.parent is not None:
                source, col_type = scope.parent.resolve_column(ref.name)
                if source is not None:
                    return col_type
            out.append(
                Violation(
                    UNKNOWN_COLUMN,
                    f"column {ref.name!r} not found in any source",
                    clause,
                )
            )
            return None

        return resolve

    def _silent_type(
        self,
        expr: n.Expr,
        scope: Scope,
        extra_names: Optional[set[str]] = None,
    ) -> Optional[ColType]:
        """Infer a type without emitting resolution violations."""

        def resolve(ref: n.ColumnRef) -> Optional[ColType]:
            if ref.table is not None:
                source = scope.find_source(ref.table)
                if source is None or not source.has_column(ref.name):
                    return None
                return source.column_type(ref.name)
            if extra_names and ref.name.lower() in extra_names:
                return None
            matches = scope.sources_with_column(ref.name)
            if matches:
                return matches[0].column_type(ref.name)
            if scope.parent is not None:
                _, col_type = scope.parent.resolve_column(ref.name)
                return col_type
            return None

        return infer_type(expr, resolve)

    def _check_comparison(
        self,
        expr: n.Binary,
        scope: Scope,
        out: list[Violation],
        clause: str,
        extra_names: Optional[set[str]],
    ) -> None:
        for side, other in ((expr.left, expr.right), (expr.right, expr.left)):
            if isinstance(side, n.ScalarSubquery):
                self._check_scalar_cardinality(side, out, clause)
        left = self._silent_type(expr.left, scope, extra_names)
        right = self._silent_type(expr.right, scope, extra_names)
        if not types_comparable(left, right):
            out.append(
                Violation(
                    CONDITION_MISMATCH,
                    f"cannot compare {left.value} with {right.value} in "
                    f"{render(expr)!r}",
                    clause,
                )
            )

    def _check_between(
        self,
        expr: n.Between,
        scope: Scope,
        out: list[Violation],
        clause: str,
        extra_names: Optional[set[str]],
    ) -> None:
        subject = self._silent_type(expr.expr, scope, extra_names)
        for bound in (expr.low, expr.high):
            bound_type = self._silent_type(bound, scope, extra_names)
            if not types_comparable(subject, bound_type):
                out.append(
                    Violation(
                        CONDITION_MISMATCH,
                        f"BETWEEN bound type {bound_type.value} does not match "
                        f"{subject.value}",
                        clause,
                    )
                )
                return

    def _check_in_list(
        self,
        expr: n.InList,
        scope: Scope,
        out: list[Violation],
        clause: str,
        extra_names: Optional[set[str]],
    ) -> None:
        subject = self._silent_type(expr.expr, scope, extra_names)
        for item in expr.items:
            item_type = self._silent_type(item, scope, extra_names)
            if not types_comparable(subject, item_type):
                out.append(
                    Violation(
                        CONDITION_MISMATCH,
                        f"IN list item type {item_type.value} does not match "
                        f"{subject.value}",
                        clause,
                    )
                )
                return

    def _check_like(
        self,
        expr: n.Like,
        scope: Scope,
        out: list[Violation],
        clause: str,
        extra_names: Optional[set[str]],
    ) -> None:
        subject = self._silent_type(expr.expr, scope, extra_names)
        if subject is not None and subject is not ColType.TEXT:
            out.append(
                Violation(
                    CONDITION_MISMATCH,
                    f"LIKE applied to non-text operand of type {subject.value}",
                    clause,
                )
            )

    def _check_in_subquery(
        self,
        expr: n.InSubquery,
        scope: Scope,
        cte_columns: dict[str, dict[str, Optional[ColType]]],
        out: list[Violation],
        clause: str,
    ) -> None:
        body = expr.query.body
        while isinstance(body, n.Compound):
            body = body.left
        if len(body.items) != 1 or isinstance(body.items[0].expr, n.Star):
            out.append(
                Violation(
                    NESTED_MISMATCH,
                    "IN subquery must return exactly one column",
                    clause,
                )
            )
        self._query(expr.query, scope, cte_columns, out)

    def _check_scalar_cardinality(
        self, subquery: n.ScalarSubquery, out: list[Violation], clause: str
    ) -> None:
        """A subquery compared with =/< etc. must be single-row, single-column."""
        body = subquery.query.body
        if isinstance(body, n.Compound):
            out.append(
                Violation(
                    NESTED_MISMATCH,
                    "set-operation subquery used in scalar comparison",
                    clause,
                )
            )
            return
        if len(body.items) != 1 or isinstance(body.items[0].expr, n.Star):
            out.append(
                Violation(
                    NESTED_MISMATCH,
                    "scalar subquery must return exactly one column",
                    clause,
                )
            )
            return
        if not _guaranteed_single_row(body):
            out.append(
                Violation(
                    NESTED_MISMATCH,
                    "subquery in scalar comparison may return multiple rows "
                    f"({render(subquery)!r})",
                    clause,
                )
            )

    # -- aggregation discipline ------------------------------------------------

    def _check_aggregation(self, core: n.SelectCore, out: list[Violation]) -> None:
        has_aggregate = any(
            _contains_aggregate(item.expr) for item in core.items
        ) or (core.having is not None and _contains_aggregate(core.having))
        group_names = {
            g.name.lower() for g in core.group_by if isinstance(g, n.ColumnRef)
        }
        group_rendered = {render(g) for g in core.group_by}

        if has_aggregate or core.group_by:
            for item in core.items:
                if isinstance(item.expr, n.Star) and has_aggregate:
                    out.append(
                        Violation(
                            AGGR_ATTR,
                            "'*' selected alongside aggregates without grouping "
                            "every column",
                            "SELECT",
                        )
                    )
                    continue
                if render(item.expr) in group_rendered:
                    continue
                for column in _bare_columns(item.expr):
                    if column.name.lower() not in group_names:
                        out.append(
                            Violation(
                                AGGR_ATTR,
                                f"column {column.name!r} is neither aggregated "
                                "nor in GROUP BY",
                                "SELECT",
                            )
                        )
                        break

        if core.having is not None:
            for column in _bare_columns(core.having):
                if column.name.lower() not in group_names:
                    out.append(
                        Violation(
                            AGGR_HAVING,
                            f"HAVING filters bare column {column.name!r}; "
                            "use WHERE or aggregate it",
                            "HAVING",
                        )
                    )
                    break

    # -- DML ---------------------------------------------------------------------

    def _dml(self, statement: n.Statement, out: list[Violation]) -> None:
        table_name = statement.table  # type: ignore[union-attr]
        table = self.schema.table(table_name)
        if table is None:
            out.append(
                Violation(UNKNOWN_TABLE, f"table {table_name!r} is not in schema")
            )
            return
        if isinstance(statement, n.Insert):
            for column in statement.columns:
                if not table.has_column(column):
                    out.append(
                        Violation(
                            UNKNOWN_COLUMN,
                            f"column {column!r} not in {table_name!r}",
                        )
                    )
            if statement.columns and statement.rows:
                for row in statement.rows:
                    if len(row) != len(statement.columns):
                        out.append(
                            Violation(
                                CONDITION_MISMATCH,
                                "VALUES arity differs from column list",
                            )
                        )
                        break
        if isinstance(statement, (n.Update, n.Delete)) and statement.where is not None:
            scope = Scope(sources=[Source(label=table.name, table=table)])
            self._check_expr(
                statement.where, scope, n.SelectCore(), {}, out, "WHERE"
            )
        if isinstance(statement, n.Update):
            for column, _ in statement.assignments:
                if not table.has_column(column):
                    out.append(
                        Violation(
                            UNKNOWN_COLUMN,
                            f"column {column!r} not in {table_name!r}",
                        )
                    )


def _contains_aggregate(expr: n.Expr) -> bool:
    """True when *expr* calls an aggregate outside any subquery."""
    stack = [expr]
    while stack:
        current = stack.pop()
        if isinstance(current, n.FuncCall):
            if current.name.upper() in AGGREGATE_FUNCTIONS:
                return True
            stack.extend(current.args)
        elif isinstance(current, (n.ScalarSubquery, n.Exists, n.InSubquery)):
            continue  # different scope
        else:
            for child in current.children():
                if isinstance(child, n.Expr):
                    stack.append(child)
    return False


def _bare_columns(expr: n.Expr) -> list[n.ColumnRef]:
    """Column refs not wrapped in an aggregate (and not in subqueries)."""
    found: list[n.ColumnRef] = []
    stack: list[n.Expr] = [expr]
    while stack:
        current = stack.pop()
        if isinstance(current, n.ColumnRef):
            found.append(current)
        elif isinstance(current, n.FuncCall):
            if current.name.upper() in AGGREGATE_FUNCTIONS:
                continue
            stack.extend(current.args)
        elif isinstance(current, (n.ScalarSubquery, n.Exists, n.InSubquery)):
            continue
        else:
            for child in current.children():
                if isinstance(child, n.Expr):
                    stack.append(child)
    return found


def _guaranteed_single_row(core: n.SelectCore) -> bool:
    """Conservatively decide whether a SELECT returns at most one row."""
    if core.top == 1 or core.limit == 1:
        return True
    if core.group_by:
        return False
    return all(_contains_aggregate(item.expr) for item in core.items) and bool(
        core.items
    )
