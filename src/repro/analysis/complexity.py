"""Query complexity scoring.

The paper's failure analysis repeatedly ties model errors to syntactic
complexity — mainly ``word_count``, then ``predicate_count``,
``table_count`` and ``nestedness`` (Figures 6, 8, 10, 11, 12).  The
simulated models consume a single normalised score combining those
drivers so that *their* failures correlate with the same properties.
"""

from __future__ import annotations

from repro.sql.properties import QueryProperties

#: Per-property normalisation ceilings, chosen from the upper ranges of
#: Figures 1-3 so typical workload queries map into [0, 1].
_CEILINGS: dict[str, float] = {
    "word_count": 150.0,
    "table_count": 10.0,
    "join_count": 10.0,
    "predicate_count": 20.0,
    "nestedness": 3.0,
    "column_count": 12.0,
    "function_count": 8.0,
}

#: Relative importance; word_count dominates (the paper's strongest signal).
_WEIGHTS: dict[str, float] = {
    "word_count": 0.40,
    "table_count": 0.15,
    "join_count": 0.10,
    "predicate_count": 0.15,
    "nestedness": 0.12,
    "column_count": 0.04,
    "function_count": 0.04,
}


def complexity_score(props: QueryProperties) -> float:
    """Normalised complexity in [0, 1]; ~0.15 for trivial, >0.6 for gnarly."""
    total = 0.0
    values = props.as_dict()
    for name, weight in _WEIGHTS.items():
        ceiling = _CEILINGS[name]
        total += weight * min(values[name] / ceiling, 1.0)
    return min(total, 1.0)


def property_complexity(props: QueryProperties, name: str) -> float:
    """Normalised single-property complexity in [0, 1]."""
    ceiling = _CEILINGS.get(name)
    if ceiling is None:
        raise KeyError(f"no ceiling for property {name!r}")
    return min(props.value(name) / ceiling, 1.0)
