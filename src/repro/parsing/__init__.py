"""Response post-processing: label extraction from verbose model output."""

from repro.parsing.extract import (
    extract_equivalence,
    extract_label,
    extract_missing_word,
    extract_position,
    extract_yes_no,
)

__all__ = [
    "extract_yes_no",
    "extract_label",
    "extract_position",
    "extract_missing_word",
    "extract_equivalence",
]
